//! The append-only segment-log storage engine ([`SegmentStore`]).
//!
//! stdchk's headline requirement is burst ingest: striped checkpoint
//! writes must land on a benefactor's disk "as fast as the hardware
//! allows". A one-file-per-chunk layout pays file creation, an fsync and a
//! rename *per chunk*, which caps small-chunk ingest at the metadata rate
//! of the file system instead of its sequential bandwidth. This engine is
//! the classic log-structured answer (bitcask lineage): all puts append to
//! one active segment file, durability is batched, and space is reclaimed
//! by compacting mostly-dead segments.
//!
//! The record framing, group-commit flusher, torn-tail scan and directory
//! lock live in the shared [`log`](crate::log) engine core (the manager's
//! metadata WAL is built on the same pieces); this module adds what is
//! chunk-specific — the `ChunkId → location` index, rotation bookkeeping,
//! and liveness-driven compaction.
//!
//! # On-disk format
//!
//! A store directory holds numbered segment files:
//!
//! ```text
//! donated-dir/
//!   LOCK                          ← pid of the owning process
//!   seg-0000000000000000.log
//!   seg-0000000000000001.log      ← sealed (read-only)
//!   seg-0000000000000002.log      ← active (append-only)
//! ```
//!
//! The `LOCK` file makes directory ownership exclusive: a second open —
//! another benefactor process pointed at the same donated directory —
//! fails fast instead of interleaving appends. Locks from crashed
//! processes are reclaimed automatically.
//!
//! Each segment is a sequence of self-delimiting records:
//!
//! ```text
//! ┌─────────┬────────┬─────────────┬─────────┬───────────────┐
//! │ len u32 │ kind u8│ chunk id 32B│ crc32c  │ payload (len) │
//! │ LE      │ 0=put  │ (sha-256)   │ u32 LE  │               │
//! │         │ 1=del  │             │         │               │
//! └─────────┴────────┴─────────────┴─────────┴───────────────┘
//!   41-byte header; crc32c covers len ‖ kind ‖ id ‖ payload
//! ```
//!
//! Deletes append a `kind=1` tombstone (empty payload) so a restart does
//! not resurrect the chunk. The in-memory index maps `ChunkId → (segment,
//! offset, len)`; lookups never touch disk, reads are one `pread`.
//!
//! # Group commit
//!
//! `put` appends under the writer lock, then waits for its bytes to become
//! durable. A dedicated flusher thread watches the appended watermark,
//! runs one `sync_data` on the active segment per round, and advances the
//! durable watermark for every record that landed before the snapshot —
//! the same trick databases use for their WAL, with the flusher shape
//! additionally overlapping writeback with ongoing appends/checksumming.
//! Batches form two ways: concurrent writers (striped sessions land on a
//! benefactor over parallel connections) share one flush, and
//! [`ChunkStore::put_batch`] commits a whole driver-drained burst of
//! chunks under a single wait.
//!
//! # Crash recovery
//!
//! Opening scans segments in order, replaying puts and tombstones into the
//! index. A record whose header is cut short or whose CRC does not match is
//! a *torn tail* — the crash happened mid-append — and the segment is
//! truncated to the last valid record. Everything that was acknowledged
//! (i.e. group-committed) lies before the torn record, so acked chunks
//! always survive.
//!
//! # Compaction
//!
//! Overwrites and deletes strand dead bytes in sealed segments. Each
//! mutation tracks per-segment live/total counters; when a sealed segment's
//! dead ratio crosses [`SegmentStoreConfig::compact_dead_ratio`] its live
//! records are re-appended to the active segment (verbatim — the CRC is
//! position-independent), the copy is synced, and the old file is deleted.
//! The benefactor's GC `delete` flow is what drives segments dead, so
//! space reclamation rides the existing maintenance loop with no extra
//! background thread.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use stdchk_util::ordlock::OrderedMutex;

use crate::ranks;

use stdchk_proto::ids::ChunkId;
use stdchk_util::crc32::Crc32;

use crate::log::{
    acquire_dir_lock, encode_header, read_record, record_size, write_all_two, DirLock, GroupCommit,
    SyncDelay, HEADER,
};

use super::ChunkStore;

/// Record kind byte: a chunk payload.
const KIND_PUT: u8 = 0;
/// Record kind byte: a tombstone.
const KIND_TOMBSTONE: u8 = 1;

/// Tuning knobs of a [`SegmentStore`].
#[derive(Clone, Copy, Debug)]
pub struct SegmentStoreConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Compact a sealed segment once `dead / total` reaches this ratio.
    pub compact_dead_ratio: f64,
    /// Run group-commit `sync_data` on puts. Disable only for stores whose
    /// durability does not matter (throwaway test pools).
    pub sync: bool,
    /// How long the group-commit leader waits before flushing, letting
    /// concurrent appends pile into the same `sync_data`. A put's latency
    /// floor rises by this much; sustained multi-writer ingest gains a
    /// bigger batch per flush. Zero (the default) disables the window —
    /// batches then form naturally from the writers that queued during the
    /// previous flush, which measures better wherever timer wakeups are
    /// coarse (containers, loaded boxes).
    pub commit_window: std::time::Duration,
    /// Re-verify the record CRC on every `get`. Off by default: the
    /// recovery scan already guarantees every indexed record was intact at
    /// open, ids are content hashes verified end-to-end, and a read is then
    /// a single `pread`. Enable to catch in-place bit rot at read time.
    pub verify_reads: bool,
}

impl Default for SegmentStoreConfig {
    fn default() -> Self {
        SegmentStoreConfig {
            segment_bytes: 64 << 20,
            compact_dead_ratio: 0.5,
            sync: true,
            commit_window: std::time::Duration::ZERO,
            verify_reads: false,
        }
    }
}

/// Where a live chunk's record sits.
#[derive(Clone, Copy, Debug)]
struct Loc {
    seg: u64,
    off: u64,
    len: u32,
}

/// One segment file plus its live/total byte accounting.
#[derive(Debug)]
struct Segment {
    file: Arc<File>,
    /// Bytes of records whose chunk is still live in the index.
    live: u64,
    /// Bytes appended to this segment in total (records and tombstones).
    total: u64,
}

/// Mutable store state behind the writer lock.
#[derive(Debug)]
struct Shared {
    index: HashMap<ChunkId, Loc>,
    segs: HashMap<u64, Segment>,
    /// Number of the active (append) segment — always the max key of `segs`.
    active: u64,
    /// Bytes appended to the active segment so far.
    active_len: u64,
    /// Monotonic count of bytes appended across all segments; group commit
    /// waits on this watermark.
    appended: u64,
    /// Files sealed by rotation whose `sync_data` is still owed. Rotation
    /// defers the seal sync here instead of running it inline — the
    /// appending thread may be an I/O-lane pump that must never eat an
    /// fsync — and the flusher (or an inline durability point) syncs them
    /// before the active file, preserving "syncing up to `appended` covers
    /// every sealed byte".
    pending_seals: Vec<Arc<File>>,
    /// A compaction is in progress (re-entrancy guard: its appends can
    /// rotate, and rotation's sweep must not nest another compaction).
    compacting: bool,
    /// Deferred-maintenance mode only: sealed segments over the dead
    /// threshold, waiting for [`ChunkStore::maintain`] to compact them
    /// (on the disk I/O lane) instead of the mutating thread.
    compact_queue: Vec<u64>,
}

/// State shared between the store handle and its background flusher. The
/// group-commit watermark machinery lives in the reusable
/// [`GroupCommit`] core (`crate::log`); this struct adds the store's own
/// index state.
struct Core {
    shared: OrderedMutex<Shared>,
    gc: GroupCommit,
}

/// Append-only segment-log chunk store with group commit (see the module
/// docs for the design).
pub struct SegmentStore {
    dir: PathBuf,
    cfg: SegmentStoreConfig,
    core: Arc<Core>,
    /// Deferred-maintenance mode (see [`ChunkStore::set_deferred_maintenance`]).
    deferred: std::sync::atomic::AtomicBool,
    flusher: OrderedMutex<Option<std::thread::JoinHandle<()>>>,
    /// Exclusive claim on the directory, released on drop.
    _dir_lock: DirLock,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        self.core.gc.begin_shutdown();
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
    }
}

fn seg_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:016x}.log"))
}

impl SegmentStore {
    /// Opens (creating if needed) a store rooted at `dir` with default
    /// tuning, recovering the index from the segment log.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors creating, listing, scanning or truncating the
    /// segment files.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<SegmentStore> {
        SegmentStore::open_with(dir, SegmentStoreConfig::default())
    }

    /// Opens with explicit [`SegmentStoreConfig`] tuning.
    ///
    /// Recovery scans every segment in order, replays puts and tombstones
    /// into the in-memory index, and truncates a torn tail record (one the
    /// crash cut short) so the log ends on a valid record boundary.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors creating, listing, scanning or truncating the
    /// segment files, and with [`io::ErrorKind::AddrInUse`] when another
    /// live process (or store in this process) owns the directory.
    pub fn open_with(dir: impl AsRef<Path>, cfg: SegmentStoreConfig) -> io::Result<SegmentStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let dir_lock = acquire_dir_lock(&dir)?;

        // Discover segments.
        let mut numbers = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(hex) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(n) = u64::from_str_radix(hex, 16) {
                    numbers.push(n);
                }
            }
        }
        numbers.sort_unstable();

        let mut shared = Shared {
            index: HashMap::new(),
            segs: HashMap::new(),
            active: 0,
            active_len: 0,
            appended: 0,
            pending_seals: Vec::new(),
            compacting: false,
            compact_queue: Vec::new(),
        };

        // Replay, oldest segment first (compaction only ever moves records
        // forward, so ascending segment number is ascending record age).
        for &n in &numbers {
            let path = seg_path(&dir, n);
            let file = OpenOptions::new().read(true).append(true).open(&path)?;
            let file_len = file.metadata()?.len();
            let mut off = 0u64;
            let mut live = 0u64;
            while off < file_len {
                match read_record(&file, off, file_len, KIND_TOMBSTONE)? {
                    Some(rec) => {
                        let size = record_size(rec.payload.len() as u32);
                        let id = ChunkId(rec.key);
                        match rec.kind {
                            KIND_PUT => {
                                let old = shared.index.insert(
                                    id,
                                    Loc {
                                        seg: n,
                                        off,
                                        len: rec.payload.len() as u32,
                                    },
                                );
                                live += size;
                                if let Some(old) = old {
                                    let dead = record_size(old.len);
                                    if old.seg == n {
                                        live -= dead;
                                    } else if let Some(s) = shared.segs.get_mut(&old.seg) {
                                        s.live -= dead;
                                    }
                                }
                            }
                            _ => {
                                if let Some(old) = shared.index.remove(&id) {
                                    let dead = record_size(old.len);
                                    if old.seg == n {
                                        live -= dead;
                                    } else if let Some(s) = shared.segs.get_mut(&old.seg) {
                                        s.live -= dead;
                                    }
                                }
                            }
                        }
                        off += size;
                    }
                    None => {
                        // Torn tail: drop the unparseable suffix so the next
                        // append starts on a record boundary.
                        file.set_len(off)?;
                        break;
                    }
                }
            }
            shared.segs.insert(
                n,
                Segment {
                    file: Arc::new(file),
                    live,
                    total: off,
                },
            );
            shared.appended += off;
            shared.active = n;
            shared.active_len = off;
        }

        if shared.segs.is_empty() {
            let file = OpenOptions::new()
                .read(true)
                .append(true)
                .create(true)
                .open(seg_path(&dir, 0))?;
            shared.segs.insert(
                0,
                Segment {
                    file: Arc::new(file),
                    live: 0,
                    total: 0,
                },
            );
        }

        let core = Arc::new(Core {
            gc: GroupCommit::new(shared.appended),
            shared: OrderedMutex::new(ranks::STORE_SHARED, "segment.shared", shared),
        });
        let flusher = if cfg.sync {
            let core2 = Arc::clone(&core);
            Some(
                std::thread::Builder::new()
                    .name("stdchk-seg-flush".into())
                    .spawn(move || {
                        // Snapshot under the shared lock: rotation hands
                        // sealed-but-unsynced files over via
                        // `pending_seals`, so syncing those plus the
                        // current active file makes everything up to the
                        // appended count durable.
                        core2.gc.flusher_loop(cfg.commit_window, || {
                            let mut shared = core2.shared.lock();
                            let seals = std::mem::take(&mut shared.pending_seals);
                            (
                                shared.appended,
                                seals,
                                Arc::clone(&shared.segs[&shared.active].file),
                            )
                        })
                    })
                    .map_err(io::Error::other)?,
            )
        } else {
            None
        };
        let store = SegmentStore {
            dir,
            cfg,
            core,
            deferred: std::sync::atomic::AtomicBool::new(false),
            flusher: OrderedMutex::new(ranks::STORE_FLUSHER, "segment.flusher", flusher),
            _dir_lock: dir_lock,
        };
        // A crash (or an old layout) may have left mostly-dead sealed
        // segments behind; reclaim them before serving.
        {
            let mut shared = store.core.shared.lock();
            store.sweep_sealed(&mut shared)?;
        }
        Ok(store)
    }

    /// Number of segment files currently on disk (tests and benches use
    /// this to observe rotation and compaction).
    pub fn segment_count(&self) -> usize {
        self.core.shared.lock().segs.len()
    }

    /// Total `sync_data` calls issued. `puts / sync_count()` is the
    /// group-commit batch factor achieved under the current load.
    pub fn sync_count(&self) -> u64 {
        self.core.gc.sync_count()
    }

    /// One `sync_data`, counted. Routed through the optional io_uring
    /// submission lane (`STDCHK_IO_URING`); blocking `fdatasync` otherwise.
    fn sync_file(&self, file: &File) -> io::Result<()> {
        self.core.gc.count_sync();
        crate::uring::sync_data(file)
    }

    /// Inline durability point: syncs every pending sealed file plus the
    /// active segment, after which everything appended so far may be
    /// marked durable. Caller holds the shared lock.
    fn sync_all(&self, shared: &mut Shared) -> io::Result<()> {
        let seals = std::mem::take(&mut shared.pending_seals);
        for sealed in &seals {
            if let Err(e) = self.sync_file(sealed) {
                // The seal list was drained; a sealed file of unknown
                // durability can never be made safe again.
                self.core.gc.poison();
                return Err(e);
            }
        }
        self.sync_file(&shared.segs[&shared.active].file)
    }

    /// Test/bench fault-injection handle for this store's flusher (see
    /// [`SyncDelay`]).
    pub fn sync_faults(&self) -> SyncDelay {
        self.core.gc.sync_faults().clone()
    }

    /// Seals the active segment and opens the next one. Caller holds the
    /// shared lock. The sealed file's `sync_data` is *deferred* to the
    /// flusher via `pending_seals` (an appending thread — possibly an
    /// I/O-lane pump — must never eat an inline fsync); group commit
    /// still covers sealed bytes because the flusher syncs pending seals
    /// before advancing the durable watermark.
    fn rotate(&self, shared: &mut Shared) -> io::Result<()> {
        if self.cfg.sync {
            let sealed = Arc::clone(&shared.segs[&shared.active].file);
            shared.pending_seals.push(sealed);
        }
        let next = shared.active + 1;
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create_new(true)
            .open(seg_path(&self.dir, next))?;
        shared.segs.insert(
            next,
            Segment {
                file: Arc::new(file),
                live: 0,
                total: 0,
            },
        );
        shared.active = next;
        shared.active_len = 0;
        // Seal-time sweep: the segment just sealed may already be past the
        // dead threshold (every chunk deleted/overwritten while it was
        // active) and no future delete will name it. In deferred mode the
        // candidates queue for `maintain` (the I/O lane) instead — the
        // rotating thread may be a pump that must not eat compaction
        // fsyncs.
        if self.is_deferred() {
            let sealed: Vec<u64> = shared
                .segs
                .keys()
                .copied()
                .filter(|&k| k != shared.active)
                .collect();
            for n in sealed {
                self.queue_candidate(shared, n);
            }
        } else {
            self.sweep_sealed(shared)?;
        }
        Ok(())
    }

    /// Appends `header ‖ payload` to the active segment (rotating first if
    /// full) and returns `(segment, offset, appended-watermark)`. Caller
    /// holds the shared lock.
    fn append(
        &self,
        shared: &mut Shared,
        header: &[u8],
        payload: &[u8],
    ) -> io::Result<(u64, u64, u64)> {
        if shared.active_len >= self.cfg.segment_bytes {
            self.rotate(shared)?;
        }
        if self.core.gc.is_poisoned() {
            return Err(io::Error::other(
                "segment log poisoned by earlier I/O failure",
            ));
        }
        let seg = shared.active;
        let off = shared.active_len;
        if let Err(e) = write_all_two(&shared.segs[&seg].file, header, payload) {
            // A partial record may be on disk. Roll the file back to the
            // last good boundary so later appends and recovery stay
            // aligned with the index; if even that fails, poison the
            // store — continuing would corrupt acked data.
            let file = &shared.segs[&seg].file;
            let rolled_back = file.set_len(off).is_ok()
                && file.metadata().map(|m| m.len() == off).unwrap_or(false);
            if !rolled_back {
                self.core.gc.poison();
            }
            return Err(e);
        }
        let added = (header.len() + payload.len()) as u64;
        // stdchk-allow(no-unwrap-on-hot-paths): `seg` was read from shared.active under this same guard; rotate inserts the entry before publishing the id
        let s = shared.segs.get_mut(&seg).expect("active segment exists");
        s.total += added;
        shared.active_len += added;
        shared.appended += added;
        // Publish and kick the flusher now so writeback overlaps the rest
        // of the batch.
        self.core.gc.note_appended(shared.appended);
        Ok((seg, off, shared.appended))
    }

    /// Blocks until everything appended up to `target` is durable — i.e.
    /// covered by one of the flusher's batched `sync_data` calls.
    fn group_commit(&self, target: u64) -> io::Result<()> {
        self.core.gc.wait_durable(target)
    }

    /// Rewrites the still-needed records of sealed segment `n` to the
    /// active segment and deletes its file. Caller holds the shared lock.
    ///
    /// Live chunk records move verbatim (the CRC is position-independent).
    /// Tombstones are trickier: one may guard against a stale put of the
    /// same id sitting in an *older* segment, so a tombstone is dropped
    /// only if the id is live again (a newer put supersedes it) or no
    /// older segment remains; otherwise it is carried forward.
    fn compact(&self, shared: &mut Shared, n: u64) -> io::Result<()> {
        debug_assert_ne!(n, shared.active, "never compact the active segment");
        let (src, total) = {
            let s = &shared.segs[&n];
            (Arc::clone(&s.file), s.total)
        };
        let no_older_segment = shared.segs.keys().all(|&k| k >= n);
        let file_len = src.metadata()?.len().min(total);
        let mut off = 0u64;
        let mut buf = Vec::new();
        while off < file_len {
            let mut header = [0u8; HEADER];
            src.read_exact_at(&mut header, off)?;
            let len = crate::log::le_u32(&header, 0);
            let kind = header[4];
            let size = record_size(len);
            let mut id = [0u8; 32];
            id.copy_from_slice(&header[5..37]);
            let id = ChunkId(id);
            if kind == KIND_TOMBSTONE {
                if !shared.index.contains_key(&id) && !no_older_segment {
                    // Still guarding an older stale put: carry it forward.
                    self.append(shared, &header, &[])?;
                }
            } else {
                // Move the record only if the index still points at it
                // (stale overwritten versions die with the segment).
                let is_current = matches!(
                    shared.index.get(&id),
                    Some(l) if l.seg == n && l.off == off
                );
                if is_current {
                    buf.resize(size as usize, 0);
                    src.read_exact_at(&mut buf, off)?;
                    let (seg, new_off, _) = self.append(shared, &buf, &[])?;
                    shared.index.insert(
                        id,
                        Loc {
                            seg,
                            off: new_off,
                            len,
                        },
                    );
                    // stdchk-allow(no-unwrap-on-hot-paths): compaction/recovery just inserted or re-read this segment id under the same shared guard
                    let s = shared.segs.get_mut(&seg).expect("active segment exists");
                    s.live += size;
                }
            }
            off += size;
        }
        // The copies must be durable before the originals disappear. The
        // inline sync must also cover any rotation-deferred seal syncs,
        // or marking `appended` durable would over-promise.
        if self.cfg.sync {
            self.sync_all(shared)?;
            self.core.gc.mark_durable(shared.appended);
        }
        shared.segs.remove(&n);
        fs::remove_file(seg_path(&self.dir, n))?;
        Ok(())
    }

    /// True when deferred-maintenance mode routes compaction through
    /// [`ChunkStore::maintain`] instead of the mutating thread.
    fn is_deferred(&self) -> bool {
        self.deferred.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether sealed segment `n` has crossed the dead-byte threshold.
    fn over_threshold(&self, shared: &Shared, n: u64) -> bool {
        if n == shared.active {
            return false;
        }
        let Some(s) = shared.segs.get(&n) else {
            return false;
        };
        s.total > 0 && 1.0 - (s.live as f64 / s.total as f64) >= self.cfg.compact_dead_ratio
    }

    /// Deferred mode: remembers `n` for the next [`ChunkStore::maintain`]
    /// instead of compacting here. Caller holds the shared lock.
    fn queue_candidate(&self, shared: &mut Shared, n: u64) {
        if self.over_threshold(shared, n) && !shared.compact_queue.contains(&n) {
            shared.compact_queue.push(n);
        }
    }

    /// Compacts sealed segment `n` if its dead ratio crossed the threshold.
    /// Caller holds the shared lock. Re-entrancy guarded: a compaction's
    /// own appends can rotate the active segment, whose seal-time sweep
    /// must not start a nested compaction.
    fn maybe_compact(&self, shared: &mut Shared, n: u64) -> io::Result<()> {
        if shared.compacting || !self.over_threshold(shared, n) {
            return Ok(());
        }
        shared.compacting = true;
        let res = self.compact(shared, n);
        shared.compacting = false;
        res
    }

    /// Checks every sealed segment against the compaction threshold. Runs
    /// at open (crash may have left fully-dead segments) and at rotation
    /// (a segment sealed 100%-dead — all its chunks deleted or overwritten
    /// while it was active — is never named by a future delete, so seal
    /// time is the last natural trigger).
    fn sweep_sealed(&self, shared: &mut Shared) -> io::Result<()> {
        let mut sealed: Vec<u64> = shared
            .segs
            .keys()
            .copied()
            .filter(|&k| k != shared.active)
            .collect();
        sealed.sort_unstable();
        for n in sealed {
            self.maybe_compact(shared, n)?;
        }
        Ok(())
    }
}

impl SegmentStore {
    /// Appends one put record (header + payload) and indexes it, returning
    /// the append watermark to commit to. Caller holds the shared lock.
    fn append_put(
        &self,
        shared: &mut Shared,
        id: ChunkId,
        header: &[u8; HEADER],
        payload: &[u8],
    ) -> io::Result<u64> {
        let (seg, off, target) = self.append(shared, header, payload)?;
        let old = shared.index.insert(
            id,
            Loc {
                seg,
                off,
                len: payload.len() as u32,
            },
        );
        // stdchk-allow(no-unwrap-on-hot-paths): compaction/recovery just inserted or re-read this segment id under the same shared guard
        let s = shared.segs.get_mut(&seg).expect("active segment exists");
        s.live += record_size(payload.len() as u32);
        if let Some(old) = old {
            // The overwrite strands the old record. No compaction here —
            // the put path must stay O(chunk); stranded segments are
            // reclaimed by the GC/delete flow or the seal-time sweep.
            if let Some(s) = shared.segs.get_mut(&old.seg) {
                s.live -= record_size(old.len);
            }
        }
        Ok(target)
    }
}

impl ChunkStore for SegmentStore {
    fn put(&self, id: ChunkId, data: &[u8]) -> io::Result<()> {
        let header = encode_header(KIND_PUT, id.as_bytes(), data);
        let target = {
            let mut shared = self.core.shared.lock();
            self.append_put(&mut shared, id, &header, data)?
        };
        if self.cfg.sync {
            self.group_commit(target)?;
        }
        Ok(())
    }

    fn put_batch(&self, batch: &[(ChunkId, &[u8])]) -> io::Result<()> {
        let target = self.submit_put_batch(batch)?;
        self.wait_put(target)
    }

    /// The nonblocking submission half: interleaves checksumming and
    /// appending record by record — the flusher is already pushing
    /// earlier records to the platter while later ones are still being
    /// CRC'd — and returns the watermark one [`ChunkStore::wait_put`]
    /// group commit must cover. Appending inline (on the submitting
    /// thread) is what fixes the on-disk record order at submission
    /// time: a tombstone or overwrite executed after this call lands
    /// after these records no matter when the lane runs the wait.
    fn submit_put_batch(&self, batch: &[(ChunkId, &[u8])]) -> io::Result<u64> {
        let mut target = 0;
        for (id, data) in batch {
            let header = encode_header(KIND_PUT, id.as_bytes(), data);
            let mut shared = self.core.shared.lock();
            target = self.append_put(&mut shared, *id, &header, data)?;
        }
        Ok(target)
    }

    fn wait_put(&self, token: u64) -> io::Result<()> {
        if self.cfg.sync && token > 0 {
            self.group_commit(token)?;
        }
        Ok(())
    }

    fn set_deferred_maintenance(&self, deferred: bool) {
        self.deferred
            .store(deferred, std::sync::atomic::Ordering::Relaxed);
    }

    /// Compacts every queued candidate. Runs on the caller's thread —
    /// the benefactor schedules it on the disk I/O lane after deletes
    /// and store batches. The shared lock is held across each
    /// compaction (as it always was for the inline path), so store
    /// mutations contend with a running compaction; what this mode
    /// removes is the pump *itself* eating the copy + fsync.
    fn maintain(&self) -> io::Result<()> {
        let mut shared = self.core.shared.lock();
        let mut pending = std::mem::take(&mut shared.compact_queue);
        while let Some(n) = pending.pop() {
            if let Err(e) = self.maybe_compact(&mut shared, n) {
                // Unprocessed candidates stay queued for the next call.
                pending.push(n);
                shared.compact_queue.extend(pending);
                return Err(e);
            }
        }
        Ok(())
    }

    fn get(&self, id: ChunkId) -> io::Result<Option<Bytes>> {
        let (file, loc) = {
            let shared = self.core.shared.lock();
            let Some(loc) = shared.index.get(&id).copied() else {
                return Ok(None);
            };
            let Some(seg) = shared.segs.get(&loc.seg) else {
                return Ok(None);
            };
            (Arc::clone(&seg.file), loc)
        };
        // pread outside the lock: the Arc keeps the file readable even if a
        // concurrent compaction unlinks the segment. The read goes through
        // the optional io_uring submission lane (`STDCHK_IO_URING`).
        let mut buf = vec![0u8; HEADER + loc.len as usize];
        crate::uring::read_exact_at(&file, &mut buf, loc.off)?;
        let len = crate::log::le_u32(&buf, 0);
        let header_ok = len == loc.len && buf[4] == KIND_PUT && buf[5..37] == *id.as_bytes();
        let crc_ok = !self.cfg.verify_reads || {
            let stored = crate::log::le_u32(&buf, 37);
            let mut crc = Crc32::new();
            crc.update(&buf[..37]);
            crc.update(&buf[HEADER..]);
            crc.finalize() == stored
        };
        if !(header_ok && crc_ok) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment record failed integrity check",
            ));
        }
        // Zero-copy sub-slice; the header stays in the shared allocation.
        Ok(Some(Bytes::from(buf).slice(HEADER..)))
    }

    /// Sealed records are immutable on disk, so their payload can go to a
    /// socket with `sendfile` straight from the segment file. Records still
    /// in the active segment fall back to [`ChunkStore::get`] (`None`), as
    /// does everything when `verify_reads` demands a CRC pass over the
    /// payload. The 41-byte record header is still read and checked here —
    /// only the payload bytes skip user space.
    fn read_region(&self, id: ChunkId) -> Option<super::FileRegion> {
        if self.cfg.verify_reads {
            return None;
        }
        let (file, loc) = {
            let shared = self.core.shared.lock();
            let loc = shared.index.get(&id).copied()?;
            if loc.seg == shared.active {
                return None; // unsealed: still being appended to
            }
            let seg = shared.segs.get(&loc.seg)?;
            (Arc::clone(&seg.file), loc)
        };
        let mut hdr = [0u8; HEADER];
        if file.read_exact_at(&mut hdr, loc.off).is_err() {
            return None;
        }
        let len = crate::log::le_u32(&hdr, 0);
        if !(len == loc.len && hdr[4] == KIND_PUT && hdr[5..37] == *id.as_bytes()) {
            return None; // let `get` surface the corruption as an error
        }
        Some(super::FileRegion {
            file,
            offset: loc.off + HEADER as u64,
            len: loc.len,
        })
    }

    fn delete(&self, id: ChunkId) -> io::Result<()> {
        let mut shared = self.core.shared.lock();
        let Some(old) = shared.index.remove(&id) else {
            return Ok(()); // absent deletes are fine (and append nothing)
        };
        if let Some(s) = shared.segs.get_mut(&old.seg) {
            s.live -= record_size(old.len);
        }
        // Tombstone so a restart does not resurrect the chunk. Not synced:
        // losing it to a crash only re-surfaces a chunk the next GC pass
        // deletes again. The tombstone append itself stays on this
        // thread in every mode — it is what fixes the delete's position
        // in the record order.
        let header = encode_header(KIND_TOMBSTONE, id.as_bytes(), &[]);
        self.append(&mut shared, &header, &[])?;
        if self.is_deferred() {
            // Compaction (and its fsyncs) waits for `maintain` on the
            // I/O lane; this thread may be a reactor pump.
            self.queue_candidate(&mut shared, old.seg);
        } else {
            self.maybe_compact(&mut shared, old.seg)?;
        }
        Ok(())
    }

    fn ids(&self) -> io::Result<Vec<ChunkId>> {
        Ok(self.core.shared.lock().index.keys().copied().collect())
    }

    fn entries(&self) -> io::Result<Vec<(ChunkId, u32)>> {
        Ok(self
            .core
            .shared
            .lock()
            .index
            .iter()
            .map(|(id, loc)| (*id, loc.len))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stdchk-seg-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn chunk(i: u64, len: usize) -> (ChunkId, Vec<u8>) {
        let data: Vec<u8> = (0..len)
            .map(|j| (stdchk_util::mix64(i ^ j as u64) & 0xFF) as u8)
            .collect();
        (ChunkId::for_content(&data), data)
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmp("rotate");
        let cfg = SegmentStoreConfig {
            segment_bytes: 4 << 10,
            ..Default::default()
        };
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        let mut ids = Vec::new();
        for i in 0..16 {
            let (id, data) = chunk(i, 1 << 10);
            store.put(id, &data).unwrap();
            ids.push((id, data));
        }
        assert!(store.segment_count() > 1, "small cap must force rotation");
        for (id, data) in &ids {
            assert_eq!(&store.get(*id).unwrap().unwrap()[..], &data[..]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_index_and_survives_tombstones() {
        let dir = tmp("reopen");
        let (id_a, data_a) = chunk(1, 700);
        let (id_b, data_b) = chunk(2, 900);
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.put(id_a, &data_a).unwrap();
            store.put(id_b, &data_b).unwrap();
            store.delete(id_a).unwrap();
        }
        let store = SegmentStore::open(&dir).unwrap();
        assert!(store.get(id_a).unwrap().is_none(), "tombstone must persist");
        assert_eq!(&store.get(id_b).unwrap().unwrap()[..], &data_b[..]);
        assert_eq!(store.entries().unwrap(), vec![(id_b, 900)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = tmp("torn");
        let (id, data) = chunk(3, 512);
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.put(id, &data).unwrap();
        }
        // Simulate a crash mid-append: half a record of garbage at the tail.
        let seg = seg_path(&dir, 0);
        let clean_len = fs::metadata(&seg).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xDE; 23]).unwrap();
        drop(f);

        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(&store.get(id).unwrap().unwrap()[..], &data[..]);
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            clean_len,
            "torn suffix must be truncated"
        );
        // And the log accepts appends again.
        let (id2, data2) = chunk(4, 256);
        store.put(id2, &data2).unwrap();
        drop(store);
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(&store.get(id2).unwrap().unwrap()[..], &data2[..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_reclaims_dead_segments() {
        let dir = tmp("compact");
        let cfg = SegmentStoreConfig {
            segment_bytes: 8 << 10,
            compact_dead_ratio: 0.5,
            ..Default::default()
        };
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        let mut ids = Vec::new();
        for i in 0..32 {
            let (id, data) = chunk(100 + i, 1 << 10);
            store.put(id, &data).unwrap();
            ids.push((id, data));
        }
        let before = store.segment_count();
        assert!(before >= 4);
        // Kill three quarters of the chunks: sealed segments cross the dead
        // threshold and compact away.
        for (id, _) in ids.iter().take(24) {
            store.delete(*id).unwrap();
        }
        assert!(
            store.segment_count() < before,
            "compaction must remove mostly-dead segments ({} -> {})",
            before,
            store.segment_count()
        );
        for (id, data) in ids.iter().skip(24) {
            assert_eq!(&store.get(*id).unwrap().unwrap()[..], &data[..]);
        }
        // Survivors must still be there after a restart.
        drop(store);
        let store = SegmentStore::open(&dir).unwrap();
        for (id, data) in ids.iter().skip(24) {
            assert_eq!(&store.get(*id).unwrap().unwrap()[..], &data[..]);
        }
        assert_eq!(store.ids().unwrap().len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_same_id_keeps_latest_and_accounts_dead_bytes() {
        let dir = tmp("overwrite");
        let store = SegmentStore::open(&dir).unwrap();
        let (id, data) = chunk(7, 1024);
        store.put(id, &data).unwrap();
        store.put(id, &data).unwrap();
        store.put(id, &data).unwrap();
        assert_eq!(&store.get(id).unwrap().unwrap()[..], &data[..]);
        assert_eq!(store.ids().unwrap(), vec![id]);
        drop(store);
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(&store.get(id).unwrap().unwrap()[..], &data[..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_open_of_a_live_directory_fails_fast() {
        let dir = tmp("lock");
        let store = SegmentStore::open(&dir).unwrap();
        let err = SegmentStore::open(&dir).expect_err("double open must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        drop(store);
        // Clean drop releases the lock.
        SegmentStore::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let dir = tmp("stalelock");
        std::fs::create_dir_all(&dir).unwrap();
        // A pid that is guaranteed dead: a child we already reaped.
        let dead = std::process::Command::new("true")
            .spawn()
            .and_then(|mut c| c.wait().map(|_| c.id()))
            .expect("spawn true");
        std::fs::write(dir.join("LOCK"), dead.to_string()).unwrap();
        let store = SegmentStore::open(&dir).expect("stale lock must be reclaimed");
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_sealed_fully_dead_is_reclaimed_at_rotation() {
        let dir = tmp("dead-seal");
        let cfg = SegmentStoreConfig {
            segment_bytes: 4 << 10,
            ..Default::default()
        };
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        // Fill segment 0, then kill all of it while it is still active.
        let mut ids = Vec::new();
        for i in 0..4 {
            let (id, data) = chunk(200 + i, 1 << 10);
            store.put(id, &data).unwrap();
            ids.push(id);
        }
        for id in &ids {
            store.delete(*id).unwrap();
        }
        // Next puts rotate; the sealed, 100%-dead segment must vanish even
        // though no future delete will ever name it.
        for i in 0..8 {
            let (id, data) = chunk(300 + i, 1 << 10);
            store.put(id, &data).unwrap();
        }
        assert!(
            !seg_path(&dir, 0).exists(),
            "fully-dead sealed segment must be swept at rotation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_never_resurrects_deleted_chunks() {
        let dir = tmp("resurrect");
        // Record size is 41 + 1024 = 1065; four records fill a segment.
        let cfg = SegmentStoreConfig {
            segment_bytes: 4 << 10,
            compact_dead_ratio: 0.3,
            ..Default::default()
        };
        let (victim_id, victim_data) = chunk(500, 1 << 10);
        {
            let store = SegmentStore::open_with(&dir, cfg).unwrap();
            // Segment 0: the victim plus ballast that stays live, keeping
            // segment 0 below the compaction threshold after the victim
            // dies — so the victim's stale put record stays on disk.
            store.put(victim_id, &victim_data).unwrap();
            for i in 0..3 {
                let (id, data) = chunk(600 + i, 1 << 10);
                store.put(id, &data).unwrap();
            }
            // Segment 1: short-lived chunks plus the victim's tombstone.
            let mut doomed = Vec::new();
            for i in 0..3 {
                let (id, data) = chunk(700 + i, 1 << 10);
                store.put(id, &data).unwrap();
                doomed.push(id);
            }
            store.delete(victim_id).unwrap(); // tombstone lands in segment 1
            let (id, data) = chunk(703, 1 << 10);
            store.put(id, &data).unwrap();
            doomed.push(id);
            // Deleting the doomed chunks drives segment 1 over the dead
            // threshold: its compaction must carry the victim's tombstone
            // forward, not drop it, while segment 0 still holds the put.
            for id in doomed {
                store.delete(id).unwrap();
            }
            assert!(
                !seg_path(&dir, 1).exists(),
                "test setup must actually compact the tombstone's segment"
            );
            assert!(
                seg_path(&dir, 0).exists(),
                "test setup must keep the victim's put record on disk"
            );
            assert!(store.get(victim_id).unwrap().is_none());
        }
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        assert!(
            store.get(victim_id).unwrap().is_none(),
            "compaction dropped a tombstone still guarding an older record"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deferred_maintenance_compacts_only_in_maintain() {
        // I/O-lane mode: deletes must not run compaction (and its
        // fsyncs) on the calling thread; candidates queue until
        // `maintain` — which the benefactor schedules on the lane.
        let dir = tmp("deferred");
        let cfg = SegmentStoreConfig {
            segment_bytes: 8 << 10,
            compact_dead_ratio: 0.5,
            ..Default::default()
        };
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        store.set_deferred_maintenance(true);
        let mut ids = Vec::new();
        for i in 0..32 {
            let (id, data) = chunk(400 + i, 1 << 10);
            store.put(id, &data).unwrap();
            ids.push((id, data));
        }
        let before = store.segment_count();
        assert!(before >= 4);
        for (id, _) in ids.iter().take(24) {
            store.delete(*id).unwrap();
        }
        // Tombstone appends may rotate (count can grow), but nothing may
        // be compacted away on the deleting thread.
        assert!(
            store.segment_count() >= before,
            "deferred mode must not compact on the deleting thread ({} -> {})",
            before,
            store.segment_count()
        );
        store.maintain().unwrap();
        assert!(
            store.segment_count() < before,
            "maintain must run the queued compactions ({} -> {})",
            before,
            store.segment_count()
        );
        for (id, data) in ids.iter().skip(24) {
            assert_eq!(&store.get(*id).unwrap().unwrap()[..], &data[..]);
        }
        // And the survivors replay after a restart.
        drop(store);
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        assert_eq!(store.ids().unwrap().len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_then_wait_split_survives_rotation_and_restart() {
        // The I/O-lane split: submit (append, fix record order) on one
        // "thread", wait (group commit) later — with a tiny segment cap
        // so the batch rotates mid-submit, exercising the deferred
        // seal-sync path (the flusher must sync the sealed file before
        // the wait may return).
        let dir = tmp("lane-split");
        let cfg = SegmentStoreConfig {
            segment_bytes: 4 << 10,
            ..Default::default()
        };
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        let chunks: Vec<_> = (0..12).map(|i| chunk(900 + i, 1 << 10)).collect();
        let batch: Vec<(ChunkId, &[u8])> = chunks.iter().map(|(id, d)| (*id, &d[..])).collect();
        let token = store.submit_put_batch(&batch).unwrap();
        assert!(token > 0);
        assert!(store.segment_count() > 1, "batch must span a rotation");
        store.wait_put(token).unwrap();
        drop(store);
        let store = SegmentStore::open_with(&dir, cfg).unwrap();
        for (id, data) in &chunks {
            assert_eq!(&store.get(*id).unwrap().unwrap()[..], &data[..]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_puts_group_commit() {
        let dir = tmp("group");
        let store = Arc::new(SegmentStore::open(&dir).unwrap());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..16 {
                    let (id, data) = chunk(t * 1000 + i, 4 << 10);
                    store.put(id, &data).unwrap();
                    ids.push((id, data));
                }
                ids
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        for (id, data) in &all {
            assert_eq!(&store.get(*id).unwrap().unwrap()[..], &data[..]);
        }
        assert_eq!(store.ids().unwrap().len(), all.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
