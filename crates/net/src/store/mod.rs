//! Chunk blob stores backing a benefactor's scavenged space.
//!
//! The benefactor state machine owns the authoritative chunk *index*; these
//! stores hold the bytes, behind the [`ChunkStore`] trait so the server
//! wiring, the examples, and the tests can pick a layout per deployment:
//!
//! - [`SegmentStore`] — the production engine: an append-only segment log
//!   with group commit, crash recovery and compaction (see [`segment`]).
//!   Small-chunk ingest runs at near-sequential disk bandwidth because every
//!   put is one append and one *shared* `sync_data`.
//! - [`DiskStore`] — the original one-file-per-chunk layout, named by
//!   content hash inside the donated directory: self-describing,
//!   crash-tolerant (a partial write fails its hash check on read), and
//!   trivially garbage-collectable, but it pays `create` + `write` +
//!   `sync_data` + `rename` per chunk, which caps burst ingest far below
//!   what the hardware allows. Kept as the simple/debuggable baseline and
//!   as the comparison point for the store benchmark.
//! - [`MemStore`] — in-memory, for tests and ephemeral pools.
//!
//! # Choosing a store
//!
//! ```no_run
//! use stdchk_net::store::{ChunkStore, SegmentStore};
//! use std::sync::Arc;
//!
//! # fn main() -> std::io::Result<()> {
//! // The default production engine for a donated directory:
//! let store: Arc<dyn ChunkStore> = Arc::new(SegmentStore::open("/scavenge/stdchk")?);
//! # Ok(())
//! # }
//! ```
//!
//! # Durability contract
//!
//! A `put` that returns `Ok` must survive a crash of the benefactor
//! process: the benefactor acks `PutChunk` only after the store reports the
//! bytes durable, and the manager counts that ack toward the write's
//! replication semantics. `delete` is weaker — a deletion lost to a crash
//! merely resurrects a chunk that the next GC pass removes again.

pub mod segment;

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use stdchk_util::ordlock::OrderedMutex;

use crate::ranks;

use stdchk_proto::ids::ChunkId;
use stdchk_util::sha256::Sha256;

pub use segment::{SegmentStore, SegmentStoreConfig};

/// A chunk payload addressed as a byte range of an immutable backing file,
/// for kernel-copy transmission (`sendfile` straight from the file to the
/// socket, no user-space pass).
///
/// The `Arc<File>` keeps the descriptor readable for as long as any region
/// is in flight, even if the store unlinks the file meanwhile (segment
/// compaction): on Unix the data stays reachable through the open
/// descriptor. Content addressing makes the bytes stable — a store never
/// rewrites a live record in place.
#[derive(Clone, Debug)]
pub struct FileRegion {
    /// The backing file (shared with the store).
    pub file: std::sync::Arc<fs::File>,
    /// Byte offset of the payload within the file.
    pub offset: u64,
    /// Payload length.
    pub len: u32,
}

impl FileRegion {
    /// Materializes the region's bytes with one positioned read (the
    /// fallback when the transport cannot splice the file directly).
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium, including a short file.
    pub fn read_bytes(&self) -> io::Result<Bytes> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; self.len as usize];
        self.file.read_exact_at(&mut buf, self.offset)?;
        Ok(Bytes::from(buf))
    }
}

/// Blob storage for chunk payloads.
///
/// Implementations are shared across the benefactor's connection and event
/// threads (`&self` methods, `Send + Sync`), so every method must be safe
/// under arbitrary interleaving — including concurrent `put`s of the *same*
/// chunk id, which content addressing makes idempotent.
pub trait ChunkStore: Send + Sync + 'static {
    /// Persists `data` under `id`. Durable once `Ok` is returned.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn put(&self, id: ChunkId, data: &[u8]) -> io::Result<()>;

    /// Persists a whole batch, durable once `Ok` is returned. The driver
    /// hands a benefactor's queued `Store` actions over together so an
    /// engine with group commit ([`SegmentStore`]) can cover the batch with
    /// a single flush; the default just loops [`ChunkStore::put`].
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium. On error the caller must assume
    /// nothing from the batch is durable.
    fn put_batch(&self, batch: &[(ChunkId, &[u8])]) -> io::Result<()> {
        for (id, data) in batch {
            self.put(*id, data)?;
        }
        Ok(())
    }

    /// Nonblocking half of [`ChunkStore::put_batch`] for the disk I/O
    /// lane: stage/append the whole batch *now* — fixing the engine's
    /// record order at submission time — and return an engine-defined
    /// token. The bytes are durable only once [`ChunkStore::wait_put`]
    /// returns `Ok` for that token; the driver runs that wait on a lane
    /// thread so a pump never blocks on an fsync tail.
    ///
    /// The default performs the full blocking [`ChunkStore::put_batch`]
    /// inline and returns a token whose wait is a no-op: engines without
    /// a separable durability wait (in-memory, file-per-chunk) keep
    /// their existing behavior.
    ///
    /// # Errors
    ///
    /// I/O failures staging the batch; nothing from the batch should be
    /// considered stored.
    fn submit_put_batch(&self, batch: &[(ChunkId, &[u8])]) -> io::Result<u64> {
        self.put_batch(batch)?;
        Ok(0)
    }

    /// Blocks until the batch identified by `token` (from
    /// [`ChunkStore::submit_put_batch`]) is durable.
    ///
    /// # Errors
    ///
    /// The batch did not (and will never) become durable; the caller
    /// must ack none of it.
    fn wait_put(&self, token: u64) -> io::Result<()> {
        let _ = token;
        Ok(())
    }

    /// Switches the store into *deferred maintenance* mode (or back):
    /// mutation paths stop running expensive reclamation (segment
    /// compaction, with its fsyncs) inline and instead queue candidates
    /// for [`ChunkStore::maintain`], which the driver runs on the disk
    /// I/O lane — so a GC-driven compaction never executes on the pump
    /// thread that delivered the `DropChunk`. A caller that enables
    /// this owns calling `maintain` (the benefactor schedules it after
    /// deletes and store batches). Default: no-op — engines without
    /// background maintenance ignore it.
    fn set_deferred_maintenance(&self, deferred: bool) {
        let _ = deferred;
    }

    /// Runs queued background maintenance (e.g. segment compaction).
    /// Cheap when nothing is queued. Default: no-op.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium; unprocessed candidates stay
    /// queued for the next call.
    fn maintain(&self) -> io::Result<()> {
        Ok(())
    }

    /// Reads the chunk back, or `None` if absent.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium, including detected corruption of
    /// a present record.
    fn get(&self, id: ChunkId) -> io::Result<Option<Bytes>>;

    /// The chunk as a [`FileRegion`] suitable for kernel-copy transmit
    /// (`sendfile`), or `None` when the store cannot offer one — chunk
    /// absent, bytes not in an immutable file (in-memory, still in the
    /// active segment), or the store wants every read verified. Callers
    /// must treat `None` as "use [`ChunkStore::get`]", never as "absent".
    ///
    /// Default: `None` (only stores with stable on-disk records opt in).
    fn read_region(&self, id: ChunkId) -> Option<FileRegion> {
        let _ = id;
        None
    }

    /// Deletes the chunk; absent chunks are fine.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn delete(&self, id: ChunkId) -> io::Result<()>;

    /// Ids present in the store (used to seed recovery).
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn ids(&self) -> io::Result<Vec<ChunkId>>;

    /// `(id, size)` pairs for every chunk present — what
    /// [`Benefactor::adopt_existing`](stdchk_core::Benefactor::adopt_existing)
    /// needs to rebuild the benefactor's index at restart.
    ///
    /// The default reads every payload through [`ChunkStore::get`];
    /// implementations with a cheap size source (an in-memory index, file
    /// metadata) should override it so restart cost does not scale with
    /// stored bytes.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn entries(&self) -> io::Result<Vec<(ChunkId, u32)>> {
        let mut out = Vec::new();
        for id in self.ids()? {
            if let Some(data) = self.get(id)? {
                out.push((id, data.len() as u32));
            }
        }
        Ok(out)
    }
}

/// In-memory store for tests and ephemeral pools.
#[derive(Debug)]
pub struct MemStore {
    blobs: OrderedMutex<HashMap<ChunkId, Bytes>>,
}

impl Default for MemStore {
    fn default() -> MemStore {
        MemStore::new()
    }
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore {
            blobs: OrderedMutex::new(ranks::STORE_MEM, "memstore.blobs", HashMap::new()),
        }
    }
}

impl ChunkStore for MemStore {
    fn put(&self, id: ChunkId, data: &[u8]) -> io::Result<()> {
        self.blobs.lock().insert(id, Bytes::from(data.to_vec()));
        Ok(())
    }

    fn get(&self, id: ChunkId) -> io::Result<Option<Bytes>> {
        Ok(self.blobs.lock().get(&id).cloned())
    }

    fn delete(&self, id: ChunkId) -> io::Result<()> {
        self.blobs.lock().remove(&id);
        Ok(())
    }

    fn ids(&self) -> io::Result<Vec<ChunkId>> {
        Ok(self.blobs.lock().keys().copied().collect())
    }

    fn entries(&self) -> io::Result<Vec<(ChunkId, u32)>> {
        Ok(self
            .blobs
            .lock()
            .iter()
            .map(|(id, b)| (*id, b.len() as u32))
            .collect())
    }
}

/// Distinguishes concurrent in-flight temp files within one process; the
/// pid in the name distinguishes processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// One-file-per-chunk store in a donated directory.
///
/// Every chunk lives in a file named by the hex of its content hash.
/// Writes go through a `.tmp-` file plus `rename` so a crash can never
/// leave a half-written chunk under a valid name; `open` sweeps `.tmp-`
/// leftovers from crashed processes.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`, removing any
    /// orphaned `.tmp-` files a previous process left behind.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or listed.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskStore> {
        fs::create_dir_all(dir.as_ref())?;
        for entry in fs::read_dir(dir.as_ref())? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().starts_with(".tmp-") {
                fs::remove_file(entry.path()).ok();
            }
        }
        Ok(DiskStore {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path_of(&self, id: ChunkId) -> PathBuf {
        self.dir.join(Sha256::to_hex(id.as_bytes()))
    }
}

impl ChunkStore for DiskStore {
    fn put(&self, id: ChunkId, data: &[u8]) -> io::Result<()> {
        // Write-then-rename for atomicity against crashes mid-write. The
        // per-process sequence number keeps two concurrent puts of the same
        // chunk (same id, same length) from racing on one temp path.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.path_of(id))
    }

    fn get(&self, id: ChunkId) -> io::Result<Option<Bytes>> {
        match fs::File::open(self.path_of(id)) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Ok(Some(Bytes::from(buf)))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn delete(&self, id: ChunkId) -> io::Result<()> {
        match fs::remove_file(self.path_of(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn ids(&self) -> io::Result<Vec<ChunkId>> {
        Ok(self.entries()?.into_iter().map(|(id, _)| id).collect())
    }

    fn entries(&self) -> io::Result<Vec<(ChunkId, u32)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.len() != 64 {
                continue; // temp files and strangers
            }
            let mut digest = [0u8; 32];
            let mut ok = true;
            for i in 0..32 {
                match u8::from_str_radix(&name[i * 2..i * 2 + 2], 16) {
                    Ok(b) => digest[i] = b,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                out.push((ChunkId(digest), entry.metadata()?.len() as u32));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ChunkStore) {
        let data = b"chunk payload bytes";
        let id = ChunkId::for_content(data);
        assert!(store.get(id).unwrap().is_none());
        store.put(id, data).unwrap();
        assert_eq!(&store.get(id).unwrap().unwrap()[..], data);
        assert_eq!(store.ids().unwrap(), vec![id]);
        assert_eq!(store.entries().unwrap(), vec![(id, data.len() as u32)]);
        store.delete(id).unwrap();
        assert!(store.get(id).unwrap().is_none());
        store.delete(id).unwrap(); // idempotent
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&MemStore::new());
    }

    #[test]
    fn disk_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("stdchk-test-{}", std::process::id()));
        let store = DiskStore::open(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("stdchk-segtrait-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = SegmentStore::open(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("stdchk-reopen-{}", std::process::id()));
        let data = b"persistent";
        let id = ChunkId::for_content(data);
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(id, data).unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(&store.get(id).unwrap().unwrap()[..], data);
        assert_eq!(store.ids().unwrap(), vec![id]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_store_open_sweeps_orphaned_tmp_files() {
        let dir = std::env::temp_dir().join(format!("stdchk-orphan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(".tmp-4242-7"), b"torn half-write").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.ids().unwrap().is_empty());
        assert!(
            !dir.join(".tmp-4242-7").exists(),
            "orphaned temp file must be swept at open"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_store_concurrent_same_chunk_puts_do_not_collide() {
        let dir = std::env::temp_dir().join(format!("stdchk-race-{}", std::process::id()));
        let store = std::sync::Arc::new(DiskStore::open(&dir).unwrap());
        let data = vec![0x5Au8; 64 << 10];
        let id = ChunkId::for_content(&data);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = std::sync::Arc::clone(&store);
            let data = data.clone();
            handles.push(std::thread::spawn(move || store.put(id, &data)));
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_eq!(&store.get(id).unwrap().unwrap()[..], &data[..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
