//! Real-network deployment of stdchk: threads + TCP + on-disk chunk store.
//!
//! This crate turns the sans-IO state machines of `stdchk-core` into a
//! runnable storage pool:
//!
//! - [`ManagerServer`] — the metadata manager as a TCP server. Runs
//!   volatile ([`ManagerServer::spawn`], the paper's soft-state manager)
//!   or durable ([`ManagerServer::spawn_durable`]): a
//!   [`metalog::MetaLog`] write-ahead log + snapshots replayed at open,
//!   so a restart serves `stat`/`list`/`open` immediately and benefactor
//!   re-offers demote to a consistency repair.
//! - [`BenefactorServer`] — a storage donor: joins the pool, heartbeats,
//!   serves chunks from a [`store::ChunkStore`] (the
//!   [`store::SegmentStore`] append-only segment log with group commit for
//!   production; one-file-per-chunk [`store::DiskStore`] and
//!   [`store::MemStore`] as alternatives), executes replication, runs GC.
//! - [`Grid`] — the client proxy: `create()`/`open()` handles implementing
//!   `std::io::{Write, Read}` plus metadata operations.
//!
//! Both durable structures — chunk segments and the metadata WAL — are
//! built on one [`log`] engine core: CRC-framed self-delimiting records,
//! a group-commit flusher, torn-tail recovery, and exclusive directory
//! locks.
//!
//! All three drive their state machines through the unified
//! [`Node`](stdchk_core::Node) API: the servers share one generic
//! [`NodeHost`]/[`run_node`] event loop (reader threads deliver messages,
//! maintenance fires from `poll_timeout`, actions drain in batches through
//! a per-role [`Effects`] executor), and the client pumps its sessions
//! through the same `poll_action` loop. Outbound dials use connect/write
//! timeouts ([`conn::dial`]) so dead peers fail fast.
//!
//! Threading is deliberately simple (thread-per-connection): a desktop grid
//! pool is tens of nodes with long-lived bulk transfers, where blocking I/O
//! is both adequate and easy to reason about.
//!
//! # Example (in-process pool)
//!
//! ```no_run
//! use stdchk_net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, WriteOptions};
//! use stdchk_net::store::MemStore;
//! use std::io::Write;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mgr = ManagerServer::spawn("127.0.0.1:0", Default::default())?;
//! let _benefactor = BenefactorServer::spawn(BenefactorNetConfig {
//!     manager_addr: mgr.addr().to_string(),
//!     listen: "127.0.0.1:0".into(),
//!     total_space: 1 << 30,
//!     cfg: Default::default(),
//!     store: Arc::new(MemStore::new()),
//! })?;
//! let grid = Grid::connect(&mgr.addr().to_string())?;
//! let mut file = grid.create("/app/ckpt.n0", WriteOptions::default())?;
//! file.write_all(b"checkpoint image")?;
//! file.finish()?;
//! # Ok(())
//! # }
//! ```

pub mod benefactor_server;
pub mod client;
pub mod conn;
pub mod driver;
pub mod log;
pub mod manager_server;
pub mod metalog;
pub mod store;

pub use benefactor_server::{BenefactorNetConfig, BenefactorServer};
pub use client::{Grid, GridError, ReadHandle, WriteHandle, WriteOptions};
pub use driver::{run_node, Effects, NodeHost};
pub use manager_server::ManagerServer;
pub use metalog::{MetaLog, MetaLogConfig};
