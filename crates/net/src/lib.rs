//! Real-network deployment of stdchk: threads + TCP + on-disk chunk store.
//!
//! This crate turns the sans-IO state machines of `stdchk-core` into a
//! runnable storage pool:
//!
//! - [`ManagerServer`] — the metadata manager as a TCP server. Runs
//!   volatile ([`ManagerServer::spawn`], the paper's soft-state manager)
//!   or durable ([`ManagerServer::spawn_durable`]): a
//!   [`metalog::MetaLog`] write-ahead log + snapshots replayed at open,
//!   so a restart serves `stat`/`list`/`open` immediately and benefactor
//!   re-offers demote to a consistency repair.
//! - [`BenefactorServer`] — a storage donor: joins the pool, heartbeats,
//!   serves chunks from a [`store::ChunkStore`] (the
//!   [`store::SegmentStore`] append-only segment log with group commit for
//!   production; one-file-per-chunk [`store::DiskStore`] and
//!   [`store::MemStore`] as alternatives), executes replication, runs GC.
//! - [`Grid`] — the client proxy: `create()`/`open()` handles implementing
//!   `std::io::{Write, Read}` plus metadata operations.
//!
//! Both durable structures — chunk segments and the metadata WAL — are
//! built on one [`log`] engine core: CRC-framed self-delimiting records,
//! a group-commit flusher, torn-tail recovery, and exclusive directory
//! locks.
//!
//! All three drive their state machines through the unified
//! [`Node`](stdchk_core::Node) API: the servers share one generic
//! [`NodeHost`] (actions drain in batches through a per-role [`Effects`]
//! executor), and the client pumps its sessions through the same
//! `poll_action` loop.
//!
//! Transport is the event-driven [`reactor`] by default: an epoll worker
//! pool owns every nonblocking socket, frames are decoded incrementally
//! ([`stdchk_proto::frame::FrameDecoder`], chunk payloads sliced
//! zero-copy), outbound buffers are bounded (slow/dead peers are
//! disconnected, never block the pump), idle connections are reaped, and
//! protocol timers fold into `epoll_wait` — thread count is O(workers),
//! not O(connections), so the manager absorbs checkpoint bursts from
//! whole pools. The legacy thread-per-connection transport remains
//! selectable ([`Backend::Threaded`], `STDCHK_NET_BACKEND=threaded`) as
//! the benchmark baseline. Outbound dials use connect/write timeouts and
//! handshakes bound their reads ([`conn::dial`]) so dead peers fail fast.
//!
//! # Example (in-process pool)
//!
//! ```no_run
//! use stdchk_net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, WriteOptions};
//! use stdchk_net::store::MemStore;
//! use std::io::Write;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mgr = ManagerServer::spawn("127.0.0.1:0", Default::default())?;
//! let _benefactor = BenefactorServer::spawn(BenefactorNetConfig {
//!     manager_addr: mgr.addr().to_string(),
//!     listen: "127.0.0.1:0".into(),
//!     total_space: 1 << 30,
//!     cfg: Default::default(),
//!     store: Arc::new(MemStore::new()),
//! })?;
//! let grid = Grid::connect(&mgr.addr().to_string())?;
//! let mut file = grid.create("/app/ckpt.n0", WriteOptions::default())?;
//! file.write_all(b"checkpoint image")?;
//! file.finish()?;
//! # Ok(())
//! # }
//! ```

pub mod benefactor_server;
pub mod client;
pub mod conn;
pub mod driver;
pub mod iolane;
pub mod log;
pub mod manager_server;
pub mod metalog;
pub mod ranks;
pub mod reactor;
pub mod store;
pub mod uring;

pub use benefactor_server::{BenefactorNetConfig, BenefactorServer};
pub use client::{Grid, GridError, GridRuntime, ReadHandle, WriteHandle, WriteOptions};
pub use driver::{run_node, Effects, NodeHost};
pub use iolane::{IoLane, IoLaneConfig};
pub use log::SyncDelay;
pub use manager_server::ManagerServer;
pub use metalog::{MetaLog, MetaLogConfig};
pub use reactor::{
    CloseReason, ConnOpts, ConnToken, Reactor, ReactorApp, ReactorConfig, ReactorHandle,
    TransportStats, WeakHandle,
};

/// Which transport drives the servers and the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Readiness-based epoll reactor ([`reactor`]): worker-bounded
    /// threads, nonblocking sockets, incremental framing. The default.
    Reactor,
    /// Legacy thread-per-connection transport (blocking reads, 2+ OS
    /// threads per connection). Kept as the benchmark baseline and as an
    /// escape hatch (`STDCHK_NET_BACKEND=threaded`).
    Threaded,
}

impl Backend {
    /// Reads `STDCHK_NET_BACKEND` (`reactor` | `threaded`), defaulting to
    /// [`Backend::Reactor`].
    pub fn from_env() -> Backend {
        match std::env::var("STDCHK_NET_BACKEND").as_deref() {
            Ok("threaded") | Ok("thread") => Backend::Threaded,
            _ => Backend::Reactor,
        }
    }
}

/// Reads `STDCHK_DEDUP`, defaulting to on. When off, [`client::Grid`]
/// writes skip the have/want negotiation and delta encoding entirely and
/// ship every chunk in full — the A/B baseline for the dedup benchmarks.
pub fn dedup_enabled() -> bool {
    !matches!(
        std::env::var("STDCHK_DEDUP").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

/// Reads `STDCHK_ZEROCOPY`, defaulting to on. When off, the reactor
/// transport flattens every outbound frame into a contiguous buffer
/// (copying chunk payloads) and benefactors serve `GetChunk` through the
/// pread-and-copy path instead of `sendfile` — the A/B baseline for the
/// zero-copy benchmarks.
pub fn zerocopy_enabled() -> bool {
    !matches!(
        std::env::var("STDCHK_ZEROCOPY").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

/// Transport tuning for [`ManagerServer`] / [`BenefactorServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerOpts {
    /// Which transport to run.
    pub backend: Backend,
    /// Reactor worker threads (ignored by [`Backend::Threaded`]).
    pub workers: usize,
    /// Reap inbound connections silent for this long (reactor only; the
    /// client side sends transport keepalives well inside this bound).
    pub idle_timeout: Option<std::time::Duration>,
    /// Run blocking durable waits — [`store::SegmentStore`] group
    /// commits, [`MetaLog`] flush waits, snapshot installs — on a
    /// dedicated disk [`IoLane`] instead of the pump thread that drained
    /// the triggering batch, so an fsync tail never stalls a reactor
    /// worker's other sockets. Defaults from `STDCHK_IO_LANE`
    /// (`off`/`0`/`false` disables — the pre-lane inline behavior, kept
    /// as the benchmark baseline).
    pub io_lane: bool,
}

impl ServerOpts {
    /// Reads `STDCHK_IO_LANE`, defaulting to on.
    pub fn io_lane_from_env() -> bool {
        !matches!(
            std::env::var("STDCHK_IO_LANE").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    }
}

impl Default for ServerOpts {
    fn default() -> ServerOpts {
        ServerOpts {
            backend: Backend::from_env(),
            workers: 2,
            idle_timeout: Some(std::time::Duration::from_secs(60)),
            io_lane: ServerOpts::io_lane_from_env(),
        }
    }
}
