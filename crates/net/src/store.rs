//! Chunk blob stores backing a benefactor's scavenged space.
//!
//! The benefactor state machine owns the authoritative chunk *index*; these
//! stores hold the bytes. [`DiskStore`] lays chunks out as one file per
//! chunk named by its content hash inside the donated directory —
//! self-describing, crash-tolerant (a partial write fails its hash check on
//! read), and trivially garbage-collectable. [`MemStore`] backs tests.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use parking_lot::Mutex;

use stdchk_proto::ids::ChunkId;
use stdchk_util::sha256::Sha256;

/// Blob storage for chunk payloads.
pub trait ChunkStore: Send + Sync + 'static {
    /// Persists `data` under `id`.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn put(&self, id: ChunkId, data: &[u8]) -> io::Result<()>;

    /// Reads the chunk back, or `None` if absent.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn get(&self, id: ChunkId) -> io::Result<Option<Bytes>>;

    /// Deletes the chunk; absent chunks are fine.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn delete(&self, id: ChunkId) -> io::Result<()>;

    /// Ids present in the store (used to seed recovery).
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn ids(&self) -> io::Result<Vec<ChunkId>>;
}

/// In-memory store for tests and ephemeral pools.
#[derive(Debug, Default)]
pub struct MemStore {
    blobs: Mutex<HashMap<ChunkId, Bytes>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl ChunkStore for MemStore {
    fn put(&self, id: ChunkId, data: &[u8]) -> io::Result<()> {
        self.blobs.lock().insert(id, Bytes::from(data.to_vec()));
        Ok(())
    }

    fn get(&self, id: ChunkId) -> io::Result<Option<Bytes>> {
        Ok(self.blobs.lock().get(&id).cloned())
    }

    fn delete(&self, id: ChunkId) -> io::Result<()> {
        self.blobs.lock().remove(&id);
        Ok(())
    }

    fn ids(&self) -> io::Result<Vec<ChunkId>> {
        Ok(self.blobs.lock().keys().copied().collect())
    }
}

/// One-file-per-chunk store in a donated directory.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskStore> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(DiskStore {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path_of(&self, id: ChunkId) -> PathBuf {
        self.dir.join(Sha256::to_hex(id.as_bytes()))
    }
}

impl ChunkStore for DiskStore {
    fn put(&self, id: ChunkId, data: &[u8]) -> io::Result<()> {
        // Write-then-rename for atomicity against crashes mid-write.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{:x}",
            std::process::id(),
            stdchk_util::mix64(id.as_bytes()[0] as u64 ^ data.len() as u64)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.path_of(id))
    }

    fn get(&self, id: ChunkId) -> io::Result<Option<Bytes>> {
        match fs::File::open(self.path_of(id)) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Ok(Some(Bytes::from(buf)))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn delete(&self, id: ChunkId) -> io::Result<()> {
        match fs::remove_file(self.path_of(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn ids(&self) -> io::Result<Vec<ChunkId>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.len() != 64 {
                continue; // temp files and strangers
            }
            let mut digest = [0u8; 32];
            let mut ok = true;
            for i in 0..32 {
                match u8::from_str_radix(&name[i * 2..i * 2 + 2], 16) {
                    Ok(b) => digest[i] = b,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                out.push(ChunkId(digest));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ChunkStore) {
        let data = b"chunk payload bytes";
        let id = ChunkId::for_content(data);
        assert!(store.get(id).unwrap().is_none());
        store.put(id, data).unwrap();
        assert_eq!(&store.get(id).unwrap().unwrap()[..], data);
        assert_eq!(store.ids().unwrap(), vec![id]);
        store.delete(id).unwrap();
        assert!(store.get(id).unwrap().is_none());
        store.delete(id).unwrap(); // idempotent
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&MemStore::new());
    }

    #[test]
    fn disk_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("stdchk-test-{}", std::process::id()));
        let store = DiskStore::open(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("stdchk-reopen-{}", std::process::id()));
        let data = b"persistent";
        let id = ChunkId::for_content(data);
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(id, data).unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(&store.get(id).unwrap().unwrap()[..], data);
        assert_eq!(store.ids().unwrap(), vec![id]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
