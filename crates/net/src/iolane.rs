//! The dedicated disk I/O lane: blocking durable waits off the reactor.
//!
//! Since the epoll reactor replaced thread-per-connection I/O, every
//! durable wait — a [`SegmentStore`](crate::store::SegmentStore)
//! group-commit, a [`MetaLog`](crate::MetaLog) append — used to execute
//! on the reactor worker that delivered the triggering message, stalling
//! every other socket that worker owns for the fsync's duration. This
//! module is the fix: a small pool of threads that are *allowed* to
//! block on disk, mirroring the reactor's blocking dial lane.
//!
//! The split that makes this safe is **submit vs wait**:
//!
//! - the *append* half of a durable operation (buffered file writes,
//!   index updates, CRC) stays on the submitting thread — it is cheap
//!   and, crucially, it fixes the on-disk record order at submission
//!   time, so tombstones, overwrites and WAL sequence stamps cannot be
//!   reordered by lane scheduling;
//! - only the *wait* half (`GroupCommit::wait_durable`, i.e. the fsync
//!   tail) runs on a lane worker, which then performs the completion —
//!   enqueue the replies the durability guarded, feed `Stored`
//!   completions back into the [`NodeHost`](crate::NodeHost), nudge the
//!   reactor's timer eventfd
//!   ([`ReactorHandle::notify_timer`](crate::ReactorHandle::notify_timer)).
//!
//! The submission queue is bounded: a backlogged disk pushes back on the
//! submitting pump instead of queueing unbounded completion state. Lane
//! workers themselves are exempt from the bound (a completion that pumps
//! the node may submit follow-up work; blocking *them* on a full queue
//! could deadlock the lane against itself).
//!
//! `STDCHK_IO_LANE=off` (see [`crate::ServerOpts`]) disables the lane:
//! effects then execute durable waits inline, the pre-lane behavior kept
//! as the benchmark baseline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use stdchk_util::ordlock::{Condvar, OrderedMutex};

use crate::ranks;

/// One queued unit of blocking disk work plus its completion.
type Job = Box<dyn FnOnce() + Send>;

/// Tuning for an [`IoLane`].
#[derive(Clone, Copy, Debug)]
pub struct IoLaneConfig {
    /// Lane worker threads. Two lets an fsync tail on one durable
    /// structure (the WAL) overlap a wait on another (the chunk store or
    /// a snapshot install) without growing the pool per connection.
    pub workers: usize,
    /// Submission-queue bound; submitters beyond it block until a worker
    /// drains (disk backpressure propagates to the pump instead of
    /// accumulating unbounded parked state).
    pub capacity: usize,
}

impl Default for IoLaneConfig {
    fn default() -> IoLaneConfig {
        IoLaneConfig {
            workers: 2,
            capacity: 1024,
        }
    }
}

struct Inner {
    jobs: OrderedMutex<VecDeque<Job>>,
    /// Wakes workers when jobs arrive and submitters when space frees.
    cv: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    /// Jobs executed so far (observability and tests).
    completed: AtomicU64,
}

thread_local! {
    /// True on lane worker threads: their re-entrant submissions bypass
    /// the capacity bound (see the module docs).
    static ON_LANE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A running disk I/O lane (see the module docs). Shuts down — running
/// every already-queued job, then joining its workers — on
/// [`IoLane::shutdown`] or drop.
pub struct IoLane {
    inner: Arc<Inner>,
    joins: OrderedMutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for IoLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoLane")
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}

impl IoLane {
    /// Starts a lane with default tuning.
    pub fn new() -> IoLane {
        IoLane::with_config(IoLaneConfig::default())
    }

    /// Starts a lane with explicit [`IoLaneConfig`] tuning.
    pub fn with_config(cfg: IoLaneConfig) -> IoLane {
        let inner = Arc::new(Inner {
            jobs: OrderedMutex::new(ranks::IOLANE_JOBS, "iolane.jobs", VecDeque::new()),
            cv: Condvar::new(),
            capacity: cfg.capacity.max(1),
            shutdown: AtomicBool::new(false),
            completed: AtomicU64::new(0),
        });
        let mut joins = Vec::with_capacity(cfg.workers.max(1));
        for idx in 0..cfg.workers.max(1) {
            let inner2 = Arc::clone(&inner);
            joins.push(
                thread::Builder::new()
                    .name(format!("stdchk-io-{idx}"))
                    .spawn(move || worker_loop(&inner2))
                    .unwrap_or_else(|e| {
                        // Fail-stop, not unwind: a lane missing workers
                        // accepts jobs that no thread will ever run, and
                        // every durable write queued to it then hangs.
                        eprintln!("stdchk io lane: fatal: cannot spawn worker thread: {e}");
                        std::process::abort()
                    }),
            );
        }
        IoLane {
            inner,
            joins: OrderedMutex::new(ranks::IOLANE_JOINS, "iolane.joins", joins),
        }
    }

    /// Queues `job` for a lane worker. Blocks while the queue is at
    /// capacity (unless called from a lane worker, whose re-entrant jobs
    /// bypass the bound). Returns `false` — without queueing — once the
    /// lane has shut down; the caller should then run the work inline.
    #[must_use]
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let mut q = self.inner.jobs.lock();
        if !ON_LANE.with(std::cell::Cell::get) {
            while q.len() >= self.inner.capacity {
                if self.inner.shutdown.load(Ordering::Relaxed) {
                    return false;
                }
                self.inner.cv.wait(&mut q);
            }
        }
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        q.push_back(Box::new(job));
        // notify_all: the same condvar parks workers *and* bounded
        // submitters, and a notify_one could land on the wrong kind.
        self.inner.cv.notify_all();
        true
    }

    /// Nonblocking [`IoLane::submit`]: refuses (returning `false`)
    /// instead of waiting when the queue is at capacity or the lane has
    /// shut down. For opportunistic work — deferred compaction, sweeps —
    /// that a later trigger simply re-offers.
    #[must_use]
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let mut q = self.inner.jobs.lock();
        if self.inner.shutdown.load(Ordering::Relaxed) || q.len() >= self.inner.capacity {
            return false;
        }
        q.push_back(Box::new(job));
        self.inner.cv.notify_all();
        true
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn depth(&self) -> usize {
        self.inner.jobs.lock().len()
    }

    /// Jobs fully executed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Stops accepting new jobs, lets workers drain everything already
    /// queued, and joins them. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.cv.notify_all();
        let me = thread::current().id();
        for j in self.joins.lock().drain(..) {
            if j.thread().id() != me {
                let _ = j.join();
            }
        }
    }
}

impl Default for IoLane {
    fn default() -> IoLane {
        IoLane::new()
    }
}

impl Drop for IoLane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    ON_LANE.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = inner.jobs.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    // A submitter may be parked on the freed slot.
                    inner.cv.notify_all();
                    break job;
                }
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                inner.cv.wait(&mut q);
            }
        };
        job();
        inner.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn jobs_run_and_complete() {
        let lane = IoLane::new();
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            assert!(lane.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while lane.completed() < 32 {
            assert!(Instant::now() < deadline, "lane jobs never ran");
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_rejects_new_ones() {
        let lane = IoLane::with_config(IoLaneConfig {
            workers: 1,
            capacity: 64,
        });
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let hits = Arc::clone(&hits);
            assert!(lane.submit(move || {
                thread::sleep(Duration::from_millis(5));
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        lane.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 8, "queued jobs must drain");
        assert!(!lane.submit(|| {}), "post-shutdown submits must refuse");
    }

    #[test]
    fn bounded_queue_blocks_then_admits() {
        let lane = IoLane::with_config(IoLaneConfig {
            workers: 1,
            capacity: 1,
        });
        let gate = Arc::new((
            OrderedMutex::new(ranks::TEST, "test.gate", false),
            Condvar::new(),
        ));
        // Occupy the worker until released.
        let g2 = Arc::clone(&gate);
        assert!(lane.submit(move || {
            let mut open = g2.0.lock();
            while !*open {
                g2.1.wait(&mut open);
            }
        }));
        // Fill the single queue slot.
        assert!(lane.submit(|| {}));
        // A third submit must block until the worker frees a slot.
        let lane = Arc::new(lane);
        let l2 = Arc::clone(&lane);
        let t = thread::spawn(move || l2.submit(|| {}));
        thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "submit must block on a full queue");
        *gate.0.lock() = true;
        gate.1.notify_all();
        assert!(t.join().unwrap());
        let deadline = Instant::now() + Duration::from_secs(5);
        while lane.completed() < 3 {
            assert!(Instant::now() < deadline);
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn lane_worker_resubmits_without_deadlock() {
        let lane = Arc::new(IoLane::with_config(IoLaneConfig {
            workers: 1,
            capacity: 1,
        }));
        let l2 = Arc::clone(&lane);
        let done = Arc::new(AtomicBool::new(false));
        let d2 = Arc::clone(&done);
        assert!(lane.submit(move || {
            // Re-entrant submit from the lane worker: bypasses the bound.
            let d3 = Arc::clone(&d2);
            assert!(l2.submit(move || d3.store(true, Ordering::Relaxed)));
        }));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !done.load(Ordering::Relaxed) {
            assert!(Instant::now() < deadline, "re-entrant job never ran");
            thread::sleep(Duration::from_millis(2));
        }
    }
}
