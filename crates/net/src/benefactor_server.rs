//! A benefactor (storage donor) as a TCP node.
//!
//! The sans-IO [`Benefactor`] runs behind the same generic [`NodeHost`]
//! event loop as the manager: reader threads `deliver` messages, the shared
//! `run_node` loop fires joins/heartbeats/GC/timeouts from `poll_timeout`,
//! and [`BenefEffects`] executes the unified actions — transmit over the
//! right socket, store/load/delete against a [`ChunkStore`].

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel;
use parking_lot::Mutex;

use stdchk_core::node::{Action, Completion};
use stdchk_core::payload::Payload;
use stdchk_core::{Benefactor, BenefactorConfig, MANAGER_NODE};
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::{Msg, Role};

use crate::conn::{dial, read_loop, Clock, Sender, DIAL_TIMEOUT};
use crate::driver::{spawn_node_loop, Effects, NodeHost};
use crate::store::ChunkStore;

/// Configuration of a networked benefactor.
pub struct BenefactorNetConfig {
    /// Manager dial address.
    pub manager_addr: String,
    /// Listen address for the data path (use `127.0.0.1:0` in tests).
    pub listen: String,
    /// Bytes donated.
    pub total_space: u64,
    /// Protocol timers.
    pub cfg: BenefactorConfig,
    /// Blob store for chunk payloads.
    pub store: Arc<dyn ChunkStore>,
}

/// A dedicated manager connection for driver-level RPCs (address
/// resolution), separate from the state machine's message stream.
struct ResolveClient {
    addr: String,
    sender: Sender,
    replies: channel::Receiver<Msg>,
    next_req: u64,
}

impl ResolveClient {
    fn connect(addr: &str) -> io::Result<ResolveClient> {
        let stream = dial(addr, DIAL_TIMEOUT)?;
        let sender = Sender::new(stream.try_clone()?);
        sender
            .send(&Msg::Hello {
                role: Role::Benefactor,
                node: NodeId(0),
            })
            .ok();
        let (tx, rx) = channel::unbounded();
        let reader = sender.reader()?;
        thread::Builder::new()
            .name("stdchk-benef-resolve".into())
            .spawn(move || read_loop(reader, move |m| drop(tx.send(m))))
            .expect("spawn resolver");
        Ok(ResolveClient {
            addr: addr.to_string(),
            sender,
            replies: rx,
            next_req: 1,
        })
    }

    fn resolve(&mut self, node: NodeId) -> Option<String> {
        match self.try_resolve(node) {
            Some(a) => Some(a),
            None => {
                // The manager may have restarted: redial once.
                let addr = self.addr.clone();
                if let Ok(fresh) = ResolveClient::connect(&addr) {
                    *self = fresh;
                }
                self.try_resolve(node)
            }
        }
    }

    fn try_resolve(&mut self, node: NodeId) -> Option<String> {
        self.next_req += 1;
        let req = RequestId(0xAAAA_0000_0000 | self.next_req);
        self.sender
            .send(&Msg::ResolveNodes {
                req,
                nodes: vec![node],
            })
            .ok()?;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while let Ok(msg) = self
            .replies
            .recv_timeout(deadline.saturating_duration_since(std::time::Instant::now()))
        {
            if let Msg::NodeAddrsReply { req: r, addrs } = msg {
                if r == req {
                    return addrs.into_iter().next().map(|(_, a)| a);
                }
            }
        }
        None
    }
}

/// Executes benefactor actions: transmit to the manager / the delivering
/// connection / a lazily-dialed peer, and run blob-store I/O, reporting
/// completions synchronously.
pub struct BenefEffects {
    store: Arc<dyn ChunkStore>,
    mgr: Mutex<Sender>,
    /// Inbound data connections, keyed by their synthetic conn id: replies
    /// route through here no matter which thread pumps them.
    conns: Mutex<HashMap<NodeId, Sender>>,
    /// Outbound replication connections to peer benefactors (real ids).
    peers: Mutex<HashMap<NodeId, Sender>>,
    resolver: Mutex<ResolveClient>,
    /// Back-reference for peer reply readers (set once at spawn).
    host: Mutex<Option<Arc<BenefHost>>>,
}

type BenefHost = NodeHost<Benefactor, Arc<BenefEffects>>;

impl Effects for Arc<BenefEffects> {
    fn execute(&self, action: Action) -> Option<Completion> {
        match action {
            Action::Send { to, msg } => {
                if to == MANAGER_NODE {
                    let _ = self.mgr.lock().send(&msg);
                } else if let Some(conn) = self.conns.lock().get(&to).cloned() {
                    // Reply to an inbound data connection.
                    let _ = conn.send(&msg);
                } else {
                    self.send_to_peer(to, msg);
                }
                None
            }
            Action::Store { op, chunk, payload } => self
                .store
                .put(chunk, &payload.bytes())
                .ok()
                .map(|()| Completion::Stored { op }),
            Action::Load { op, chunk, .. } => match self.store.get(chunk) {
                Ok(Some(data)) => Some(Completion::Loaded {
                    op,
                    chunk,
                    payload: Payload::Real(data),
                }),
                // Lost or unreadable blob: tell the node so the requester
                // fails over instead of timing out.
                Ok(None) | Err(_) => Some(Completion::LoadFailed { op, chunk }),
            },
            Action::DropChunk { chunk } => {
                let _ = self.store.delete(chunk);
                None
            }
            other => unreachable!("benefactor never emits {other:?}"),
        }
    }

    /// Coalesces the queued `Store` actions of one drained batch into a
    /// single blob-store `put_batch`, so a group-commit engine
    /// ([`crate::store::SegmentStore`]) absorbs a whole ingest burst with
    /// one flush. Relative order of non-store actions is preserved; stores
    /// flush before any later non-store action executes.
    fn execute_batch(&self, actions: &mut Vec<Action>, completions: &mut Vec<Completion>) {
        let mut stores: Vec<(u64, ChunkId, Payload)> = Vec::new();
        for action in actions.drain(..) {
            match action {
                Action::Store { op, chunk, payload } => stores.push((op, chunk, payload)),
                other => {
                    self.flush_stores(&mut stores, completions);
                    if let Some(c) = self.execute(other) {
                        completions.push(c);
                    }
                }
            }
        }
        self.flush_stores(&mut stores, completions);
    }
}

impl BenefEffects {
    /// Runs one buffered store batch; every chunk acks `Stored` on success.
    /// On failure nothing acks — the writer times out and fails over, same
    /// as a single failed put.
    fn flush_stores(
        &self,
        stores: &mut Vec<(u64, ChunkId, Payload)>,
        completions: &mut Vec<Completion>,
    ) {
        if stores.is_empty() {
            return;
        }
        let payloads: Vec<_> = stores.iter().map(|(_, _, p)| p.bytes()).collect();
        let batch: Vec<(ChunkId, &[u8])> = stores
            .iter()
            .zip(&payloads)
            .map(|((_, chunk, _), bytes)| (*chunk, &bytes[..]))
            .collect();
        if self.store.put_batch(&batch).is_ok() {
            completions.extend(stores.drain(..).map(|(op, _, _)| Completion::Stored { op }));
        } else {
            stores.clear();
        }
    }
}

impl BenefEffects {
    /// Sends to a peer benefactor, dialing (and spawning a reply reader) on
    /// first use.
    fn send_to_peer(self: &Arc<Self>, to: NodeId, msg: Msg) {
        let existing = self.peers.lock().get(&to).cloned();
        let sender = match existing {
            Some(s) => s,
            None => {
                let Some(addr) = self.resolver.lock().resolve(to) else {
                    return;
                };
                let Ok(stream) = dial(&addr, DIAL_TIMEOUT) else {
                    return;
                };
                let Ok(reader) = stream.try_clone() else {
                    return;
                };
                let sender = Sender::new(stream);
                // The data-path listener ignores Hello payloads; announce
                // with the null id.
                let _ = sender.send(&Msg::Hello {
                    role: Role::Benefactor,
                    node: NodeId(0),
                });
                // Replies (PutChunkOk / ErrorReply) feed the state machine.
                let host = self.host.lock().clone();
                if let Some(host) = host {
                    thread::Builder::new()
                        .name("stdchk-benef-peer".into())
                        .spawn(move || {
                            read_loop(reader, move |m| host.deliver(to, m));
                        })
                        .expect("spawn peer reader");
                }
                self.peers.lock().insert(to, sender.clone());
                sender
            }
        };
        if sender.send(&msg).is_err() {
            self.peers.lock().remove(&to);
        }
    }
}

/// A running benefactor node.
pub struct BenefactorServer {
    host: Arc<BenefHost>,
    addr: SocketAddr,
}

impl std::fmt::Debug for BenefactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenefactorServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

static CONN_IDS: AtomicU64 = AtomicU64::new(1);

impl BenefactorServer {
    /// Joins the pool and starts serving.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind or the manager is unreachable.
    pub fn spawn(net: BenefactorNetConfig) -> io::Result<BenefactorServer> {
        let listener = TcpListener::bind(&net.listen)?;
        let addr = listener.local_addr()?;
        let mgr_stream = dial(&net.manager_addr, DIAL_TIMEOUT)?;
        let mgr = Sender::new(mgr_stream.try_clone()?);
        mgr.send(&Msg::Hello {
            role: Role::Benefactor,
            node: NodeId(0),
        })
        .map_err(|e| io::Error::other(format!("manager handshake failed: {e}")))?;

        let mut sm = Benefactor::new(NodeId(0), net.total_space, net.cfg);
        sm.set_advertised_addr(addr.to_string());
        // Adopt whatever survived a restart in the blob store. `entries()`
        // comes from the store's index (or file metadata), so restart cost
        // does not scale with the stored bytes.
        let clock = Clock::new();
        sm.adopt_existing(net.store.entries()?, clock.now());

        let resolver = ResolveClient::connect(&net.manager_addr)?;
        let first_reader = mgr.reader()?;
        let effects = Arc::new(BenefEffects {
            store: net.store,
            mgr: Mutex::new(mgr),
            conns: Mutex::new(HashMap::new()),
            peers: Mutex::new(HashMap::new()),
            resolver: Mutex::new(resolver),
            host: Mutex::new(None),
        });
        let host = NodeHost::new(sm, clock, Arc::clone(&effects));
        *effects.host.lock() = Some(Arc::clone(&host));

        // The generic event loop replaces the bespoke ticker: joining,
        // heartbeats, GC reports, put timeouts and re-offers all fire from
        // Benefactor::poll_timeout.
        spawn_node_loop("stdchk-benef-node", Arc::clone(&host));

        // Manager message stream, with reconnect: a benefactor outlives
        // manager restarts — its next heartbeat re-registers it (soft
        // state), and stashed commits are re-offered by its timers.
        {
            let host = Arc::clone(&host);
            let manager_addr = net.manager_addr.clone();
            thread::Builder::new()
                .name("stdchk-benef-mgr".into())
                .spawn(move || {
                    let mut reader = Some(first_reader);
                    loop {
                        if host.is_shutdown() {
                            return;
                        }
                        if let Some(r) = reader.take() {
                            let h2 = Arc::clone(&host);
                            read_loop(r, move |msg| h2.deliver(MANAGER_NODE, msg));
                        }
                        // Disconnected: redial until it works.
                        loop {
                            if host.is_shutdown() {
                                return;
                            }
                            thread::sleep(Duration::from_millis(250));
                            let Ok(stream) = dial(&manager_addr, DIAL_TIMEOUT) else {
                                continue;
                            };
                            let Ok(rd) = stream.try_clone() else { continue };
                            let sender = Sender::new(stream);
                            let my_id = host.with_node(|n| n.id());
                            let _ = sender.send(&Msg::Hello {
                                role: Role::Benefactor,
                                node: my_id,
                            });
                            *host.effects().mgr.lock() = sender;
                            reader = Some(rd);
                            break;
                        }
                    }
                })
                .expect("spawn mgr reader");
        }

        // Data-path listener.
        {
            let host = Arc::clone(&host);
            thread::Builder::new()
                .name("stdchk-benef-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if host.is_shutdown() {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        let host = Arc::clone(&host);
                        thread::Builder::new()
                            .name("stdchk-benef-conn".into())
                            .spawn(move || serve_data_conn(host, stream))
                            .expect("spawn conn");
                    }
                })
                .expect("spawn accept");
        }

        Ok(BenefactorServer { host, addr })
    }

    /// The data-path listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node id assigned by the manager (0 until joined).
    pub fn node_id(&self) -> NodeId {
        self.host.with_node(|n| n.id())
    }

    /// Chunks currently stored.
    pub fn chunk_count(&self) -> usize {
        self.host.with_node(|n| n.chunk_count())
    }

    /// Free contributed bytes.
    pub fn free_space(&self) -> u64 {
        self.host.with_node(|n| n.free_space())
    }

    /// Stops serving (threads exit as their sockets drain).
    pub fn shutdown(&self) {
        self.host.shutdown();
        let _ = TcpStream::connect(self.addr);
        self.host.effects().mgr.lock().shutdown();
        // Break the host↔effects reference cycle so the node drops.
        *self.host.effects().host.lock() = None;
        for (_, c) in self.host.effects().conns.lock().drain() {
            c.shutdown();
        }
        for (_, p) in self.host.effects().peers.lock().drain() {
            p.shutdown();
        }
    }
}

impl Drop for BenefactorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one inbound data connection (client writes/reads or peer
/// replication pushes).
fn serve_data_conn(host: Arc<BenefHost>, stream: TcpStream) {
    let sender = Sender::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let Ok(reader) = sender.reader() else { return };
    // Synthetic per-connection peer id, registered so replies route back on
    // this socket from any pumping thread.
    let conn_id = NodeId((1 << 50) | CONN_IDS.fetch_add(1, Ordering::Relaxed));
    host.effects().conns.lock().insert(conn_id, sender.clone());
    let host2 = Arc::clone(&host);
    read_loop(reader, move |msg| {
        if matches!(msg, Msg::Hello { .. }) {
            return;
        }
        host2.deliver(conn_id, msg);
    });
    host.effects().conns.lock().remove(&conn_id);
}
