//! A benefactor (storage donor) as a TCP node.
//!
//! Wraps the sans-IO [`Benefactor`] state machine with: a persistent
//! manager connection (join, heartbeats, GC, replication commands), a
//! listener for client and peer-benefactor data connections, a blob store
//! for chunk payloads, and lazy outbound connections to replication
//! targets (addresses resolved through the manager).

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel;
use parking_lot::Mutex;

use stdchk_core::payload::Payload;
use stdchk_core::{Benefactor, BenefactorAction, BenefactorConfig, MANAGER_NODE};
use stdchk_proto::ids::{NodeId, RequestId};
use stdchk_proto::msg::{Msg, Role};

use crate::conn::{read_loop, Clock, Sender};
use crate::store::ChunkStore;

/// Configuration of a networked benefactor.
pub struct BenefactorNetConfig {
    /// Manager dial address.
    pub manager_addr: String,
    /// Listen address for the data path (use `127.0.0.1:0` in tests).
    pub listen: String,
    /// Bytes donated.
    pub total_space: u64,
    /// Protocol timers.
    pub cfg: BenefactorConfig,
    /// Blob store for chunk payloads.
    pub store: Arc<dyn ChunkStore>,
}

struct BenefState {
    sm: Mutex<Benefactor>,
    store: Arc<dyn ChunkStore>,
    clock: Clock,
    manager_addr: String,
    mgr: Mutex<Sender>,
    peers: Mutex<HashMap<NodeId, Sender>>,
    resolver: Mutex<ResolveClient>,
    shutdown: AtomicBool,
}

/// A dedicated manager connection for driver-level RPCs (address
/// resolution), separate from the state machine's message stream.
struct ResolveClient {
    addr: String,
    sender: Sender,
    replies: channel::Receiver<Msg>,
    next_req: u64,
}

impl ResolveClient {
    fn connect(addr: &str) -> io::Result<ResolveClient> {
        let stream = TcpStream::connect(addr)?;
        let sender = Sender::new(stream.try_clone()?);
        sender
            .send(&Msg::Hello {
                role: Role::Benefactor,
                node: NodeId(0),
            })
            .ok();
        let (tx, rx) = channel::unbounded();
        let reader = sender.reader()?;
        thread::Builder::new()
            .name("stdchk-benef-resolve".into())
            .spawn(move || read_loop(reader, move |m| drop(tx.send(m))))
            .expect("spawn resolver");
        Ok(ResolveClient {
            addr: addr.to_string(),
            sender,
            replies: rx,
            next_req: 1,
        })
    }

    fn resolve(&mut self, node: NodeId) -> Option<String> {
        match self.try_resolve(node) {
            Some(a) => Some(a),
            None => {
                // The manager may have restarted: redial once.
                let addr = self.addr.clone();
                if let Ok(fresh) = ResolveClient::connect(&addr) {
                    *self = fresh;
                }
                self.try_resolve(node)
            }
        }
    }

    fn try_resolve(&mut self, node: NodeId) -> Option<String> {
        self.next_req += 1;
        let req = RequestId(0xAAAA_0000_0000 | self.next_req);
        self.sender
            .send(&Msg::ResolveNodes {
                req,
                nodes: vec![node],
            })
            .ok()?;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while let Ok(msg) = self
            .replies
            .recv_timeout(deadline.saturating_duration_since(std::time::Instant::now()))
        {
            if let Msg::NodeAddrsReply { req: r, addrs } = msg {
                if r == req {
                    return addrs.into_iter().next().map(|(_, a)| a);
                }
            }
        }
        None
    }
}

/// A running benefactor node.
pub struct BenefactorServer {
    state: Arc<BenefState>,
    addr: SocketAddr,
}

impl std::fmt::Debug for BenefactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenefactorServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

static CONN_IDS: AtomicU64 = AtomicU64::new(1);

impl BenefactorServer {
    /// Joins the pool and starts serving.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind or the manager is unreachable.
    pub fn spawn(net: BenefactorNetConfig) -> io::Result<BenefactorServer> {
        let listener = TcpListener::bind(&net.listen)?;
        let addr = listener.local_addr()?;
        let mgr_stream = TcpStream::connect(&net.manager_addr)?;
        let mgr = Sender::new(mgr_stream.try_clone()?);
        mgr.send(&Msg::Hello {
            role: Role::Benefactor,
            node: NodeId(0),
        })
        .map_err(|e| io::Error::other(format!("manager handshake failed: {e}")))?;

        let mut sm = Benefactor::new(NodeId(0), net.total_space, net.cfg);
        sm.set_advertised_addr(addr.to_string());
        // Adopt whatever survived a restart in the blob store.
        let existing: Vec<_> = net
            .store
            .ids()?
            .into_iter()
            .filter_map(|id| {
                net.store
                    .get(id)
                    .ok()
                    .flatten()
                    .map(|b| (id, b.len() as u32))
            })
            .collect();
        let clock = Clock::new();
        sm.adopt_existing(existing, clock.now());

        let resolver = ResolveClient::connect(&net.manager_addr)?;
        let first_reader = mgr.reader()?;
        let state = Arc::new(BenefState {
            sm: Mutex::new(sm),
            store: net.store,
            clock,
            manager_addr: net.manager_addr.clone(),
            mgr: Mutex::new(mgr),
            peers: Mutex::new(HashMap::new()),
            resolver: Mutex::new(resolver),
            shutdown: AtomicBool::new(false),
        });

        // Manager message stream, with reconnect: a benefactor outlives
        // manager restarts — its next heartbeat re-registers it (soft
        // state), and stashed commits are re-offered by the ticker.
        {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("stdchk-benef-mgr".into())
                .spawn(move || {
                    let mut reader = Some(first_reader);
                    loop {
                        if state.shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        if let Some(r) = reader.take() {
                            let s2 = Arc::clone(&state);
                            read_loop(r, move |msg| {
                                let now = s2.clock.now();
                                let actions = s2.sm.lock().handle_msg(MANAGER_NODE, msg, now);
                                act(&s2, None, NodeId(0), actions);
                            });
                        }
                        // Disconnected: redial until it works.
                        loop {
                            if state.shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            thread::sleep(Duration::from_millis(250));
                            let Ok(stream) = TcpStream::connect(&state.manager_addr) else {
                                continue;
                            };
                            let Ok(rd) = stream.try_clone() else { continue };
                            let sender = Sender::new(stream);
                            let my_id = state.sm.lock().id();
                            let _ = sender.send(&Msg::Hello {
                                role: Role::Benefactor,
                                node: my_id,
                            });
                            *state.mgr.lock() = sender;
                            reader = Some(rd);
                            break;
                        }
                    }
                })
                .expect("spawn mgr reader");
        }

        // Ticker: join, heartbeats, GC, timeouts, re-offers.
        {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("stdchk-benef-tick".into())
                .spawn(move || loop {
                    if state.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    let now = state.clock.now();
                    let actions = state.sm.lock().tick(now);
                    act(&state, None, NodeId(0), actions);
                    thread::sleep(Duration::from_millis(25));
                })
                .expect("spawn ticker");
        }

        // Data-path listener.
        {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("stdchk-benef-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if state.shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        let state = Arc::clone(&state);
                        thread::Builder::new()
                            .name("stdchk-benef-conn".into())
                            .spawn(move ||

 serve_data_conn(state, stream))
                            .expect("spawn conn");
                    }
                })
                .expect("spawn accept");
        }

        Ok(BenefactorServer { state, addr })
    }

    /// The data-path listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node id assigned by the manager (0 until joined).
    pub fn node_id(&self) -> NodeId {
        self.state.sm.lock().id()
    }

    /// Chunks currently stored.
    pub fn chunk_count(&self) -> usize {
        self.state.sm.lock().chunk_count()
    }

    /// Free contributed bytes.
    pub fn free_space(&self) -> u64 {
        self.state.sm.lock().free_space()
    }

    /// Stops serving (threads exit as their sockets drain).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        self.state.mgr.lock().shutdown();
        for (_, p) in self.state.peers.lock().drain() {
            p.shutdown();
        }
    }
}

impl Drop for BenefactorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Executes benefactor actions. `reply` is the connection the triggering
/// message arrived on; actions addressed to `reply_to` go back on it.
fn act(
    state: &Arc<BenefState>,
    reply: Option<&Sender>,
    reply_to: NodeId,
    actions: Vec<BenefactorAction>,
) {
    for a in actions {
        match a {
            BenefactorAction::Send { to, msg } => {
                if to == MANAGER_NODE {
                    let _ = state.mgr.lock().send(&msg);
                } else if Some(to) == Some(reply_to) && reply.is_some() {
                    let _ = reply.expect("checked").send(&msg);
                } else {
                    send_to_peer(state, to, msg);
                }
            }
            BenefactorAction::Store { op, chunk, payload } => {
                let ok = state.store.put(chunk, &payload.bytes()).is_ok();
                if ok {
                    let now = state.clock.now();
                    let more = state.sm.lock().on_store_complete(op, now);
                    act(state, reply, reply_to, more);
                }
            }
            BenefactorAction::Load { op, chunk, .. } => {
                let data = state.store.get(chunk).ok().flatten();
                if let Some(data) = data {
                    let now = state.clock.now();
                    let more =
                        state
                            .sm
                            .lock()
                            .on_load_complete(op, chunk, Payload::Real(data), now);
                    act(state, reply, reply_to, more);
                }
            }
            BenefactorAction::Drop { chunk } => {
                let _ = state.store.delete(chunk);
            }
        }
    }
}

/// Sends to a peer benefactor, dialing (and spawning a reply reader) on
/// first use.
fn send_to_peer(state: &Arc<BenefState>, to: NodeId, msg: Msg) {
    let existing = state.peers.lock().get(&to).cloned();
    let sender = match existing {
        Some(s) => s,
        None => {
            let Some(addr) = state.resolver.lock().resolve(to) else {
                return;
            };
            let Ok(stream) = TcpStream::connect(&addr) else {
                return;
            };
            let Ok(reader) = stream.try_clone() else {
                return;
            };
            let sender = Sender::new(stream);
            let my_id = state.sm.lock().id();
            let _ = sender.send(&Msg::Hello {
                role: Role::Benefactor,
                node: my_id,
            });
            // Replies (PutChunkOk / ErrorReply) feed the state machine.
            let s2 = Arc::clone(state);
            thread::Builder::new()
                .name("stdchk-benef-peer".into())
                .spawn(move || {
                    read_loop(reader, move |m| {
                        let now = s2.clock.now();
                        let actions = s2.sm.lock().handle_msg(to, m, now);
                        act(&s2, None, NodeId(0), actions);
                    });
                })
                .expect("spawn peer reader");
            state.peers.lock().insert(to, sender.clone());
            sender
        }
    };
    if sender.send(&msg).is_err() {
        state.peers.lock().remove(&to);
    }
}

/// Serves one inbound data connection (client writes/reads or peer
/// replication pushes).
fn serve_data_conn(state: Arc<BenefState>, stream: TcpStream) {
    let sender = Sender::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let Ok(reader) = sender.reader() else { return };
    // Synthetic per-connection peer id: replies route back on this socket.
    let conn_id = NodeId((1 << 50) | CONN_IDS.fetch_add(1, Ordering::Relaxed));
    let state2 = Arc::clone(&state);
    let sender2 = sender.clone();
    read_loop(reader, move |msg| {
        if matches!(msg, Msg::Hello { .. }) {
            return;
        }
        let now = state2.clock.now();
        let actions = state2.sm.lock().handle_msg(conn_id, msg, now);
        act(&state2, Some(&sender2), conn_id, actions);
    });
}
