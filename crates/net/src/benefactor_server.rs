//! A benefactor (storage donor) as a TCP node.
//!
//! The sans-IO [`Benefactor`] runs behind the same generic [`NodeHost`]
//! as the manager, over either transport ([`crate::Backend`]):
//!
//! - **reactor** (default): both planes — the manager control connection
//!   and the data-path listener — live on one epoll
//!   [`Reactor`]. Workers decode and `deliver`;
//!   joins/heartbeats/GC/timeouts fire from `poll_timeout` folded into
//!   `epoll_wait`; peer replication connections are dialed (and the
//!   manager redialed after a restart) on the reactor's blocking lane so
//!   workers never block;
//! - **threaded** (legacy): reader thread per connection plus the shared
//!   `run_node` timer loop.
//!
//! Either way [`BenefEffects`] executes the unified actions — transmit
//! over the right connection, store/load/delete against a [`ChunkStore`].

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use stdchk_util::ordlock::OrderedMutex;

use crate::ranks;

use stdchk_core::node::{Action, Completion};
use stdchk_core::payload::Payload;
use stdchk_core::{Benefactor, BenefactorConfig, MANAGER_NODE};
use stdchk_proto::frame::{self, write_frame};
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::{Msg, Role};
use stdchk_util::Time;

use crate::conn::{dial, read_frame_timeout, read_loop, Clock, Link, Sender, DIAL_TIMEOUT};
use crate::driver::{spawn_node_loop, Effects, NodeHost};
use crate::iolane::IoLane;
use crate::reactor::{
    CloseReason, ConnOpts, ConnToken, Reactor, ReactorApp, ReactorConfig, ReactorHandle, WeakHandle,
};
use crate::store::ChunkStore;
use crate::{Backend, ServerOpts};

/// Configuration of a networked benefactor.
pub struct BenefactorNetConfig {
    /// Manager dial address.
    pub manager_addr: String,
    /// Listen address for the data path (use `127.0.0.1:0` in tests).
    pub listen: String,
    /// Bytes donated.
    pub total_space: u64,
    /// Protocol timers.
    pub cfg: BenefactorConfig,
    /// Blob store for chunk payloads.
    pub store: Arc<dyn ChunkStore>,
}

/// A dedicated manager connection for driver-level RPCs (address
/// resolution), separate from the state machine's message stream.
///
/// Fully blocking request/response on one lazily-dialed socket — no
/// reader thread — with connect *and read* timeouts on every step, so a
/// dead or wedged manager can never hang the calling thread. Callers are
/// threads that are allowed to block: threaded-mode pump threads, or the
/// reactor's blocking lane (never a reactor worker).
struct ResolveClient {
    addr: String,
    stream: Option<TcpStream>,
    next_req: u64,
}

impl ResolveClient {
    fn new(addr: &str) -> ResolveClient {
        ResolveClient {
            addr: addr.to_string(),
            stream: None,
            next_req: 1,
        }
    }

    fn resolve(&mut self, node: NodeId) -> Option<String> {
        match self.try_resolve(node) {
            Some(a) => Some(a),
            None => {
                // The manager may have restarted: redial once.
                self.stream = None;
                self.try_resolve(node)
            }
        }
    }

    fn try_resolve(&mut self, node: NodeId) -> Option<String> {
        self.next_req += 1;
        let req = RequestId(0xAAAA_0000_0000 | self.next_req);
        let mut stream = match self.stream.take() {
            Some(s) => s,
            None => {
                // stdchk-allow(no-blocking-on-pump): blocking resolver RPC: ResolveClient runs on the blocking lane or the threaded backend's own threads, never a pump worker
                let s = dial(&self.addr, DIAL_TIMEOUT).ok()?;
                write_frame(
                    &mut &s,
                    &Msg::Hello {
                        role: Role::Benefactor,
                        node: NodeId(0),
                    },
                )
                .ok()?;
                s
            }
        };
        write_frame(
            &mut &stream,
            &Msg::ResolveNodes {
                req,
                nodes: vec![node],
            },
        )
        .ok()?;
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let remain = deadline.saturating_duration_since(Instant::now());
            if remain.is_zero() {
                return None;
            }
            // stdchk-allow(no-blocking-on-pump): bounded manager RPC read on the resolver sideband; same threads as the dial above
            match read_frame_timeout(&mut stream, remain.max(Duration::from_millis(1))) {
                Ok(Some(Msg::NodeAddrsReply { req: r, addrs })) if r == req => {
                    // Keep the warmed-up connection for the next lookup.
                    self.stream = Some(stream);
                    return addrs.into_iter().next().map(|(_, a)| a);
                }
                // Unrelated traffic (stale replies, transport pongs).
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => return None,
            }
        }
    }
}

/// An outbound replication connection to a peer benefactor: established,
/// or being dialed on the reactor's blocking lane with sends queued.
enum PeerState {
    /// Live connection.
    Up(Link),
    /// Dial in flight; messages queued here flush when it lands (and are
    /// dropped if it fails — put timeouts fail the copies over, exactly
    /// like a send on a dead connection).
    Dialing(Vec<Msg>),
}

/// Executes benefactor actions: transmit to the manager / the delivering
/// connection / a lazily-dialed peer, and run blob-store I/O, reporting
/// completions synchronously.
pub struct BenefEffects {
    store: Arc<dyn ChunkStore>,
    mgr: OrderedMutex<Link>,
    /// Inbound data connections, keyed by their synthetic conn id: replies
    /// route through here no matter which thread pumps them.
    conns: OrderedMutex<HashMap<NodeId, Link>>,
    /// Outbound replication connections to peer benefactors (real ids).
    peers: OrderedMutex<HashMap<NodeId, PeerState>>,
    resolver: OrderedMutex<ResolveClient>,
    /// Back-reference for peer reply readers and I/O-lane completions
    /// (set once at spawn, both backends).
    host: OrderedMutex<Option<Arc<BenefHost>>>,
    /// Reactor-mode context for deferred peer dials (None under the
    /// threaded backend).
    rapp: OrderedMutex<Option<Arc<BenefApp>>>,
    /// Durable store waits ride here instead of the executing pump
    /// (None: inline execution, the `STDCHK_IO_LANE=off` baseline).
    lane: Option<Arc<IoLane>>,
    /// Serve `GetChunk` replies for sealed segments straight from the
    /// segment file via [`ReactorHandle::send_file_region`] — the payload
    /// never enters user space. Reactor backend only, gated by
    /// `STDCHK_ZEROCOPY`; the threaded backend and unsealed/verifying
    /// stores always materialize.
    zerocopy: bool,
}

type BenefHost = NodeHost<Benefactor, Arc<BenefEffects>>;

impl Effects for Arc<BenefEffects> {
    fn execute(&self, action: Action) -> Option<Completion> {
        match action {
            Action::Send { to, msg } => {
                // A `GetChunkOk` whose payload is virtual (empty data,
                // nonzero size) is a zero-copy serve: the Load answered
                // with a region placeholder and the bytes leave straight
                // from the segment file here.
                if let Msg::GetChunkOk {
                    req,
                    chunk,
                    size,
                    data,
                } = &msg
                {
                    if data.is_empty() && *size > 0 {
                        self.send_region_reply(to, *req, *chunk, *size);
                        return None;
                    }
                }
                if to == MANAGER_NODE {
                    let _ = self.mgr.lock().send(&msg);
                } else if let Some(conn) = self.conns.lock().get(&to).cloned() {
                    // Reply to an inbound data connection.
                    let _ = conn.send(&msg);
                } else {
                    self.send_to_peer(to, msg);
                }
                None
            }
            Action::Store { op, chunk, payload } => self
                .store
                .put(chunk, &payload.bytes())
                .ok()
                .map(|()| Completion::Stored { op }),
            Action::Load {
                op, chunk, serve, ..
            } => {
                if serve && self.zerocopy {
                    // Sealed, checksummed-at-rest chunk: answer with a
                    // virtual payload; the Send above re-derives the
                    // region and ships it via sendfile. Loads the node
                    // itself consumes (replication pushes, delta bases)
                    // have `serve: false` and always get real bytes.
                    if let Some(region) = self.store.read_region(chunk) {
                        return Some(Completion::Loaded {
                            op,
                            chunk,
                            payload: Payload::Virtual {
                                size: region.len,
                                tag: 0,
                            },
                        });
                    }
                }
                match self.store.get(chunk) {
                    Ok(Some(data)) => Some(Completion::Loaded {
                        op,
                        chunk,
                        payload: Payload::Real(data),
                    }),
                    // Lost or unreadable blob: tell the node so the
                    // requester fails over instead of timing out.
                    Ok(None) | Err(_) => Some(Completion::LoadFailed { op, chunk }),
                }
            }
            Action::DropChunk { chunk } => {
                // The tombstone append runs here (cheap, order-fixing);
                // in deferred-maintenance mode any compaction it
                // triggers waits for `maintain` on the I/O lane.
                let _ = self.store.delete(chunk);
                self.schedule_maintenance();
                None
            }
            other => unreachable!("benefactor never emits {other:?}"),
        }
    }

    /// Coalesces the queued `Store` actions of one drained batch into a
    /// single blob-store `put_batch`, so a group-commit engine
    /// ([`crate::store::SegmentStore`]) absorbs a whole ingest burst with
    /// one flush. Relative order of non-store actions is preserved; stores
    /// flush before any later non-store action executes.
    fn execute_batch(&self, actions: &mut Vec<Action>, completions: &mut Vec<Completion>) {
        let mut stores: Vec<(u64, ChunkId, Payload)> = Vec::new();
        for action in actions.drain(..) {
            match action {
                Action::Store { op, chunk, payload } => stores.push((op, chunk, payload)),
                other => {
                    self.flush_stores(&mut stores, completions);
                    if let Some(c) = self.execute(other) {
                        completions.push(c);
                    }
                }
            }
        }
        self.flush_stores(&mut stores, completions);
    }
}

impl BenefEffects {
    /// Ships a zero-copy `GetChunkOk`: re-derive the sealed-segment
    /// region and hand it to the reactor as a pre-encoded frame head +
    /// `sendfile` payload. Falls back to materializing the chunk when
    /// the link is not a reactor connection or the region vanished
    /// (compaction moved the chunk between Load and Send — the re-read
    /// serves the bytes from wherever they live now). If the chunk is
    /// gone entirely the reply is dropped: the requester's timeout fails
    /// it over, exactly like a send on a dead connection.
    fn send_region_reply(self: &Arc<Self>, to: NodeId, req: RequestId, chunk: ChunkId, size: u32) {
        let link = if to == MANAGER_NODE {
            Some(self.mgr.lock().clone())
        } else {
            self.conns.lock().get(&to).cloned()
        };
        if let Some(Link::Event { handle, token }) = &link {
            if let (Some(region), Some(h)) = (self.store.read_region(chunk), handle.upgrade()) {
                let head = frame::get_chunk_ok_frame_head(req, chunk, size, region.len);
                let _ = h.send_file_region(
                    *token,
                    head,
                    region.file,
                    region.offset,
                    region.len as u64,
                    None,
                );
                return;
            }
        }
        if let Ok(Some(data)) = self.store.get(chunk) {
            let msg = Msg::GetChunkOk {
                req,
                chunk,
                size,
                data,
            };
            match link {
                Some(l) => {
                    let _ = l.send(&msg);
                }
                None => self.send_to_peer(to, msg),
            }
        }
    }

    /// Queues one opportunistic `maintain` pass (deferred compaction) on
    /// the I/O lane. Nonblocking and lossy by design: a refused submit
    /// just waits for the next delete/batch to re-offer it.
    fn schedule_maintenance(&self) {
        if let Some(lane) = &self.lane {
            let store = Arc::clone(&self.store);
            let _ = lane.try_submit(move || {
                let _ = store.maintain();
            });
        }
    }

    /// Runs one buffered store batch; every chunk acks `Stored` on success.
    /// On failure nothing acks — the writer times out and fails over, same
    /// as a single failed put.
    ///
    /// With the disk I/O lane attached the batch is *submitted*
    /// (appended — fixing the engine's record order now, so a later
    /// `DropChunk` in the same drain still lands after these records)
    /// and only the durability wait rides the lane; the lane completion
    /// feeds the `Stored` acks back through the host. Inline otherwise.
    fn flush_stores(
        &self,
        stores: &mut Vec<(u64, ChunkId, Payload)>,
        completions: &mut Vec<Completion>,
    ) {
        if stores.is_empty() {
            return;
        }
        let payloads: Vec<_> = stores.iter().map(|(_, _, p)| p.bytes()).collect();
        let batch: Vec<(ChunkId, &[u8])> = stores
            .iter()
            .zip(&payloads)
            .map(|((_, chunk, _), bytes)| (*chunk, &bytes[..]))
            .collect();
        let host = self.lane.as_ref().and_then(|_| self.host.lock().clone());
        if let (Some(lane), Some(host)) = (&self.lane, host) {
            match self.store.submit_put_batch(&batch) {
                Ok(token) => {
                    let ops: Vec<u64> = stores.drain(..).map(|(op, _, _)| op).collect();
                    let store = Arc::clone(&self.store);
                    // The reactor's timer eventfd, so a Stored-completion
                    // that re-arms an earlier protocol deadline wakes
                    // worker 0 (None under the threaded backend, whose
                    // run_node loop is woken by `complete_all` itself).
                    let handle = self
                        .rapp
                        .lock()
                        .as_ref()
                        .and_then(|app| app.handle.get().cloned());
                    if !lane.submit(move || finish_put_batch(&store, &host, token, ops, handle)) {
                        // Lane shut down under us: nothing acks; the
                        // writers time out, exactly like a dying server.
                    }
                }
                Err(_) => stores.clear(),
            }
            return;
        }
        if self.store.put_batch(&batch).is_ok() {
            completions.extend(stores.drain(..).map(|(op, _, _)| Completion::Stored { op }));
        } else {
            stores.clear();
        }
    }
}

/// I/O-lane job: wait out the submitted batch's group commit, then feed
/// every chunk's `Stored` ack back through the host (whose pump — on
/// this lane thread — drains the resulting `PutChunkOk` sends).
fn finish_put_batch(
    store: &Arc<dyn ChunkStore>,
    host: &Arc<BenefHost>,
    token: u64,
    ops: Vec<u64>,
    handle: Option<WeakHandle>,
) {
    if store.wait_put(token).is_err() {
        // Nothing acks: the writers time out and fail over, exactly
        // like a failed inline put.
        return;
    }
    host.complete_all(ops.into_iter().map(|op| Completion::Stored { op }));
    if let Some(h) = handle.and_then(|w| w.upgrade()) {
        h.notify_timer();
    }
    // Already on a lane thread: run any compaction the batch's
    // rotations queued (cheap no-op when nothing is pending).
    let _ = store.maintain();
}

impl BenefEffects {
    /// Sends to a peer benefactor, establishing the connection on first
    /// use. Under the threaded backend the dial happens inline (the
    /// calling pump thread may block); under the reactor it is deferred
    /// to the blocking lane with the message queued.
    fn send_to_peer(self: &Arc<Self>, to: NodeId, msg: Msg) {
        let rapp = self.rapp.lock().clone();
        match rapp {
            Some(app) => self.send_to_peer_reactor(&app, to, msg),
            None => self.send_to_peer_threaded(to, msg),
        }
    }

    fn send_to_peer_threaded(self: &Arc<Self>, to: NodeId, msg: Msg) {
        let existing = match self.peers.lock().get(&to) {
            Some(PeerState::Up(l)) => Some(l.clone()),
            _ => None,
        };
        let link = match existing {
            Some(l) => l,
            None => {
                let Some(addr) = self.resolver.lock().resolve(to) else {
                    return;
                };
                // stdchk-allow(no-blocking-on-pump): threaded backend only: thread-per-connection, blocking is that backend's design
                let Ok(stream) = dial(&addr, DIAL_TIMEOUT) else {
                    return;
                };
                let Ok(reader) = stream.try_clone() else {
                    return;
                };
                let sender = Sender::new(stream);
                // The data-path listener ignores Hello payloads; announce
                // with the null id.
                let _ = sender.send(&Msg::Hello {
                    role: Role::Benefactor,
                    node: NodeId(0),
                });
                // Replies (PutChunkOk / ErrorReply) feed the state machine.
                let host = self.host.lock().clone();
                if let Some(host) = host {
                    thread::Builder::new()
                        .name("stdchk-benef-peer".into())
                        .spawn(move || {
                            // stdchk-allow(no-blocking-on-pump): dedicated peer-reader thread (stdchk-benef-peer), not a pump worker
                            read_loop(reader, move |m| host.deliver(to, m));
                        })
                        .expect("spawn peer reader");
                }
                let link = Link::Thread(sender);
                self.peers.lock().insert(to, PeerState::Up(link.clone()));
                link
            }
        };
        if link.send(&msg).is_err() {
            self.peers.lock().remove(&to);
        }
    }

    /// Reactor mode: never blocks the calling worker. An unestablished
    /// peer gets a `Dialing` entry and a blocking-lane job that resolves,
    /// dials, registers and flushes the queue.
    fn send_to_peer_reactor(self: &Arc<Self>, app: &Arc<BenefApp>, to: NodeId, msg: Msg) {
        let mut peers = self.peers.lock();
        match peers.get_mut(&to) {
            Some(PeerState::Up(link)) => {
                let link = link.clone();
                drop(peers);
                if link.send(&msg).is_err() {
                    self.peers.lock().remove(&to);
                }
            }
            Some(PeerState::Dialing(q)) => q.push(msg),
            None => {
                peers.insert(to, PeerState::Dialing(vec![msg]));
                drop(peers);
                let Some(handle) = app.handle.get().and_then(WeakHandle::upgrade) else {
                    self.peers.lock().remove(&to);
                    return;
                };
                let effects = Arc::clone(self);
                let app = Arc::clone(app);
                handle.spawn_blocking(move |h| dial_peer(&effects, &app, to, h));
            }
        }
    }
}

/// Blocking-lane job: establish the replication connection to `to` and
/// flush whatever queued while dialing.
fn dial_peer(effects: &Arc<BenefEffects>, app: &Arc<BenefApp>, to: NodeId, h: &ReactorHandle) {
    let link = (|| {
        let addr = effects.resolver.lock().resolve(to)?;
        // stdchk-allow(no-blocking-on-pump): blocking-lane job: the reactor defers peer dials here precisely so pump workers never block
        let stream = dial(&addr, DIAL_TIMEOUT).ok()?;
        // prepare → bookkeep → arm: the kind entry must exist before any
        // worker can deliver this connection's first reply.
        let token = h.prepare(stream, ConnOpts::dial_default()).ok()?;
        app.kinds.lock().insert(token, BKind::Peer(to));
        h.arm(token);
        let link = Link::Event {
            handle: h.downgrade(),
            token,
        };
        // The data-path listener ignores Hello payloads; announce with
        // the null id.
        if link
            .send(&Msg::Hello {
                role: Role::Benefactor,
                node: NodeId(0),
            })
            .is_err()
        {
            h.close(token);
            return None;
        }
        Some(link)
    })();
    match link {
        Some(link) => {
            let queued = {
                let mut peers = effects.peers.lock();
                match peers.insert(to, PeerState::Up(link.clone())) {
                    Some(PeerState::Dialing(q)) => q,
                    _ => Vec::new(),
                }
            };
            for msg in queued {
                if link.send(&msg).is_err() {
                    effects.peers.lock().remove(&to);
                    return;
                }
            }
        }
        None => {
            // Queued copies are dropped: their put timeouts fail them
            // over, exactly as if the connection had died mid-send.
            effects.peers.lock().remove(&to);
        }
    }
}

/// What a reactor connection means to the benefactor.
#[derive(Clone, Copy, Debug)]
enum BKind {
    /// The manager control-plane connection.
    Mgr,
    /// An inbound data connection, addressed by its synthetic node id.
    Data(NodeId),
    /// An outbound replication connection to a peer benefactor.
    Peer(NodeId),
}

/// The benefactor's [`ReactorApp`]: routes both planes (manager control
/// stream + data-path connections) into the shared [`NodeHost`], fires
/// protocol timers from the reactor tick, and redials the manager after a
/// restart via the blocking lane.
struct BenefApp {
    host: OnceLock<Arc<BenefHost>>,
    handle: OnceLock<WeakHandle>,
    /// Role of each live reactor connection.
    kinds: OrderedMutex<HashMap<ConnToken, BKind>>,
    /// Weak self-reference for redial jobs scheduled from callbacks.
    weak_self: OnceLock<std::sync::Weak<BenefApp>>,
    manager_addr: String,
}

impl BenefApp {
    fn schedule_mgr_redial(&self, delay: Duration) {
        let (Some(handle), Some(weak)) = (
            self.handle.get().and_then(WeakHandle::upgrade),
            self.weak_self.get().cloned(),
        ) else {
            return;
        };
        handle.spawn_blocking_after(delay, move |h| {
            if let Some(app) = weak.upgrade() {
                mgr_redial(&app, h);
            }
        });
    }
}

/// Blocking-lane job: reconnect the manager control plane. A benefactor
/// outlives manager restarts — its next heartbeat re-registers it (soft
/// state), and stashed commits are re-offered by its timers.
fn mgr_redial(app: &Arc<BenefApp>, h: &ReactorHandle) {
    if h.is_shutdown() {
        return;
    }
    let Some(host) = app.host.get() else { return };
    if host.is_shutdown() {
        return;
    }
    let established = (|| {
        // stdchk-allow(no-blocking-on-pump): blocking-lane job: manager redial runs off-pump with sends queued meanwhile
        let stream = dial(&app.manager_addr, DIAL_TIMEOUT).ok()?;
        let token = h.prepare(stream, ConnOpts::dial_default()).ok()?;
        app.kinds.lock().insert(token, BKind::Mgr);
        h.arm(token);
        let link = Link::Event {
            handle: h.downgrade(),
            token,
        };
        let my_id = host.with_node(|n| n.id());
        if link
            .send(&Msg::Hello {
                role: Role::Benefactor,
                node: my_id,
            })
            .is_err()
        {
            h.close(token);
            return None;
        }
        *host.effects().mgr.lock() = link;
        Some(())
    })();
    if established.is_none() {
        app.schedule_mgr_redial(Duration::from_millis(250));
    }
}

impl ReactorApp for BenefApp {
    fn on_accept(&self, conn: ConnToken, _listener: u64) {
        let (Some(host), Some(handle)) = (self.host.get(), self.handle.get()) else {
            return;
        };
        // Synthetic per-connection peer id, registered so replies route
        // back on this connection from any pumping worker.
        let id = NodeId((1 << 50) | CONN_IDS.fetch_add(1, Ordering::Relaxed));
        self.kinds.lock().insert(conn, BKind::Data(id));
        host.effects().conns.lock().insert(
            id,
            Link::Event {
                handle: handle.clone(),
                token: conn,
            },
        );
    }

    fn on_msg(&self, conn: ConnToken, msg: Msg) {
        let Some(host) = self.host.get() else { return };
        let kind = self.kinds.lock().get(&conn).copied();
        match kind {
            Some(BKind::Data(id)) if !matches!(msg, Msg::Hello { .. }) => {
                host.deliver(id, msg);
            }
            Some(BKind::Data(_)) => {}
            Some(BKind::Mgr) => host.deliver(MANAGER_NODE, msg),
            Some(BKind::Peer(node)) => host.deliver(node, msg),
            None => {}
        }
    }

    fn on_close(&self, conn: ConnToken, _reason: CloseReason) {
        let kind = self.kinds.lock().remove(&conn);
        let Some(host) = self.host.get() else { return };
        match kind {
            Some(BKind::Data(id)) => {
                host.effects().conns.lock().remove(&id);
            }
            Some(BKind::Peer(node)) => {
                let mut peers = host.effects().peers.lock();
                if let Some(PeerState::Up(Link::Event { token, .. })) = peers.get(&node) {
                    if *token == conn {
                        peers.remove(&node);
                    }
                }
            }
            Some(BKind::Mgr) => {
                // Only the *current* control connection triggers a redial
                // chain (a stale one may close after a successor exists).
                let is_current = matches!(
                    &*host.effects().mgr.lock(),
                    Link::Event { token, .. } if *token == conn
                );
                if is_current && !host.is_shutdown() {
                    self.schedule_mgr_redial(Duration::from_millis(250));
                }
            }
            None => {}
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        self.host.get().and_then(|h| h.next_deadline())
    }

    fn on_tick(&self, now: Time) {
        if let Some(host) = self.host.get() {
            host.tick(now);
        }
    }
}

/// A running benefactor node.
pub struct BenefactorServer {
    host: Arc<BenefHost>,
    addr: SocketAddr,
    /// The epoll transport (reactor backend only).
    reactor: Option<Reactor>,
    /// The disk I/O lane (None when `STDCHK_IO_LANE=off`).
    lane: Option<Arc<IoLane>>,
}

impl std::fmt::Debug for BenefactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenefactorServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

static CONN_IDS: AtomicU64 = AtomicU64::new(1);

impl BenefactorServer {
    /// Joins the pool and starts serving. Transport comes from
    /// [`ServerOpts::default`] (the reactor, unless
    /// `STDCHK_NET_BACKEND=threaded`).
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind or the manager is unreachable.
    pub fn spawn(net: BenefactorNetConfig) -> io::Result<BenefactorServer> {
        BenefactorServer::spawn_with(net, ServerOpts::default())
    }

    /// [`BenefactorServer::spawn`] with explicit transport tuning.
    ///
    /// # Errors
    ///
    /// As [`BenefactorServer::spawn`].
    pub fn spawn_with(net: BenefactorNetConfig, opts: ServerOpts) -> io::Result<BenefactorServer> {
        match opts.backend {
            Backend::Reactor => BenefactorServer::spawn_reactor(net, opts),
            Backend::Threaded => BenefactorServer::spawn_threaded(net, opts),
        }
    }

    /// Reactor backend: control + data planes on one epoll worker pool.
    fn spawn_reactor(net: BenefactorNetConfig, opts: ServerOpts) -> io::Result<BenefactorServer> {
        let listener = TcpListener::bind(&net.listen)?;
        let addr = listener.local_addr()?;
        // stdchk-allow(no-blocking-on-pump): startup path on the caller's thread, before any pump worker exists
        let mgr_stream = dial(&net.manager_addr, DIAL_TIMEOUT)?;
        write_frame(
            &mut &mgr_stream,
            &Msg::Hello {
                role: Role::Benefactor,
                node: NodeId(0),
            },
        )
        .map_err(|e| io::Error::other(format!("manager handshake failed: {e}")))?;

        let mut sm = Benefactor::new(NodeId(0), net.total_space, net.cfg);
        sm.set_advertised_addr(addr.to_string());
        let clock = Clock::new();
        sm.adopt_existing(net.store.entries()?, clock.now());

        let app = Arc::new(BenefApp {
            host: OnceLock::new(),
            handle: OnceLock::new(),
            kinds: OrderedMutex::new(ranks::BENEF_KINDS, "benef.kinds", HashMap::new()),
            weak_self: OnceLock::new(),
            manager_addr: net.manager_addr.clone(),
        });
        let _ = app.weak_self.set(Arc::downgrade(&app));
        let reactor = Reactor::new(
            clock,
            Arc::clone(&app) as Arc<dyn ReactorApp>,
            ReactorConfig {
                workers: opts.workers,
            },
        )?;
        let handle = reactor.handle().clone();
        let mgr_token = handle.prepare(mgr_stream, ConnOpts::dial_default())?;
        app.kinds.lock().insert(mgr_token, BKind::Mgr);
        handle.arm(mgr_token);
        let mgr_link = Link::Event {
            handle: handle.downgrade(),
            token: mgr_token,
        };
        let lane = opts.io_lane.then(|| Arc::new(IoLane::new()));
        if lane.is_some() {
            // Compaction fsyncs defer to `maintain` on the lane instead
            // of running on whichever pump executed the delete.
            net.store.set_deferred_maintenance(true);
        }
        let effects = Arc::new(BenefEffects {
            store: net.store,
            mgr: OrderedMutex::new(ranks::BENEF_MGR, "benef.mgr", mgr_link),
            conns: OrderedMutex::new(ranks::BENEF_CONNS, "benef.conns", HashMap::new()),
            peers: OrderedMutex::new(ranks::BENEF_PEERS, "benef.peers", HashMap::new()),
            resolver: OrderedMutex::new(
                ranks::BENEF_RESOLVER,
                "benef.resolver",
                ResolveClient::new(&net.manager_addr),
            ),
            host: OrderedMutex::new(ranks::BENEF_HOST, "benef.host", None),
            rapp: OrderedMutex::new(ranks::BENEF_RAPP, "benef.rapp", None),
            lane: lane.clone(),
            zerocopy: crate::zerocopy_enabled(),
        });
        let host = NodeHost::new(sm, clock, Arc::clone(&effects));
        let _ = app.host.set(Arc::clone(&host));
        let _ = app.handle.set(handle.downgrade());
        *effects.rapp.lock() = Some(Arc::clone(&app));
        // Lane completions feed Stored acks back through this reference.
        *effects.host.lock() = Some(Arc::clone(&host));
        // Join/heartbeat/GC timers fire from the reactor tick once the
        // host is visible to the app (set above).
        handle.add_listener(listener, 0, ConnOpts::server_default(opts.idle_timeout))?;

        Ok(BenefactorServer {
            host,
            addr,
            reactor: Some(reactor),
            lane,
        })
    }

    /// Legacy thread-per-connection backend.
    fn spawn_threaded(net: BenefactorNetConfig, opts: ServerOpts) -> io::Result<BenefactorServer> {
        let listener = TcpListener::bind(&net.listen)?;
        let addr = listener.local_addr()?;
        // stdchk-allow(no-blocking-on-pump): startup path on the caller's thread (threaded backend)
        let mgr_stream = dial(&net.manager_addr, DIAL_TIMEOUT)?;
        let mgr = Sender::new(mgr_stream.try_clone()?);
        mgr.send(&Msg::Hello {
            role: Role::Benefactor,
            node: NodeId(0),
        })
        .map_err(|e| io::Error::other(format!("manager handshake failed: {e}")))?;

        let mut sm = Benefactor::new(NodeId(0), net.total_space, net.cfg);
        sm.set_advertised_addr(addr.to_string());
        // Adopt whatever survived a restart in the blob store. `entries()`
        // comes from the store's index (or file metadata), so restart cost
        // does not scale with the stored bytes.
        let clock = Clock::new();
        sm.adopt_existing(net.store.entries()?, clock.now());

        let first_reader = mgr.reader()?;
        let lane = opts.io_lane.then(|| Arc::new(IoLane::new()));
        if lane.is_some() {
            net.store.set_deferred_maintenance(true);
        }
        let effects = Arc::new(BenefEffects {
            store: net.store,
            mgr: OrderedMutex::new(ranks::BENEF_MGR, "benef.mgr", Link::Thread(mgr)),
            conns: OrderedMutex::new(ranks::BENEF_CONNS, "benef.conns", HashMap::new()),
            peers: OrderedMutex::new(ranks::BENEF_PEERS, "benef.peers", HashMap::new()),
            resolver: OrderedMutex::new(
                ranks::BENEF_RESOLVER,
                "benef.resolver",
                ResolveClient::new(&net.manager_addr),
            ),
            host: OrderedMutex::new(ranks::BENEF_HOST, "benef.host", None),
            rapp: OrderedMutex::new(ranks::BENEF_RAPP, "benef.rapp", None),
            lane: lane.clone(),
            // The blocking transport writes whole frames from one
            // buffer; the sendfile path needs the reactor's resumable
            // outbound queue.
            zerocopy: false,
        });
        let host = NodeHost::new(sm, clock, Arc::clone(&effects));
        *effects.host.lock() = Some(Arc::clone(&host));

        // The generic event loop replaces the bespoke ticker: joining,
        // heartbeats, GC reports, put timeouts and re-offers all fire from
        // Benefactor::poll_timeout.
        spawn_node_loop("stdchk-benef-node", Arc::clone(&host));

        // Manager message stream, with reconnect: a benefactor outlives
        // manager restarts — its next heartbeat re-registers it (soft
        // state), and stashed commits are re-offered by its timers.
        {
            let host = Arc::clone(&host);
            let manager_addr = net.manager_addr.clone();
            thread::Builder::new()
                .name("stdchk-benef-mgr".into())
                .spawn(move || {
                    let mut reader = Some(first_reader);
                    loop {
                        if host.is_shutdown() {
                            return;
                        }
                        if let Some(r) = reader.take() {
                            let h2 = Arc::clone(&host);
                            // stdchk-allow(no-blocking-on-pump): dedicated manager-reader thread (stdchk-benef-mgr), not a pump worker
                            read_loop(r, move |msg| h2.deliver(MANAGER_NODE, msg));
                        }
                        // Disconnected: redial until it works.
                        loop {
                            if host.is_shutdown() {
                                return;
                            }
                            thread::sleep(Duration::from_millis(250));
                            // stdchk-allow(no-blocking-on-pump): same dedicated manager-reader thread; redial loops here between read_loop sessions
                            let Ok(stream) = dial(&manager_addr, DIAL_TIMEOUT) else {
                                continue;
                            };
                            let Ok(rd) = stream.try_clone() else { continue };
                            let sender = Sender::new(stream);
                            let my_id = host.with_node(|n| n.id());
                            let _ = sender.send(&Msg::Hello {
                                role: Role::Benefactor,
                                node: my_id,
                            });
                            *host.effects().mgr.lock() = Link::Thread(sender);
                            reader = Some(rd);
                            break;
                        }
                    }
                })
                .expect("spawn mgr reader");
        }

        // Data-path listener.
        {
            let host = Arc::clone(&host);
            thread::Builder::new()
                .name("stdchk-benef-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if host.is_shutdown() {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        let host = Arc::clone(&host);
                        thread::Builder::new()
                            .name("stdchk-benef-conn".into())
                            .spawn(move || serve_data_conn(host, stream))
                            .expect("spawn conn");
                    }
                })
                .expect("spawn accept");
        }

        Ok(BenefactorServer {
            host,
            addr,
            reactor: None,
            lane,
        })
    }

    /// The data-path listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node id assigned by the manager (0 until joined).
    pub fn node_id(&self) -> NodeId {
        self.host.with_node(|n| n.id())
    }

    /// Chunks currently stored.
    pub fn chunk_count(&self) -> usize {
        self.host.with_node(|n| n.chunk_count())
    }

    /// Free contributed bytes.
    pub fn free_space(&self) -> u64 {
        self.host.with_node(|n| n.free_space())
    }

    /// Cumulative transport counters (reactor backend only): bytes and
    /// frames each way, plus copied vs zero-copy payload bytes — the
    /// debug hook proving which transmit path served a workload.
    pub fn transport_stats(&self) -> Option<crate::reactor::TransportStats> {
        self.reactor.as_ref().map(|r| r.handle().transport_stats())
    }

    /// Stops serving (threads exit as their sockets drain; the reactor
    /// joins its workers).
    pub fn shutdown(&self) {
        self.host.shutdown();
        // Drain the lane before the reactor dies so in-flight durable
        // waits still get to ack (the store's flusher lives until the
        // store Arc drops, so queued waits complete rather than hang).
        if let Some(lane) = &self.lane {
            lane.shutdown();
        }
        if let Some(reactor) = &self.reactor {
            reactor.shutdown();
        }
        let _ = TcpStream::connect(self.addr);
        self.host.effects().mgr.lock().shutdown();
        // Break the host↔effects/app reference cycles so the node drops.
        *self.host.effects().host.lock() = None;
        *self.host.effects().rapp.lock() = None;
        for (_, c) in self.host.effects().conns.lock().drain() {
            c.shutdown();
        }
        for (_, p) in self.host.effects().peers.lock().drain() {
            if let PeerState::Up(link) = p {
                link.shutdown();
            }
        }
    }
}

impl Drop for BenefactorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one inbound data connection (client writes/reads or peer
/// replication pushes).
fn serve_data_conn(host: Arc<BenefHost>, stream: TcpStream) {
    let sender = Sender::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let Ok(reader) = sender.reader() else { return };
    // Synthetic per-connection peer id, registered so replies route back on
    // this socket from any pumping thread.
    let conn_id = NodeId((1 << 50) | CONN_IDS.fetch_add(1, Ordering::Relaxed));
    host.effects()
        .conns
        .lock()
        .insert(conn_id, Link::Thread(sender.clone()));
    let host2 = Arc::clone(&host);
    // stdchk-allow(no-blocking-on-pump): threaded backend per-connection reader thread
    read_loop(reader, move |msg| match msg {
        Msg::Hello { .. } | Msg::Pong { .. } => {}
        Msg::Ping { nonce } => {
            let _ = sender.send(&Msg::Pong { nonce });
        }
        other => host2.deliver(conn_id, other),
    });
    host.effects().conns.lock().remove(&conn_id);
}
