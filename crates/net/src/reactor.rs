//! Readiness-based network core: an epoll reactor with a fixed worker
//! pool.
//!
//! The thread-per-connection transport scaled threads with *connections*;
//! this module scales with *workers*. A [`Reactor`] owns N worker
//! threads, each running an `epoll_wait` loop over nonblocking sockets:
//!
//! - **inbound**: readable sockets are drained into a per-worker scratch
//!   buffer and fed through an incremental
//!   [`FrameDecoder`]; every decoded
//!   message is handed to the application via [`ReactorApp::on_msg`]
//!   (chunk payloads are zero-copy slices of the frame buffer);
//! - **outbound**: [`ReactorHandle::send`] serializes onto the
//!   connection's resumable [`FrameEncoder`]
//!   and flushes opportunistically; what the socket refuses is written by
//!   the owning worker when `EPOLLOUT` fires. Outbound buffers are
//!   **bounded**: a peer that stops draining (or died silently) is
//!   disconnected — it can never block the pump;
//! - **timers**: worker 0 folds the application's
//!   [`poll_timeout`](stdchk_core::Node::poll_timeout)-derived deadline
//!   ([`ReactorApp::next_deadline`]) and the connection sweep into its
//!   `epoll_wait` timeout. The sweep reaps connections that exceeded
//!   their idle timeout and emits transport-level `Ping`s on keepalive
//!   connections (`Ping`/`Pong` never reach the application);
//! - **blocking lane**: one auxiliary thread runs queued blocking jobs
//!   (dials, address resolution) so reactor workers never block on
//!   connect or RPC round-trips ([`ReactorHandle::spawn_blocking`]).
//!
//! Thread count is `workers + 1` regardless of connection count.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use stdchk_util::ordlock::{Condvar, OrderedMutex};

use crate::ranks;

use stdchk_proto::frame::{FrameDecoder, FrameEncoder, MAX_FRAME};
use stdchk_proto::msg::Msg;
use stdchk_util::Time;

use crate::conn::Clock;

mod sys {
    //! Thin `extern "C"` bindings for Linux epoll + eventfd. No external
    //! crates: the platform is Linux and the surface is five syscalls.

    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EFD_CLOEXEC: i32 = 0o2000000;

    /// One epoll readiness event. On x86-64 the kernel ABI packs this
    /// struct (no padding between `events` and `data`).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn sendfile(out_fd: i32, in_fd: i32, offset: *mut i64, count: usize) -> isize;
    }

    /// One `sendfile(2)` push from `in_fd` at `offset` into `out_fd`:
    /// the kernel copies file pages straight into the socket, no user
    /// buffer. Returns bytes moved; `WouldBlock`/`Interrupted` surface
    /// as their `io::ErrorKind`s for the caller's readiness loop.
    pub fn send_file(out_fd: i32, in_fd: i32, offset: u64, count: usize) -> io::Result<usize> {
        // Kernel caps a single sendfile at ~2 GiB; clamp well under it.
        let mut off = offset as i64;
        // SAFETY: both fds are owned by the caller and open for the
        // duration of the call; `off` is a live stack slot the kernel
        // writes back through; the count clamp keeps the request inside
        // the syscall's documented range. sendfile touches no user
        // memory besides `off`.
        let n = unsafe { sendfile(out_fd, in_fd, &mut off, count.min(1 << 30)) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    pub fn epoll_create() -> io::Result<i32> {
        // SAFETY: no pointers cross the boundary; the flag constant
        // matches the kernel ABI. The returned fd (or -1) is checked.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    fn ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, properly `#[repr(C)]`-laid-out stack
        // struct for the duration of the call; the kernel only reads it.
        let r = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if r < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn epoll_add(epfd: i32, fd: i32, token: u64, events: u32) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
    }

    pub fn epoll_mod(epfd: i32, fd: i32, token: u64, events: u32) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn epoll_del(epfd: i32, fd: i32) {
        let _ = ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0);
    }

    const EINTR: i32 = 4;

    /// Waits for events. Only `EINTR` surfaces as zero events; any other
    /// negative return (e.g. `EBADF` from a close race) is a real error
    /// the caller must fail on — treating it as "no events" would turn
    /// the event loop into a silent 100% CPU spin.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` errno, except `EINTR`.
    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the pointer/len pair comes from a live `&mut [_]`, so
        // the kernel writes at most `events.len()` records into memory we
        // exclusively own; `EpollEvent` is plain old data, valid for any
        // byte pattern the kernel stores.
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }

    pub fn eventfd_new() -> io::Result<i32> {
        // SAFETY: no pointers cross the boundary; flags match the
        // kernel ABI; the returned fd (or -1) is checked.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn eventfd_wake(fd: i32) {
        let one: u64 = 1;
        // SAFETY: the kernel reads exactly 8 bytes from `one`, a live
        // stack u64. A failed write (full counter) is deliberately
        // ignored: the eventfd is already signaled, which is all a wake
        // needs.
        unsafe {
            let _ = write(fd, (&one as *const u64).cast(), 8);
        }
    }

    pub fn eventfd_drain(fd: i32) {
        let mut buf = [0u8; 8];
        // SAFETY: the kernel writes at most 8 bytes into `buf`, a live
        // 8-byte stack array. EAGAIN (nothing to drain) is the expected
        // no-op and is deliberately ignored.
        unsafe {
            let _ = read(fd, buf.as_mut_ptr().cast(), 8);
        }
    }

    pub fn close_fd(fd: i32) {
        // SAFETY: no memory crosses the boundary. Callers pass fds they
        // own exactly once (registry removal precedes the close), so no
        // double-close can invalidate a reused descriptor.
        unsafe {
            let _ = close(fd);
        }
    }
}

/// Identifies one registered connection for the lifetime of the reactor.
/// Tokens are never reused.
pub type ConnToken = u64;

/// Event-loop data slot for worker wakeup eventfds.
const WAKE_TOKEN: u64 = u64::MAX;
/// Listener tokens carry this bit; connection tokens never do.
const LISTENER_BIT: u64 = 1 << 63;
/// Connection sweep cadence (idle reaping, keepalive pings).
const SWEEP_EVERY: Duration = Duration::from_millis(100);
/// Upper bound on any worker sleep (safety net against missed wakes).
const MAX_SLEEP_MS: i64 = 500;
/// Per-event read budget before yielding back to the event loop
/// (level-triggered epoll re-reports leftover readability).
const READ_BURST: usize = 4;

/// Per-connection transport tuning.
#[derive(Clone, Copy, Debug)]
pub struct ConnOpts {
    /// Reap the connection when no bytes arrive for this long. The
    /// liveness bound for steady-state reads: a silently dead peer is
    /// disconnected instead of leaking the connection forever.
    pub idle_timeout: Option<Duration>,
    /// Send a transport `Ping` when the connection has been read-idle
    /// this long. Dial-side connections use it to stay ahead of the
    /// server's idle reaper (the `Pong` refreshes both ends).
    pub keepalive: Option<Duration>,
    /// Disconnect when the outbound buffer exceeds this many bytes: a
    /// peer that stops draining must never block or bloat the pump.
    pub max_outbound: usize,
    /// Disconnect when outbound bytes are pending but the socket has
    /// accepted none of them for this long. This is the time-domain
    /// liveness bound on sends (the byte-domain bound is `max_outbound`):
    /// a dead or wedged peer fails in-flight transfers over within
    /// seconds — the reactor's equivalent of the blocking transport's
    /// socket write timeout. Slow-but-moving peers are unaffected; only
    /// zero progress trips it.
    pub write_stall_timeout: Option<Duration>,
    /// Largest accepted inbound frame.
    pub max_frame: u32,
    /// Keep outbound chunk payloads as shared `Bytes` segments and flush
    /// header + payload with one vectored write (`writev`), instead of
    /// flattening every frame into a contiguous copy. Also gates the
    /// `sendfile` file-region path. Defaults from `STDCHK_ZEROCOPY`
    /// ([`crate::zerocopy_enabled`]); off is the copying A/B baseline.
    pub zerocopy: bool,
}

impl Default for ConnOpts {
    fn default() -> ConnOpts {
        ConnOpts {
            idle_timeout: None,
            keepalive: None,
            max_outbound: 256 << 20,
            write_stall_timeout: Some(Duration::from_secs(5)),
            max_frame: MAX_FRAME,
            zerocopy: crate::zerocopy_enabled(),
        }
    }
}

impl ConnOpts {
    /// Defaults for server-accepted connections: idle peers are reaped.
    pub fn server_default(idle_timeout: Option<Duration>) -> ConnOpts {
        ConnOpts {
            idle_timeout,
            ..ConnOpts::default()
        }
    }

    /// Defaults for dialed (client-side) connections: keepalive pings
    /// hold the server-side reaper at bay across long idle stretches,
    /// and the idle timeout reaps a silently dead peer that stops
    /// answering them (in-flight transfers fail over much sooner via
    /// `write_stall_timeout`).
    pub fn dial_default() -> ConnOpts {
        ConnOpts {
            keepalive: Some(Duration::from_secs(15)),
            idle_timeout: Some(Duration::from_secs(60)),
            ..ConnOpts::default()
        }
    }
}

/// Why a connection was closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed the stream.
    Eof,
    /// Transport error (read/write failure).
    Error,
    /// No inbound bytes within the idle timeout: peer presumed dead.
    IdleTimeout,
    /// Outbound buffer exceeded its bound: peer too slow or dead.
    Backpressure,
    /// Undecodable inbound bytes (oversized or malformed frame).
    Protocol,
    /// Closed locally via [`ReactorHandle::close`].
    Local,
}

/// The application half of the reactor: role-specific handling of
/// accepted connections, decoded messages, closures, flushed frames, and
/// protocol timers. All callbacks may fire on any worker thread (or, for
/// `on_sent`, on the thread that called `send`); implementations route by
/// token and share state behind locks, exactly like [`crate::Effects`].
pub trait ReactorApp: Send + Sync {
    /// A listener accepted `conn` (`listener` is the `ctx` the listener
    /// was registered with).
    fn on_accept(&self, conn: ConnToken, listener: u64) {
        let _ = (conn, listener);
    }

    /// One decoded inbound message. Transport `Ping`/`Pong` frames are
    /// handled by the reactor and never reach this.
    fn on_msg(&self, conn: ConnToken, msg: Msg);

    /// The connection is gone (any cause except reactor shutdown).
    fn on_close(&self, conn: ConnToken, reason: CloseReason) {
        let _ = (conn, reason);
    }

    /// A frame sent with a tracking token fully left this host's socket
    /// buffer into the kernel (ends OAB-style transmit windows).
    fn on_sent(&self, conn: ConnToken, token: u64) {
        let _ = (conn, token);
    }

    /// The next protocol deadline, folded into worker 0's `epoll_wait`
    /// timeout.
    fn next_deadline(&self) -> Option<Time> {
        None
    }

    /// Called by worker 0 once `now` reaches [`ReactorApp::next_deadline`].
    fn on_tick(&self, now: Time) {
        let _ = now;
    }
}

/// A frame whose payload leaves the host by `sendfile`: the encoded
/// head (length prefix + leading fields) is written from memory, then
/// `remaining` payload bytes are pushed kernel-side from `file` starting
/// at `offset` — the bytes never enter user space. Fully resumable:
/// `head_off`/`offset`/`remaining` advance as the socket accepts bytes,
/// so backpressure, stall sweeps and the bounded-queue accounting treat
/// a region exactly like buffered frames.
struct PendingFileRegion {
    head: Vec<u8>,
    head_off: usize,
    file: Arc<std::fs::File>,
    offset: u64,
    remaining: u64,
    token: Option<u64>,
}

impl PendingFileRegion {
    fn pending_bytes(&self) -> usize {
        (self.head.len() - self.head_off) + self.remaining as usize
    }
}

/// One queued transmit item, in wire order: a run of encoded frames or
/// a kernel-copy file region.
enum TxItem {
    Frames(FrameEncoder),
    Region(PendingFileRegion),
}

/// Per-connection transport counters. Relaxed atomics: written by
/// whichever thread holds the relevant lock, read by the stats hook.
#[derive(Default)]
struct ConnStats {
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    frames_tx: AtomicU64,
    frames_rx: AtomicU64,
    copied_payload_tx: AtomicU64,
    zerocopy_payload_tx: AtomicU64,
}

/// Aggregated transport counters ([`ReactorHandle::transport_stats`]).
///
/// `copied_payload_tx` counts chunk-payload bytes that were flattened
/// into a contiguous frame buffer before hitting the socket;
/// `zerocopy_payload_tx` counts payload bytes that left either as shared
/// `Bytes` segments under `writev` or kernel-side via `sendfile`. A
/// zero `copied_payload_tx` over a sealed-segment read workload is the
/// proof that no payload byte was memcpy'd on the transmit path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes the sockets accepted (headers + payloads).
    pub bytes_tx: u64,
    /// Bytes read off the sockets.
    pub bytes_rx: u64,
    /// Frames enqueued for transmit (file regions count as one frame).
    pub frames_tx: u64,
    /// Frames decoded from inbound bytes (including transport pings).
    pub frames_rx: u64,
    /// Payload bytes copied into a flat frame buffer (the baseline path).
    pub copied_payload_tx: u64,
    /// Payload bytes sent without a user-space copy (writev or sendfile).
    pub zerocopy_payload_tx: u64,
}

impl TransportStats {
    fn fold(&mut self, s: &ConnStats) {
        self.bytes_tx += s.bytes_tx.load(Ordering::Relaxed);
        self.bytes_rx += s.bytes_rx.load(Ordering::Relaxed);
        self.frames_tx += s.frames_tx.load(Ordering::Relaxed);
        self.frames_rx += s.frames_rx.load(Ordering::Relaxed);
        self.copied_payload_tx += s.copied_payload_tx.load(Ordering::Relaxed);
        self.zerocopy_payload_tx += s.zerocopy_payload_tx.load(Ordering::Relaxed);
    }
}

/// Resumable outbound state, shared by sender threads and the owning
/// worker.
struct Outbound {
    /// Wire-ordered transmit queue. Invariant: at most the front item
    /// may be partially written; a drained item is popped immediately
    /// (except a lone drained encoder, kept as the reusable buffer so a
    /// region-free connection never reallocates).
    q: std::collections::VecDeque<TxItem>,
    /// True while `EPOLLOUT` is armed for this connection.
    epollout: bool,
    /// Sticky: set at close so late senders fail instead of queueing.
    closed: bool,
}

impl Outbound {
    /// Bytes not yet accepted by the socket (frames + file regions).
    fn pending_bytes(&self) -> usize {
        self.q
            .iter()
            .map(|i| match i {
                TxItem::Frames(enc) => enc.pending_bytes(),
                TxItem::Region(r) => r.pending_bytes(),
            })
            .sum()
    }

    /// True when nothing is waiting to be written.
    fn is_empty(&self) -> bool {
        self.q.iter().all(|i| match i {
            TxItem::Frames(enc) => enc.is_empty(),
            TxItem::Region(_) => false,
        })
    }

    /// Serializes `msg` onto the tail encoder (appending one if the tail
    /// is a file region), crediting the payload-copy counters.
    fn push_msg(&mut self, msg: &Msg, track: Option<u64>, vectored: bool, stats: &ConnStats) {
        if !matches!(self.q.back(), Some(TxItem::Frames(_))) {
            self.q
                .push_back(TxItem::Frames(FrameEncoder::with_vectored(vectored)));
        }
        let Some(TxItem::Frames(enc)) = self.q.back_mut() else {
            unreachable!("just ensured a tail encoder");
        };
        let (c0, s0) = (enc.copied_payload_bytes(), enc.shared_payload_bytes());
        enc.push_tracked(msg, track);
        stats
            .copied_payload_tx
            .fetch_add(enc.copied_payload_bytes() - c0, Ordering::Relaxed);
        stats
            .zerocopy_payload_tx
            .fetch_add(enc.shared_payload_bytes() - s0, Ordering::Relaxed);
        stats.frames_tx.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes queued items to `stream` in order until everything drained
    /// or the socket refused. Returns `Ok(true)` when fully drained.
    /// Completion tokens of fully written frames/regions land in
    /// `completed` (fire callbacks only after dropping the out lock).
    fn flush(
        &mut self,
        stream: &TcpStream,
        completed: &mut Vec<u64>,
        stats: &ConnStats,
    ) -> io::Result<bool> {
        loop {
            match self.q.front_mut() {
                None => return Ok(true),
                Some(TxItem::Frames(enc)) => {
                    let before = enc.pending_bytes();
                    let mut w = stream;
                    let drained = enc.write_to(&mut w, completed);
                    stats
                        .bytes_tx
                        .fetch_add((before - enc.pending_bytes()) as u64, Ordering::Relaxed);
                    if !drained? {
                        return Ok(false);
                    }
                    if self.q.len() == 1 {
                        // Lone drained encoder: keep it as the buffer.
                        return Ok(true);
                    }
                    self.q.pop_front();
                }
                Some(TxItem::Region(r)) => {
                    while r.head_off < r.head.len() {
                        match (&*stream).write(&r.head[r.head_off..]) {
                            Ok(0) => {
                                return Err(io::Error::new(
                                    io::ErrorKind::WriteZero,
                                    "socket accepted zero bytes",
                                ))
                            }
                            Ok(n) => {
                                r.head_off += n;
                                stats.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => return Err(e),
                        }
                    }
                    while r.remaining > 0 {
                        match sys::send_file(
                            stream.as_raw_fd(),
                            r.file.as_raw_fd(),
                            r.offset,
                            r.remaining as usize,
                        ) {
                            Ok(0) => {
                                // The file shrank under us (should never
                                // happen to a sealed segment): a stuck
                                // region would wedge the queue forever.
                                return Err(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "segment file truncated under pending sendfile region",
                                ));
                            }
                            Ok(n) => {
                                r.offset += n as u64;
                                r.remaining -= n as u64;
                                stats.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                                stats
                                    .zerocopy_payload_tx
                                    .fetch_add(n as u64, Ordering::Relaxed);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => return Err(e),
                        }
                    }
                    if let Some(t) = r.token {
                        completed.push(t);
                    }
                    self.q.pop_front();
                }
            }
        }
    }
}

/// One registered connection.
struct ConnShared {
    token: ConnToken,
    stream: TcpStream,
    /// Owning worker (reads and `EPOLLOUT` flushes happen there).
    worker: usize,
    opts: ConnOpts,
    stats: ConnStats,
    dec: OrderedMutex<FrameDecoder>,
    out: OrderedMutex<Outbound>,
    /// Milliseconds since reactor start of the last inbound byte.
    last_read_ms: AtomicU64,
    /// Milliseconds of the last outbound write progress (any byte the
    /// socket accepted, or the moment the outbound buffer went from
    /// empty to non-empty — the start of a potential stall window).
    last_write_ms: AtomicU64,
    /// Milliseconds of the last keepalive ping.
    last_ping_ms: AtomicU64,
    closing: AtomicBool,
}

struct ListenerEntry {
    listener: TcpListener,
    ctx: u64,
    opts: ConnOpts,
}

struct WorkerIo {
    epfd: i32,
    wakefd: i32,
}

type BlockingJob = Box<dyn FnOnce(&ReactorHandle) + Send>;

struct Inner {
    clock: Clock,
    app: Arc<dyn ReactorApp>,
    workers: Vec<WorkerIo>,
    conns: OrderedMutex<HashMap<ConnToken, Arc<ConnShared>>>,
    listeners: OrderedMutex<HashMap<u64, ListenerEntry>>,
    next_token: AtomicU64,
    next_listener: AtomicU64,
    next_worker: AtomicUsize,
    next_ping: AtomicU64,
    shutdown: AtomicBool,
    /// Set when a non-zero worker delivered input; cleared by worker 0.
    /// Skips redundant eventfd wakes while one is already pending.
    timer_dirty: AtomicBool,
    /// Counters of connections that already closed, so
    /// [`ReactorHandle::transport_stats`] stays cumulative.
    dead_stats: OrderedMutex<TransportStats>,
    epoch: Instant,
    jobs: OrderedMutex<Vec<(Instant, u64, BlockingJob)>>,
    job_seq: AtomicU64,
    job_cv: Condvar,
}

impl Drop for Inner {
    fn drop(&mut self) {
        for w in &self.workers {
            sys::close_fd(w.epfd);
            sys::close_fd(w.wakefd);
        }
    }
}

/// Cheap cloneable handle: register listeners and connections, send
/// frames, close connections, queue blocking jobs.
#[derive(Clone)]
pub struct ReactorHandle {
    inner: Arc<Inner>,
}

/// Non-owning [`ReactorHandle`]: what applications and connection
/// registries store. The reactor's `Inner` owns the application, so a
/// strong handle inside the application (or inside anything the
/// application transitively owns, like an effects registry) would be a
/// reference cycle that leaks the whole transport on shutdown.
#[derive(Clone, Default)]
pub struct WeakHandle {
    inner: std::sync::Weak<Inner>,
}

impl std::fmt::Debug for WeakHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeakHandle").finish_non_exhaustive()
    }
}

impl WeakHandle {
    /// The strong handle, while the reactor is alive.
    pub fn upgrade(&self) -> Option<ReactorHandle> {
        self.inner.upgrade().map(|inner| ReactorHandle { inner })
    }
}

impl ReactorHandle {
    /// A non-owning handle for storage inside application state.
    pub fn downgrade(&self) -> WeakHandle {
        WeakHandle {
            inner: Arc::downgrade(&self.inner),
        }
    }
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle")
            .field("workers", &self.inner.workers.len())
            .finish_non_exhaustive()
    }
}

/// Tuning for a [`Reactor`].
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Event-loop worker threads. Thread count stays `workers + 1`
    /// (blocking lane) no matter how many connections register.
    pub workers: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig { workers: 2 }
    }
}

/// A running reactor: worker threads + blocking lane. Shuts down (and
/// joins its threads) on [`Reactor::shutdown`] or drop.
pub struct Reactor {
    handle: ReactorHandle,
    joins: OrderedMutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").finish_non_exhaustive()
    }
}

impl Reactor {
    /// Starts a reactor serving `app`. `clock` maps wall time onto the
    /// protocol [`Time`] used for [`ReactorApp::next_deadline`].
    ///
    /// # Errors
    ///
    /// Fails if the epoll or eventfd descriptors cannot be created.
    pub fn new(clock: Clock, app: Arc<dyn ReactorApp>, cfg: ReactorConfig) -> io::Result<Reactor> {
        let nworkers = cfg.workers.max(1);
        let mut workers: Vec<WorkerIo> = Vec::with_capacity(nworkers);
        let mut setup = || -> io::Result<()> {
            for _ in 0..nworkers {
                let epfd = sys::epoll_create()?;
                let wakefd = match sys::eventfd_new() {
                    Ok(fd) => fd,
                    Err(e) => {
                        sys::close_fd(epfd);
                        return Err(e);
                    }
                };
                sys::epoll_add(epfd, wakefd, WAKE_TOKEN, sys::EPOLLIN)?;
                workers.push(WorkerIo { epfd, wakefd });
            }
            Ok(())
        };
        if let Err(e) = setup() {
            for w in &workers {
                sys::close_fd(w.epfd);
                sys::close_fd(w.wakefd);
            }
            return Err(e);
        }
        let inner = Arc::new(Inner {
            clock,
            app,
            workers,
            conns: OrderedMutex::new(ranks::REACTOR_CONNS, "reactor.conns", HashMap::new()),
            listeners: OrderedMutex::new(
                ranks::REACTOR_LISTENERS,
                "reactor.listeners",
                HashMap::new(),
            ),
            next_token: AtomicU64::new(1),
            next_listener: AtomicU64::new(1),
            next_worker: AtomicUsize::new(0),
            next_ping: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            timer_dirty: AtomicBool::new(false),
            dead_stats: OrderedMutex::new(
                ranks::REACTOR_DEAD_STATS,
                "reactor.dead_stats",
                TransportStats::default(),
            ),
            epoch: Instant::now(),
            jobs: OrderedMutex::new(ranks::REACTOR_JOBS, "reactor.jobs", Vec::new()),
            job_seq: AtomicU64::new(0),
            job_cv: Condvar::new(),
        });
        let mut joins = Vec::with_capacity(nworkers + 1);
        for idx in 0..nworkers {
            let inner2 = Arc::clone(&inner);
            // Spawn failure (thread limit / OOM) at startup propagates:
            // a reactor with fewer workers than its epoll sets expect
            // would strand the connections hashed to the missing one.
            joins.push(
                thread::Builder::new()
                    .name(format!("stdchk-react-{idx}"))
                    .spawn(move || worker_loop(&inner2, idx))?,
            );
        }
        {
            let handle = ReactorHandle {
                inner: Arc::clone(&inner),
            };
            joins.push(
                thread::Builder::new()
                    .name("stdchk-react-dial".into())
                    .spawn(move || blocking_loop(handle))?,
            );
        }
        Ok(Reactor {
            handle: ReactorHandle { inner },
            joins: OrderedMutex::new(ranks::REACTOR_JOINS, "reactor.joins", joins),
        })
    }

    /// The reactor's handle.
    pub fn handle(&self) -> &ReactorHandle {
        &self.handle
    }

    /// Stops workers and the blocking lane, joins them (unless called
    /// from one of them), and shuts every connection down.
    pub fn shutdown(&self) {
        let inner = &self.handle.inner;
        if inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for w in &inner.workers {
            sys::eventfd_wake(w.wakefd);
        }
        inner.job_cv.notify_all();
        let me = thread::current().id();
        for j in self.joins.lock().drain(..) {
            if j.thread().id() != me {
                let _ = j.join();
            }
        }
        for (_, c) in inner.conns.lock().drain() {
            let _ = c.stream.shutdown(std::net::Shutdown::Both);
        }
        inner.listeners.lock().clear();
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ReactorHandle {
    fn now_ms(&self) -> u64 {
        self.inner.epoch.elapsed().as_millis() as u64
    }

    /// True once the reactor shut down.
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::Relaxed)
    }

    /// Registered connections (tests and introspection).
    pub fn conn_count(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Registers a listening socket; accepted connections get `opts` and
    /// are announced via [`ReactorApp::on_accept`] with `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking`/epoll registration failures.
    pub fn add_listener(&self, listener: TcpListener, ctx: u64, opts: ConnOpts) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let id = self.inner.next_listener.fetch_add(1, Ordering::Relaxed);
        let token = id | LISTENER_BIT;
        let fd = listener.as_raw_fd();
        self.inner.listeners.lock().insert(
            token,
            ListenerEntry {
                listener,
                ctx,
                opts,
            },
        );
        // Listeners live on worker 0 (accept is cheap; new conns are
        // distributed round-robin anyway).
        if let Err(e) = sys::epoll_add(self.inner.workers[0].epfd, fd, token, sys::EPOLLIN) {
            self.inner.listeners.lock().remove(&token);
            return Err(e);
        }
        Ok(())
    }

    /// Registers an already-connected stream (e.g. a dialed + handshaken
    /// socket), assigning it to a worker round-robin.
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking`/epoll registration failures.
    pub fn register(&self, stream: TcpStream, opts: ConnOpts) -> io::Result<ConnToken> {
        let token = self.prepare(stream, opts)?;
        self.arm(token);
        Ok(token)
    }

    /// First half of [`ReactorHandle::register`]: allocates the token and
    /// connection state but does **not** arm the socket in epoll — no
    /// callback can fire for it yet. Callers finish their bookkeeping
    /// (routing tables keyed by the token), then [`ReactorHandle::arm`].
    /// The accept path uses this internally so `on_accept` always
    /// happens-before the connection's first `on_msg`.
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` failures.
    pub fn prepare(&self, stream: TcpStream, opts: ConnOpts) -> io::Result<ConnToken> {
        if self.is_shutdown() {
            return Err(io::Error::other("reactor is shut down"));
        }
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        let worker =
            self.inner.next_worker.fetch_add(1, Ordering::Relaxed) % self.inner.workers.len();
        let conn = Arc::new(ConnShared {
            token,
            stream,
            worker,
            opts,
            stats: ConnStats::default(),
            dec: OrderedMutex::new(
                ranks::REACTOR_DEC,
                "conn.dec",
                FrameDecoder::new(opts.max_frame),
            ),
            out: OrderedMutex::new(
                ranks::REACTOR_OUT,
                "conn.out",
                Outbound {
                    q: std::collections::VecDeque::new(),
                    epollout: false,
                    closed: false,
                },
            ),
            last_read_ms: AtomicU64::new(self.now_ms()),
            last_write_ms: AtomicU64::new(self.now_ms()),
            last_ping_ms: AtomicU64::new(0),
            closing: AtomicBool::new(false),
        });
        self.inner.conns.lock().insert(token, Arc::clone(&conn));
        Ok(token)
    }

    /// Second half of [`ReactorHandle::prepare`]: arms the connection in
    /// its worker's epoll set. Messages may be delivered from the instant
    /// this returns (or even during the call, on another worker). No-op
    /// for unknown/closed tokens.
    pub fn arm(&self, token: ConnToken) {
        let Some(conn) = self.inner.conns.lock().get(&token).cloned() else {
            return;
        };
        // Anything sent between prepare() and arm() sits in the outbound
        // buffer; pick the initial interest mask accordingly (the mask is
        // always chosen under the out lock — see `update_interest`).
        let mut out = conn.out.lock();
        if out.closed {
            return;
        }
        // (Re)derive the flag: a pre-arm send's epoll_mod was a no-op, so
        // whatever it left in `epollout` is stale.
        out.epollout = !out.is_empty();
        let mut mask = sys::EPOLLIN | sys::EPOLLRDHUP;
        if out.epollout {
            mask |= sys::EPOLLOUT;
        }
        let armed = sys::epoll_add(
            self.inner.workers[conn.worker].epfd,
            conn.stream.as_raw_fd(),
            token,
            mask,
        );
        drop(out);
        if armed.is_err() {
            self.inner.close_conn(&conn, CloseReason::Error);
        }
    }

    /// Sends one message on `conn`: serialize onto the outbound buffer,
    /// flush what the socket accepts now, let the owning worker write the
    /// rest on `EPOLLOUT`.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown/closed, the write failed, or
    /// the outbound bound was exceeded (the connection is closed in the
    /// latter two cases). A successful return means *queued or written* —
    /// track a token ([`ReactorHandle::send_tracked`]) to learn when the
    /// frame fully left this host.
    pub fn send(&self, conn: ConnToken, msg: &Msg) -> io::Result<()> {
        self.send_impl(conn, msg, None)
    }

    /// [`ReactorHandle::send`] with a completion token reported through
    /// [`ReactorApp::on_sent`] when the frame's last byte is written.
    ///
    /// # Errors
    ///
    /// As [`ReactorHandle::send`].
    pub fn send_tracked(&self, conn: ConnToken, msg: &Msg, token: u64) -> io::Result<()> {
        self.send_impl(conn, msg, Some(token))
    }

    fn send_impl(&self, token: ConnToken, msg: &Msg, track: Option<u64>) -> io::Result<()> {
        let Some(conn) = self.inner.conns.lock().get(&token).cloned() else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "unknown connection",
            ));
        };
        self.inner.send_on(&conn, msg, track)
    }

    /// Sends one frame whose payload leaves straight from `file` via
    /// `sendfile`: `head` (the pre-encoded length prefix + leading
    /// fields, e.g. [`stdchk_proto::frame::get_chunk_ok_frame_head`]) is
    /// written from memory, then `len` payload bytes starting at
    /// `offset` are pushed kernel-side — they never enter user space.
    /// The region queues behind any buffered frames and participates in
    /// the same backpressure byte bound, stall sweep and `on_sent`
    /// tracking as ordinary sends. The file must be immutable over
    /// `[offset, offset + len)` (a sealed segment).
    ///
    /// # Errors
    ///
    /// As [`ReactorHandle::send`].
    pub fn send_file_region(
        &self,
        conn: ConnToken,
        head: Vec<u8>,
        file: Arc<std::fs::File>,
        offset: u64,
        len: u64,
        track: Option<u64>,
    ) -> io::Result<()> {
        let Some(conn) = self.inner.conns.lock().get(&conn).cloned() else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "unknown connection",
            ));
        };
        let region = PendingFileRegion {
            head,
            head_off: 0,
            file,
            offset,
            remaining: len,
            token: track,
        };
        self.inner.send_region_on(&conn, region)
    }

    /// Cumulative transport counters over live and closed connections.
    pub fn transport_stats(&self) -> TransportStats {
        let mut s = *self.inner.dead_stats.lock();
        for conn in self.inner.conns.lock().values() {
            s.fold(&conn.stats);
        }
        s
    }

    /// Closes `conn` (no-op if already gone). The application sees
    /// [`CloseReason::Local`].
    pub fn close(&self, conn: ConnToken) {
        let c = self.inner.conns.lock().get(&conn).cloned();
        if let Some(c) = c {
            self.inner.close_conn(&c, CloseReason::Local);
        }
    }

    /// Nudges worker 0 to recompute its timer sleep. Input delivered by
    /// reactor workers does this automatically; callers feeding protocol
    /// state from *outside* the reactor — the disk I/O lane completing a
    /// durable wait and handing `Stored` completions to the node — use
    /// this so a re-armed earlier deadline does not sit out the rest of
    /// worker 0's current sleep.
    pub fn notify_timer(&self) {
        if !self.inner.timer_dirty.swap(true, Ordering::Relaxed) {
            sys::eventfd_wake(self.inner.workers[0].wakefd);
        }
    }

    /// Runs `f` on the blocking lane — the one thread allowed to block on
    /// dials and RPC round-trips. Jobs run in due order.
    pub fn spawn_blocking(&self, f: impl FnOnce(&ReactorHandle) + Send + 'static) {
        self.spawn_blocking_after(Duration::ZERO, f);
    }

    /// [`ReactorHandle::spawn_blocking`] delayed by `delay` (redial
    /// backoff without blocking the lane).
    pub fn spawn_blocking_after(
        &self,
        delay: Duration,
        f: impl FnOnce(&ReactorHandle) + Send + 'static,
    ) {
        if self.is_shutdown() {
            return;
        }
        let seq = self.inner.job_seq.fetch_add(1, Ordering::Relaxed);
        self.inner
            .jobs
            .lock()
            .push((Instant::now() + delay, seq, Box::new(f)));
        self.inner.job_cv.notify_all();
    }
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Serialize + opportunistic flush; arms `EPOLLOUT` for the remainder.
    fn send_on(&self, conn: &Arc<ConnShared>, msg: &Msg, track: Option<u64>) -> io::Result<()> {
        self.enqueue_and_flush(conn, |out, conn| {
            out.push_msg(msg, track, conn.opts.zerocopy, &conn.stats);
        })
    }

    /// [`ReactorHandle::send_file_region`]'s transport half.
    fn send_region_on(&self, conn: &Arc<ConnShared>, region: PendingFileRegion) -> io::Result<()> {
        self.enqueue_and_flush(conn, |out, conn| {
            conn.stats.frames_tx.fetch_add(1, Ordering::Relaxed);
            out.q.push_back(TxItem::Region(region));
        })
    }

    /// The shared send tail: under the out lock, stamp the stall anchor
    /// on the empty→non-empty transition, enqueue via `push`, enforce the
    /// outbound byte bound, flush what the socket accepts now and arm
    /// `EPOLLOUT` for the rest. Completion callbacks fire after the lock
    /// drops.
    fn enqueue_and_flush(
        &self,
        conn: &Arc<ConnShared>,
        push: impl FnOnce(&mut Outbound, &ConnShared),
    ) -> io::Result<()> {
        let mut completed = Vec::new();
        let mut close_as = None;
        let result = {
            let mut out = conn.out.lock();
            if out.closed {
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "connection closed",
                ))
            } else {
                if out.is_empty() {
                    // Buffer going non-empty starts the stall window.
                    conn.last_write_ms.store(self.now_ms(), Ordering::Relaxed);
                }
                push(&mut out, conn);
                if out.pending_bytes() > conn.opts.max_outbound {
                    out.closed = true;
                    close_as = Some(CloseReason::Backpressure);
                    Err(io::Error::other("outbound buffer bound exceeded"))
                } else {
                    let before = out.pending_bytes();
                    match out.flush(&conn.stream, &mut completed, &conn.stats) {
                        Ok(drained) => {
                            if out.pending_bytes() != before {
                                conn.last_write_ms.store(self.now_ms(), Ordering::Relaxed);
                            }
                            self.update_interest(conn, &mut out, !drained);
                            Ok(())
                        }
                        Err(e) => {
                            out.closed = true;
                            close_as = Some(CloseReason::Error);
                            Err(e)
                        }
                    }
                }
            }
            // Lock dropped here, before any callback: `on_sent` handlers
            // may send again on this very connection.
        };
        for t in completed {
            self.app.on_sent(conn.token, t);
        }
        if let Some(reason) = close_as {
            self.close_conn(conn, reason);
        }
        result
    }

    /// Arms/disarms `EPOLLOUT` to match outbound occupancy. Caller holds
    /// the `out` lock, which serializes every `epoll_ctl` MOD for this
    /// connection.
    fn update_interest(&self, conn: &ConnShared, out: &mut Outbound, want_out: bool) {
        if out.epollout == want_out {
            return;
        }
        out.epollout = want_out;
        let mask = if want_out {
            sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT
        } else {
            sys::EPOLLIN | sys::EPOLLRDHUP
        };
        let _ = sys::epoll_mod(
            self.workers[conn.worker].epfd,
            conn.stream.as_raw_fd(),
            conn.token,
            mask,
        );
    }

    fn close_conn(&self, conn: &Arc<ConnShared>, reason: CloseReason) {
        if conn.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut out = conn.out.lock();
            out.closed = true;
            // Drop queued regions now: each holds an `Arc<File>` that
            // would otherwise pin a (possibly compacted-away) segment
            // file open for as long as the ConnShared lingers.
            out.q.clear();
        }
        sys::epoll_del(self.workers[conn.worker].epfd, conn.stream.as_raw_fd());
        self.conns.lock().remove(&conn.token);
        self.dead_stats.lock().fold(&conn.stats);
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        if !self.is_shutdown() {
            self.app.on_close(conn.token, reason);
        }
    }

    /// Drains readable bytes through the frame decoder and dispatches
    /// decoded messages. Returns true if any message reached the app.
    fn conn_readable(&self, conn: &Arc<ConnShared>, scratch: &mut [u8]) -> bool {
        let mut msgs: Vec<Msg> = Vec::new();
        let mut delivered = false;
        for _ in 0..READ_BURST {
            if conn.closing.load(Ordering::Relaxed) {
                return delivered;
            }
            match (&conn.stream).read(scratch) {
                Ok(0) => {
                    // Dispatch what decoded before the close.
                    delivered |= self.dispatch(conn, &mut msgs);
                    self.close_conn(conn, CloseReason::Eof);
                    return delivered;
                }
                Ok(n) => {
                    conn.last_read_ms.store(self.now_ms(), Ordering::Relaxed);
                    conn.stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                    let fed = conn.dec.lock().feed(&scratch[..n], &mut msgs);
                    delivered |= self.dispatch(conn, &mut msgs);
                    if fed.is_err() {
                        self.close_conn(conn, CloseReason::Protocol);
                        return delivered;
                    }
                    if n < scratch.len() {
                        // Socket likely drained; let epoll re-report if not.
                        return delivered;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return delivered,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(conn, CloseReason::Error);
                    return delivered;
                }
            }
        }
        delivered
    }

    /// Hands decoded messages to the app, answering transport pings
    /// in-place. Returns true if any message reached the app.
    fn dispatch(&self, conn: &Arc<ConnShared>, msgs: &mut Vec<Msg>) -> bool {
        let mut delivered = false;
        for msg in msgs.drain(..) {
            conn.stats.frames_rx.fetch_add(1, Ordering::Relaxed);
            match msg {
                Msg::Ping { nonce } => {
                    let _ = self.send_on(conn, &Msg::Pong { nonce }, None);
                }
                Msg::Pong { .. } => {}
                other => {
                    self.app.on_msg(conn.token, other);
                    delivered = true;
                }
            }
        }
        delivered
    }

    /// Flushes outbound on `EPOLLOUT`.
    fn conn_writable(&self, conn: &Arc<ConnShared>) {
        let mut completed = Vec::new();
        let mut failed = false;
        {
            let mut out = conn.out.lock();
            if out.closed {
                return;
            }
            let before = out.pending_bytes();
            match out.flush(&conn.stream, &mut completed, &conn.stats) {
                Ok(drained) => {
                    if out.pending_bytes() != before {
                        conn.last_write_ms.store(self.now_ms(), Ordering::Relaxed);
                    }
                    self.update_interest(conn, &mut out, !drained)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {
                    out.closed = true;
                    failed = true;
                }
            }
        }
        for t in completed {
            self.app.on_sent(conn.token, t);
        }
        if failed {
            self.close_conn(conn, CloseReason::Error);
        }
    }

    fn accept_ready(self: &Arc<Self>, token: u64) {
        loop {
            let accepted = {
                let listeners = self.listeners.lock();
                let Some(entry) = listeners.get(&token) else {
                    return;
                };
                match entry.listener.accept() {
                    Ok((stream, _)) => Some((stream, entry.ctx, entry.opts)),
                    Err(_) => None,
                }
            };
            let Some((stream, ctx, opts)) = accepted else {
                return;
            };
            let handle = ReactorHandle {
                inner: Arc::clone(self),
            };
            // prepare → on_accept → arm: the application's bookkeeping for
            // this token is complete before any worker can deliver its
            // first message (arming first would let a racing worker hand
            // `on_msg` a connection the app has never heard of).
            if let Ok(conn) = handle.prepare(stream, opts) {
                self.app.on_accept(conn, ctx);
                handle.arm(conn);
            }
        }
    }

    /// Worker 0: reap idle connections, fail stalled writers, emit
    /// keepalive pings.
    fn sweep(&self) {
        let now_ms = self.now_ms();
        let conns: Vec<Arc<ConnShared>> = self.conns.lock().values().cloned().collect();
        for conn in conns {
            let last_read = conn.last_read_ms.load(Ordering::Relaxed);
            if let Some(idle) = conn.opts.idle_timeout {
                if now_ms.saturating_sub(last_read) >= idle.as_millis() as u64 {
                    self.close_conn(&conn, CloseReason::IdleTimeout);
                    continue;
                }
            }
            if let Some(stall) = conn.opts.write_stall_timeout {
                // Pending bytes with zero progress: the peer is dead or
                // wedged mid-transfer. Closing produces SendFailed /
                // conn-down for everything in flight, so sessions fail
                // over in seconds instead of waiting out deadlines.
                //
                // Occupancy and the stall anchor are read as a pair under
                // the out lock: `send_on` stamps `last_write_ms` at the
                // empty→non-empty transition under the same lock, so the
                // sweep can never pair a just-enqueued frame with a stale
                // pre-enqueue stamp — a connection that sat write-idle
                // longer than the stall bound must not be closed on the
                // first sweep after a new frame lands, before the peer
                // had any chance to drain it.
                let (pending, last_write) = {
                    let out = conn.out.lock();
                    (!out.is_empty(), conn.last_write_ms.load(Ordering::Relaxed))
                };
                if pending && now_ms.saturating_sub(last_write) >= stall.as_millis() as u64 {
                    self.close_conn(&conn, CloseReason::Backpressure);
                    continue;
                }
            }
            if let Some(ka) = conn.opts.keepalive {
                // Ping when *write*-idle: what the remote reaper tracks is
                // inbound silence, so a connection busy receiving (but
                // sending nothing) still needs pings to stay alive there.
                let ka_ms = ka.as_millis() as u64;
                let last_write = conn.last_write_ms.load(Ordering::Relaxed);
                let last_ping = conn.last_ping_ms.load(Ordering::Relaxed);
                if now_ms.saturating_sub(last_write) >= ka_ms
                    && now_ms.saturating_sub(last_ping) >= ka_ms
                {
                    let nonce = self.next_ping.fetch_add(1, Ordering::Relaxed);
                    // Stamp only on a successful enqueue: counting a
                    // failed send as "pinged" would silently skip a full
                    // keepalive period before the next attempt.
                    if self.send_on(&conn, &Msg::Ping { nonce }, None).is_ok() {
                        conn.last_ping_ms.store(now_ms, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Fires the app's protocol timer if due.
    fn tick(&self) {
        let now = self.clock.now();
        if self.app.next_deadline().is_some_and(|t| t <= now) {
            self.app.on_tick(now);
        }
    }

    /// Worker 0's sleep: bounded by the app deadline and the next sweep.
    fn worker0_timeout_ms(&self, next_sweep: Instant) -> i32 {
        let mut ms = MAX_SLEEP_MS;
        if let Some(dl) = self.app.next_deadline() {
            let pnow = self.clock.now();
            let delta = if dl <= pnow {
                0
            } else {
                ((dl.as_nanos() - pnow.as_nanos()) / 1_000_000) as i64
            };
            ms = ms.min(delta);
        }
        let sweep_ms = next_sweep
            .saturating_duration_since(Instant::now())
            .as_millis() as i64;
        ms = ms.min(sweep_ms);
        ms.clamp(1, MAX_SLEEP_MS) as i32
    }
}

fn worker_loop(inner: &Arc<Inner>, idx: usize) {
    let io = &inner.workers[idx];
    let mut events = [sys::EpollEvent { events: 0, data: 0 }; 128];
    let mut scratch = vec![0u8; 64 << 10];
    let mut next_sweep = Instant::now() + SWEEP_EVERY;
    while !inner.is_shutdown() {
        let timeout = if idx == 0 {
            inner.worker0_timeout_ms(next_sweep)
        } else {
            MAX_SLEEP_MS as i32
        };
        let n = match sys::wait(io.epfd, &mut events, timeout) {
            Ok(n) => n,
            Err(e) => {
                // A real epoll failure (not EINTR). During shutdown the
                // epfd may be closed under us — exit quietly; otherwise
                // fail-stop the whole process: timers, sweeps and
                // keepalives run exclusively on worker 0, so a silently
                // dead worker would leave a half-alive server whose
                // clients hang instead of failing over (and the old
                // swallow-everything behavior was a 100% CPU spin).
                if inner.is_shutdown() {
                    return;
                }
                eprintln!("stdchk reactor worker {idx}: fatal: epoll_wait failed: {e}");
                std::process::abort();
            }
        };
        if inner.is_shutdown() {
            return;
        }
        let mut delivered = false;
        for ev in &events[..n] {
            let token = ev.data;
            let bits = ev.events;
            if token == WAKE_TOKEN {
                sys::eventfd_drain(io.wakefd);
                continue;
            }
            if token & LISTENER_BIT != 0 {
                inner.accept_ready(token);
                continue;
            }
            let Some(conn) = inner.conns.lock().get(&token).cloned() else {
                continue;
            };
            if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                delivered |= inner.conn_readable(&conn, &mut scratch);
            }
            if bits & sys::EPOLLOUT != 0 && !conn.closing.load(Ordering::Relaxed) {
                inner.conn_writable(&conn);
            }
        }
        if idx == 0 {
            inner.timer_dirty.store(false, Ordering::Relaxed);
            inner.tick();
            if Instant::now() >= next_sweep {
                inner.sweep();
                next_sweep = Instant::now() + SWEEP_EVERY;
            }
        } else if delivered && !inner.timer_dirty.swap(true, Ordering::Relaxed) {
            // Input may have re-armed an earlier protocol deadline: make
            // worker 0 recompute its sleep.
            sys::eventfd_wake(inner.workers[0].wakefd);
        }
    }
}

fn blocking_loop(handle: ReactorHandle) {
    let inner = Arc::clone(&handle.inner);
    loop {
        let job = {
            let mut q = inner.jobs.lock();
            loop {
                if inner.is_shutdown() {
                    return;
                }
                let now = Instant::now();
                let due_idx = q
                    .iter()
                    .enumerate()
                    .filter(|(_, (due, _, _))| *due <= now)
                    .min_by_key(|(_, (due, seq, _))| (*due, *seq))
                    .map(|(i, _)| i);
                if let Some(i) = due_idx {
                    break q.swap_remove(i).2;
                }
                let wait = q
                    .iter()
                    .map(|(due, _, _)| due.saturating_duration_since(now))
                    .min()
                    .unwrap_or(Duration::from_millis(500))
                    .max(Duration::from_millis(1));
                inner.job_cv.wait_for(&mut q, wait);
            }
        };
        job(&handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::io::Write;
    use stdchk_proto::ids::RequestId;

    /// Echoes every message back on the same connection and records
    /// lifecycle events.
    #[derive(Default)]
    struct EchoApp {
        handle: Mutex<Option<ReactorHandle>>,
        accepted: AtomicU64,
        closed: Mutex<Vec<(ConnToken, CloseReason)>>,
        sent: Mutex<Vec<u64>>,
    }

    impl ReactorApp for EchoApp {
        fn on_accept(&self, _conn: ConnToken, _listener: u64) {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        }
        fn on_msg(&self, conn: ConnToken, msg: Msg) {
            let h = self.handle.lock().clone().unwrap();
            let _ = h.send_tracked(conn, &msg, msg.request_id().map(|r| r.0).unwrap_or(0));
        }
        fn on_close(&self, conn: ConnToken, reason: CloseReason) {
            self.closed.lock().push((conn, reason));
        }
        fn on_sent(&self, _conn: ConnToken, token: u64) {
            self.sent.lock().push(token);
        }
    }

    fn spawn_echo(opts: ConnOpts) -> (Reactor, Arc<EchoApp>, std::net::SocketAddr) {
        let app = Arc::new(EchoApp::default());
        let reactor = Reactor::new(
            Clock::new(),
            Arc::<EchoApp>::clone(&app) as Arc<dyn ReactorApp>,
            ReactorConfig { workers: 2 },
        )
        .unwrap();
        *app.handle.lock() = Some(reactor.handle().clone());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor.handle().add_listener(listener, 7, opts).unwrap();
        (reactor, app, addr)
    }

    #[test]
    fn echo_roundtrip_over_reactor() {
        let (reactor, app, addr) = spawn_echo(ConnOpts::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for i in 1..=20u64 {
            stdchk_proto::frame::write_frame(&mut stream, &Msg::Ack { req: RequestId(i) }).unwrap();
        }
        for i in 1..=20u64 {
            let got = stdchk_proto::frame::read_frame(&mut stream)
                .unwrap()
                .unwrap();
            assert_eq!(got, Msg::Ack { req: RequestId(i) });
        }
        assert_eq!(app.accepted.load(Ordering::Relaxed), 1);
        // `on_sent` fires on the writing thread; the reply can reach us
        // before the callback lands, so poll briefly.
        let deadline = Instant::now() + Duration::from_secs(2);
        while app.sent.lock().len() < 20 {
            assert!(
                Instant::now() < deadline,
                "tracked frames must complete: {:?}",
                *app.sent.lock()
            );
            thread::sleep(Duration::from_millis(5));
        }
        reactor.shutdown();
    }

    #[test]
    fn idle_connection_is_reaped() {
        let (reactor, app, addr) =
            spawn_echo(ConnOpts::server_default(Some(Duration::from_millis(300))));
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Send nothing: the reactor must reap us (we observe EOF).
        let mut buf = [0u8; 8];
        let start = Instant::now();
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server should close the idle connection");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "reap took {:?}",
            start.elapsed()
        );
        // Reason must be the idle timeout.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if app
                .closed
                .lock()
                .iter()
                .any(|(_, r)| *r == CloseReason::IdleTimeout)
            {
                break;
            }
            assert!(Instant::now() < deadline, "no IdleTimeout close recorded");
            thread::sleep(Duration::from_millis(10));
        }
        reactor.shutdown();
    }

    #[test]
    fn keepalive_ping_keeps_active_peer_alive_and_pong_is_swallowed() {
        // Server reaps at 400ms; a keepalive client conn dialed *into* the
        // server must survive well past that by answering pings.
        let (reactor, app, addr) =
            spawn_echo(ConnOpts::server_default(Some(Duration::from_millis(400))));
        // Dial-side: register the client end on the same reactor with an
        // aggressive keepalive.
        let stream = TcpStream::connect(addr).unwrap();
        let opts = ConnOpts {
            keepalive: Some(Duration::from_millis(100)),
            ..ConnOpts::default()
        };
        let tok = reactor.handle().register(stream, opts).unwrap();
        thread::sleep(Duration::from_millis(1200));
        // Neither end closed: pings refreshed the server's idle clock,
        // and the pongs never surfaced as application messages.
        assert!(
            app.closed.lock().is_empty(),
            "keepalive should have kept the conn alive: {:?}",
            *app.closed.lock()
        );
        assert!(reactor.handle().conn_count() >= 2);
        let _ = tok;
        reactor.shutdown();
    }

    #[test]
    fn oversize_frame_closes_connection() {
        let (reactor, app, addr) = spawn_echo(ConnOpts {
            max_frame: 1024,
            ..ConnOpts::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&(2048u32).to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 64]).unwrap();
        let mut buf = [0u8; 8];
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "protocol violation must close the connection");
        let deadline = Instant::now() + Duration::from_secs(2);
        while app.closed.lock().is_empty() {
            assert!(Instant::now() < deadline);
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(app.closed.lock()[0].1, CloseReason::Protocol);
        reactor.shutdown();
    }

    #[test]
    fn blocking_lane_runs_jobs_in_due_order() {
        let app = Arc::new(EchoApp::default());
        let reactor = Reactor::new(
            Clock::new(),
            Arc::<EchoApp>::clone(&app) as Arc<dyn ReactorApp>,
            ReactorConfig { workers: 1 },
        )
        .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o1, o2, o3) = (Arc::clone(&order), Arc::clone(&order), Arc::clone(&order));
        reactor
            .handle()
            .spawn_blocking_after(Duration::from_millis(120), move |_| o1.lock().push(3));
        reactor
            .handle()
            .spawn_blocking_after(Duration::from_millis(40), move |_| o2.lock().push(2));
        reactor.handle().spawn_blocking(move |_| o3.lock().push(1));
        let deadline = Instant::now() + Duration::from_secs(3);
        while order.lock().len() < 3 {
            assert!(
                Instant::now() < deadline,
                "jobs never ran: {:?}",
                *order.lock()
            );
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(*order.lock(), vec![1, 2, 3]);
        reactor.shutdown();
    }

    #[test]
    fn stalled_writer_is_closed_by_time_bound() {
        // Byte bound set far out of reach: only the time-domain stall
        // detector can fire. The peer reads nothing, so once the kernel
        // buffers fill, write progress stops and the conn must close.
        let (reactor, app, addr) = spawn_echo(ConnOpts {
            max_outbound: 1 << 30,
            write_stall_timeout: Some(Duration::from_millis(300)),
            ..ConnOpts::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let big = Msg::PutChunk {
            req: RequestId(1),
            chunk: stdchk_proto::ids::ChunkId::for_content(b"y"),
            size: 256 << 10,
            data: bytes::Bytes::from(vec![3u8; 256 << 10]),
            background: false,
        };
        // Feed the echo server until our own (blocking, non-reading) send
        // path jams or the server gives up on us.
        let start = Instant::now();
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        while app.closed.lock().is_empty() {
            let _ = stdchk_proto::frame::write_frame(&mut stream, &big);
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "stalled writer never reaped"
            );
            thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(app.closed.lock()[0].1, CloseReason::Backpressure);
        reactor.shutdown();
    }

    #[test]
    fn epoll_wait_surfaces_real_errors_and_swallows_nothing_else() {
        // A closed epfd is exactly the close-race shape: the old code
        // returned 0 events for *any* negative return, so a worker whose
        // epfd died would spin at 100% CPU forever instead of failing.
        let epfd = sys::epoll_create().unwrap();
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 4];
        // Healthy fd with no events: times out with zero events, no error.
        assert_eq!(sys::wait(epfd, &mut events, 10).unwrap(), 0);
        sys::close_fd(epfd);
        let err = sys::wait(epfd, &mut events, 10).expect_err("EBADF must surface");
        assert_eq!(err.raw_os_error(), Some(9 /* EBADF */), "{err}");
    }

    #[test]
    fn write_idle_connection_is_not_stall_closed_on_fresh_enqueue() {
        // Regression: the stall clock must anchor at the empty→non-empty
        // transition. A connection that was write-idle far longer than
        // `write_stall_timeout` and then gets a frame enqueued must NOT
        // be closed on the next sweep — only zero progress *since the
        // enqueue* may trip the detector.
        let (reactor, app, addr) = spawn_echo(ConnOpts {
            write_stall_timeout: Some(Duration::from_millis(300)),
            ..ConnOpts::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // One small roundtrip establishes write progress, then the server
        // side sits write-idle well past the stall bound.
        stdchk_proto::frame::write_frame(&mut stream, &Msg::Ack { req: RequestId(1) }).unwrap();
        let _ = stdchk_proto::frame::read_frame(&mut stream)
            .unwrap()
            .unwrap();
        thread::sleep(Duration::from_millis(800));
        // Ask for a payload big enough (past any loopback socket
        // buffering) that the server's outbound buffer is non-empty
        // across several sweeps while we drain it slowly-but-steadily.
        const BODY: usize = 4 << 20;
        let big = Msg::PutChunk {
            req: RequestId(2),
            chunk: stdchk_proto::ids::ChunkId::for_content(b"anchor"),
            size: BODY as u32,
            data: bytes::Bytes::from(vec![9u8; BODY]),
            background: false,
        };
        stdchk_proto::frame::write_frame(&mut stream, &big).unwrap();
        // Drain the echo in slow slices: progress continues, so even
        // though the buffer stays non-empty across sweeps no close may
        // fire.
        let mut got = 0usize;
        let mut buf = vec![0u8; 64 << 10];
        let deadline = Instant::now() + Duration::from_secs(20);
        while got < BODY {
            assert!(Instant::now() < deadline, "echo stalled at {got}");
            let n = stream.read(&mut buf).expect("echoed bytes");
            assert!(
                n > 0,
                "connection closed after {got} bytes — spurious stall close: {:?}",
                *app.closed.lock()
            );
            got += n;
            thread::sleep(Duration::from_millis(5));
        }
        assert!(
            app.closed.lock().is_empty(),
            "write-idle + fresh enqueue must not be stall-closed: {:?}",
            *app.closed.lock()
        );
        reactor.shutdown();
    }

    #[test]
    fn slow_peer_hits_backpressure_bound() {
        let (reactor, app, addr) = spawn_echo(ConnOpts {
            max_outbound: 64 << 10,
            ..ConnOpts::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        // Ask the echo server to send us lots of data while we never read:
        // its outbound buffer must hit the bound and the conn must close.
        let big = Msg::PutChunk {
            req: RequestId(1),
            chunk: stdchk_proto::ids::ChunkId::for_content(b"x"),
            size: 32 << 10,
            data: bytes::Bytes::from(vec![7u8; 32 << 10]),
            background: false,
        };
        let mut closed = false;
        for _ in 0..200 {
            if stdchk_proto::frame::write_frame(&mut stream, &big).is_err() {
                closed = true;
                break;
            }
            thread::sleep(Duration::from_millis(2));
            if !app.closed.lock().is_empty() {
                closed = true;
                break;
            }
        }
        assert!(closed, "echoing into a non-reading peer must disconnect it");
        let deadline = Instant::now() + Duration::from_secs(2);
        while app.closed.lock().is_empty() {
            assert!(Instant::now() < deadline);
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(app.closed.lock()[0].1, CloseReason::Backpressure);
        reactor.shutdown();
    }
}
