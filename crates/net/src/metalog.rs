//! The manager's durable metadata store: a write-ahead log plus periodic
//! snapshots, built on the shared [`log`](crate::log) engine core.
//!
//! # Layout
//!
//! ```text
//! meta-dir/
//!   LOCK                          ← pid of the owning process
//!   snap-0000000000000005.snap    ← snapshot covering wal segments < 5
//!   wal-0000000000000005.log      ← sealed
//!   wal-0000000000000006.log      ← active (append-only)
//! ```
//!
//! Every WAL record is one framed [`MetaRecord`] (`crate::log` framing:
//! `len ‖ kind ‖ key ‖ crc32c ‖ payload`); the 32-byte key field carries
//! a persistent little-endian sequence number in its first 8 bytes, so
//! recovery can verify the log is gapless. A snapshot file holds a single
//! framed [`MetaSnapshot`] record. The snapshot's file number is the
//! first WAL segment *not* covered by it: opening loads the newest valid
//! snapshot `snap-k` and replays `wal-n` for every `n ≥ k`, truncating a
//! torn tail exactly like the chunk segment store.
//!
//! # Ordering
//!
//! Replay only reproduces the manager if log order equals mutation
//! order. Two layers guarantee it: the manager stamps each
//! [`Action::MetaAppend`](stdchk_core::node::Action::MetaAppend) with a
//! mutation-order `seq` (assigned under its state lock) and runs on an
//! *ordered* `NodeHost` (batches execute in queue order, which is also
//! what keeps a reply from overtaking the append that guards it), and
//! [`MetaLog::append_batch`] independently enforces the stamps: a
//! thread holding record `n + 1` waits (condvar, bounded) until record
//! `n` has been appended, so even a driver with racing executors cannot
//! interleave the log. Durability is then one group-commit wait per
//! batch — the same flusher design the chunk store uses.
//!
//! The disk I/O lane splits that pair:
//! [`MetaLog::submit_append_batch`] appends on the submitting thread
//! (single-submitter: the ordered host serializes batches, so stamps
//! must simply arrive in order — the condvar wait is replaced by a
//! hard check) and [`MetaLog::wait_appended`] runs the group-commit
//! wait on a lane worker, so the pump that drained the batch never
//! blocks on the fsync tail.
//!
//! # Snapshots
//!
//! [`MetaLog::install_with`] captures the snapshot *under the append
//! lock* — so it covers every record in the segments about to be pruned —
//! then writes it through a temp file and a rename, rotates the WAL to
//! the segment number the snapshot covers up to, and deletes the covered
//! segments and older snapshots. A crash
//! anywhere in that sequence leaves either the old snapshot + full log
//! or the new snapshot + an over-long log — both replay correctly
//! (snapshots are *fuzzy*: replaying a record whose effect the snapshot
//! already contains is detected by version id and skipped, see
//! `Manager::replay`).

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use stdchk_util::ordlock::{Condvar, OrderedMutex};

use crate::ranks;

use stdchk_proto::codec::Wire;
use stdchk_proto::meta::{MetaRecord, MetaSnapshot};

use crate::iolane::IoLane;
use crate::log::{
    acquire_dir_lock, encode_header, record_size, scan_records, write_all_two, DirLock,
    GroupCommit, SyncDelay,
};

/// Record kind byte: one framed [`MetaRecord`].
const KIND_META: u8 = 0;
/// Record kind byte: one framed [`MetaSnapshot`] (snapshot files only).
const KIND_SNAPSHOT: u8 = 1;

/// How long an out-of-order append waits for its predecessor before
/// declaring the log wedged (a predecessor can only go missing through a
/// driver bug or a died pump thread).
const ORDER_WAIT: Duration = Duration::from_secs(10);

/// Tuning knobs of a [`MetaLog`].
#[derive(Clone, Copy, Debug)]
pub struct MetaLogConfig {
    /// Rotate the active WAL segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Run group-commit `sync_data` on appends. Disable only for pools
    /// whose metadata durability does not matter (throwaway test pools).
    pub sync: bool,
    /// Group-commit window (see the chunk store's equivalent knob).
    pub commit_window: Duration,
    /// Ask for a snapshot once this many records accumulated since the
    /// last one (drivers poll [`MetaLog::wants_snapshot`]).
    pub snapshot_every: u64,
}

impl Default for MetaLogConfig {
    fn default() -> Self {
        MetaLogConfig {
            segment_bytes: 16 << 20,
            sync: true,
            commit_window: Duration::ZERO,
            snapshot_every: 4096,
        }
    }
}

/// What [`MetaLog::open`] recovered from disk: the newest valid snapshot
/// (if any) and every WAL record logged after it, in log order.
#[derive(Clone, Debug, Default)]
pub struct MetaRecovery {
    /// The snapshot to restore from, if one was found.
    pub snapshot: Option<MetaSnapshot>,
    /// Records to replay on top, oldest first.
    pub records: Vec<MetaRecord>,
}

impl MetaRecovery {
    /// The latest timestamp in the recovered state. A restarted manager
    /// resumes its protocol clock *after* this point
    /// (`Clock::starting_at`), keeping replayed mtimes in the new
    /// incarnation's past so mtime ordering and age-based retention
    /// carry across restarts.
    pub fn max_time(&self) -> stdchk_util::Time {
        let mut max = stdchk_util::Time::ZERO;
        if let Some(snap) = &self.snapshot {
            for f in &snap.files {
                for v in &f.versions {
                    max = max.max(v.mtime);
                }
            }
        }
        for r in &self.records {
            if let MetaRecord::Commit { mtime, .. } = r {
                max = max.max(*mtime);
            }
        }
        max
    }
}

/// Mutable log state behind the writer lock.
#[derive(Debug)]
struct Inner {
    /// Number of the active (append) WAL segment.
    active: u64,
    /// The active segment's file.
    file: Arc<File>,
    /// Bytes appended to the active segment so far.
    active_len: u64,
    /// Monotonic appended-byte watermark across all segments.
    appended: u64,
    /// Persistent sequence number of the next record (goes in the key).
    next_seq: u64,
    /// Runtime mutation-order stamp expected next (restores cross-thread
    /// append order; starts at 0 every process run).
    expected_order: u64,
    /// Records appended since the last snapshot install (or open).
    records_since_snapshot: u64,
    /// Files sealed by rotation whose `sync_data` is still owed; the
    /// flusher syncs them before the active file so the durable
    /// watermark never over-promises (see the segment store's
    /// equivalent). Rotation must not sync inline: the appending thread
    /// may be an I/O-lane pump.
    pending_seals: Vec<Arc<File>>,
}

struct Core {
    inner: OrderedMutex<Inner>,
    /// Wakes appenders waiting for their predecessor's order slot.
    order_cv: Condvar,
    gc: GroupCommit,
}

/// The manager's write-ahead log + snapshot store (see the module docs).
pub struct MetaLog {
    dir: PathBuf,
    cfg: MetaLogConfig,
    core: Arc<Core>,
    /// Serializes [`MetaLog::install_with`] calls (their second phase
    /// runs outside the append lock).
    install_mx: OrderedMutex<()>,
    /// When attached ([`MetaLog::set_io_lane`]), snapshot installs run
    /// their fsync/prune phase on the lane instead of the caller.
    lane: OrderedMutex<Option<Arc<IoLane>>>,
    flusher: OrderedMutex<Option<std::thread::JoinHandle<()>>>,
    _dir_lock: DirLock,
}

impl std::fmt::Debug for MetaLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaLog")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Drop for MetaLog {
    fn drop(&mut self) {
        self.core.gc.begin_shutdown();
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
    }
}

fn wal_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("wal-{n:016x}.log"))
}

fn snap_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("snap-{n:016x}.snap"))
}

/// Numbers of files in `dir` matching `prefix` + hex + `suffix`.
fn numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name
            .strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
        {
            if let Ok(n) = u64::from_str_radix(hex, 16) {
                out.push(n);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

fn open_append(path: &Path, create_new: bool) -> io::Result<File> {
    OpenOptions::new()
        .read(true)
        .append(true)
        .create(!create_new)
        .create_new(create_new)
        .open(path)
}

impl MetaLog {
    /// Opens (creating if needed) a metadata log rooted at `dir` with
    /// default tuning and returns the recovered snapshot + record tail.
    ///
    /// # Errors
    ///
    /// I/O errors, a framed-but-undecodable record
    /// ([`io::ErrorKind::InvalidData`] — CRC-valid bytes that no longer
    /// parse mean corruption or a format regression, not a torn tail),
    /// a sequence gap, or [`io::ErrorKind::AddrInUse`] when another live
    /// process owns the directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(MetaLog, MetaRecovery)> {
        MetaLog::open_with(dir, MetaLogConfig::default())
    }

    /// Opens with explicit [`MetaLogConfig`] tuning; see [`MetaLog::open`].
    ///
    /// # Errors
    ///
    /// As [`MetaLog::open`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        cfg: MetaLogConfig,
    ) -> io::Result<(MetaLog, MetaRecovery)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let dir_lock = acquire_dir_lock(&dir)?;
        // A crash during install_with may leave a temp file behind.
        fs::remove_file(dir.join("snap-tmp")).ok();

        // Newest parseable snapshot wins; invalid ones (torn writes that
        // never got renamed over, bit rot) are deleted and older ones
        // tried. The snapshot's frame key anchors the sequence check: it
        // stores the seq of the first record *not* covered, so a missing
        // or wholly-corrupt post-snapshot segment fails recovery loudly
        // instead of silently skipping acked records.
        let mut snapshot = None;
        let mut base = 0u64;
        let mut next_seq = 0u64;
        let mut seen_seq = false;
        for &n in numbered(&dir, "snap-", ".snap")?.iter().rev() {
            match read_snapshot(&snap_path(&dir, n)) {
                Some((s, snap_seq)) => {
                    snapshot = Some(s);
                    base = n;
                    next_seq = snap_seq;
                    seen_seq = true;
                    break;
                }
                None => {
                    fs::remove_file(snap_path(&dir, n)).ok();
                }
            }
        }

        // Replay WAL segments the snapshot does not cover; delete the
        // ones it does (a crash between snapshot install and segment
        // pruning leaves them behind).
        let mut records = Vec::new();
        let mut segs: BTreeMap<u64, Arc<File>> = BTreeMap::new();
        let mut appended = 0u64;
        for n in numbered(&dir, "wal-", ".log")? {
            if n < base {
                fs::remove_file(wal_path(&dir, n))?;
                continue;
            }
            let file = open_append(&wal_path(&dir, n), false)?;
            let file_len = file.metadata()?.len();
            let mut decode_err = None;
            let valid = scan_records(&file, file_len, KIND_META, |_, rec| {
                let seq = crate::log::le_u64(&rec.key, 0);
                if seen_seq && seq != next_seq {
                    decode_err = Some(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("metadata log sequence gap: expected {next_seq}, found {seq}"),
                    ));
                    return Err(io::ErrorKind::InvalidData.into());
                }
                seen_seq = true;
                next_seq = seq + 1;
                match MetaRecord::from_wire_bytes(&rec.payload) {
                    Ok(r) => {
                        records.push(r);
                        Ok(())
                    }
                    Err(e) => {
                        decode_err = Some(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("undecodable metadata record: {e}"),
                        ));
                        Err(io::ErrorKind::InvalidData.into())
                    }
                }
            });
            if let Some(e) = decode_err {
                return Err(e);
            }
            let valid = valid?;
            if valid < file_len {
                // Torn tail: drop the unparseable suffix so the next
                // append starts on a record boundary.
                file.set_len(valid)?;
            }
            appended += valid;
            segs.insert(n, Arc::new(file));
        }

        let (active, file, active_len) = match segs.last_key_value() {
            Some((&n, f)) => (n, Arc::clone(f), f.metadata()?.len()),
            None => {
                let f = open_append(&wal_path(&dir, base), false)?;
                (base, Arc::new(f), 0)
            }
        };

        let core = Arc::new(Core {
            inner: OrderedMutex::new(
                ranks::METALOG_INNER,
                "metalog.inner",
                Inner {
                    active,
                    file,
                    active_len,
                    appended,
                    next_seq,
                    expected_order: 0,
                    records_since_snapshot: records.len() as u64,
                    pending_seals: Vec::new(),
                },
            ),
            order_cv: Condvar::new(),
            gc: GroupCommit::new(appended),
        });
        let flusher = if cfg.sync {
            let core2 = Arc::clone(&core);
            Some(
                std::thread::Builder::new()
                    .name("stdchk-meta-flush".into())
                    .spawn(move || {
                        core2.gc.flusher_loop(cfg.commit_window, || {
                            let mut inner = core2.inner.lock();
                            let seals = std::mem::take(&mut inner.pending_seals);
                            (inner.appended, seals, Arc::clone(&inner.file))
                        })
                    })
                    .map_err(io::Error::other)?,
            )
        } else {
            None
        };
        Ok((
            MetaLog {
                dir,
                cfg,
                core,
                install_mx: OrderedMutex::new(ranks::METALOG_INSTALL, "metalog.install", ()),
                lane: OrderedMutex::new(ranks::METALOG_LANE, "metalog.lane", None),
                flusher: OrderedMutex::new(ranks::METALOG_FLUSHER, "metalog.flusher", flusher),
                _dir_lock: dir_lock,
            },
            MetaRecovery { snapshot, records },
        ))
    }

    /// Appends one record (order stamp `seq`) and waits for durability.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium, or a wedged predecessor (see
    /// [`MetaLog::append_batch`]).
    pub fn append(&self, seq: u64, record: &MetaRecord) -> io::Result<()> {
        self.append_batch(&[(seq, record.clone())])
    }

    /// Appends a batch of `(order stamp, record)` pairs and waits for one
    /// group commit covering all of them.
    ///
    /// Order stamps restore mutation order across racing pump threads: a
    /// record may only land once every lower-stamped record has. The
    /// wait is condvar-based and bounded; a predecessor that never
    /// arrives (a driver dropped a stamped record) poisons the log.
    ///
    /// # Errors
    ///
    /// I/O failures, a poisoned log, or an order wait that timed out.
    pub fn append_batch(&self, batch: &[(u64, MetaRecord)]) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut target = 0;
        {
            let mut inner = self.core.inner.lock();
            for (order, record) in batch {
                while inner.expected_order != *order {
                    if self.core.gc.is_poisoned() {
                        return Err(io::Error::other("metadata log poisoned"));
                    }
                    if self
                        .core
                        .order_cv
                        .wait_for(&mut inner, ORDER_WAIT)
                        .timed_out()
                    {
                        self.core.gc.poison();
                        return Err(io::Error::other(format!(
                            "metadata log wedged: record {} never arrived (holding {})",
                            inner.expected_order, order
                        )));
                    }
                }
                target = self.append_record(&mut inner, *order, record)?;
            }
        }
        self.wait_appended(target)
    }

    /// Appends one record under the inner lock, advancing the seq/order
    /// counters *even on failure* (so waiting successors fail fast on
    /// the poisoned log instead of timing out) and returning the
    /// watermark the record must be committed to.
    fn append_record(&self, inner: &mut Inner, order: u64, record: &MetaRecord) -> io::Result<u64> {
        let payload = record.to_wire_bytes();
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&inner.next_seq.to_le_bytes());
        let header = encode_header(KIND_META, &key, &payload);
        let res = self.append_raw(inner, &header, &payload);
        inner.expected_order = order + 1;
        inner.next_seq += 1;
        inner.records_since_snapshot += 1;
        self.core.order_cv.notify_all();
        match res {
            Ok(t) => Ok(t),
            Err(e) => {
                // A skipped record would leave a sequence gap no later
                // append can repair; the log is done.
                self.core.gc.poison();
                Err(e)
            }
        }
    }

    /// Nonblocking half of [`MetaLog::append_batch`] for the disk I/O
    /// lane: appends every record *now* — fixing WAL order at submission
    /// time — and returns the watermark to hand to
    /// [`MetaLog::wait_appended`] on a lane thread.
    ///
    /// Unlike [`MetaLog::append_batch`], an out-of-order stamp is an
    /// *error*, not a wait: this path has a single submitter (the
    /// manager's ordered `NodeHost` executes drained batches strictly in
    /// queue order, which is also stamp order), so a predecessor that
    /// has not arrived yet can never arrive — the cross-thread
    /// order-stamp condvar is replaced by this submitter-order check.
    ///
    /// # Errors
    ///
    /// I/O failures, a poisoned log, or an out-of-order stamp (a driver
    /// bug; the log is poisoned, as the gap is unrepairable).
    pub fn submit_append_batch(&self, batch: &[(u64, MetaRecord)]) -> io::Result<u64> {
        let mut target = 0;
        let mut inner = self.core.inner.lock();
        for (order, record) in batch {
            if *order != inner.expected_order {
                self.core.gc.poison();
                return Err(io::Error::other(format!(
                    "metadata log submitted out of order: expected {}, got {order}",
                    inner.expected_order
                )));
            }
            target = self.append_record(&mut inner, *order, record)?;
        }
        Ok(target)
    }

    /// Blocks until everything appended up to `target` (a watermark from
    /// [`MetaLog::submit_append_batch`]) is covered by a group commit.
    /// No-op for unsynced logs.
    ///
    /// # Errors
    ///
    /// The flusher failed (the log is dead) or shut down first; nothing
    /// guarded by `target` may be acknowledged.
    pub fn wait_appended(&self, target: u64) -> io::Result<()> {
        if self.cfg.sync && target > 0 {
            self.core.gc.wait_durable(target)?;
        }
        Ok(())
    }

    /// True once the log hit an unrepairable failure (every further
    /// mutation refuses).
    pub fn is_poisoned(&self) -> bool {
        self.core.gc.is_poisoned()
    }

    /// Test/bench fault-injection handle for this log's flusher (see
    /// [`SyncDelay`]).
    pub fn sync_faults(&self) -> SyncDelay {
        self.core.gc.sync_faults().clone()
    }

    /// Appends `header ‖ payload` to the active segment (rotating first
    /// if full) and returns the appended watermark. Caller holds the
    /// inner lock.
    fn append_raw(&self, inner: &mut Inner, header: &[u8], payload: &[u8]) -> io::Result<u64> {
        if inner.active_len >= self.cfg.segment_bytes {
            self.rotate_to(inner, inner.active + 1)?;
        }
        if self.core.gc.is_poisoned() {
            return Err(io::Error::other(
                "metadata log poisoned by earlier I/O failure",
            ));
        }
        if let Err(e) = write_all_two(&inner.file, header, payload) {
            // Roll back a partial record; if even that fails, poison —
            // continuing would corrupt acked records.
            let off = inner.active_len;
            let rolled_back = inner.file.set_len(off).is_ok()
                && inner
                    .file
                    .metadata()
                    .map(|m| m.len() == off)
                    .unwrap_or(false);
            if !rolled_back {
                self.core.gc.poison();
            }
            return Err(e);
        }
        let added = (header.len() + payload.len()) as u64;
        inner.active_len += added;
        inner.appended += added;
        self.core.gc.note_appended(inner.appended);
        Ok(inner.appended)
    }

    /// Seals the active segment and starts `next`. The seal's
    /// `sync_data` is deferred to the flusher via `pending_seals` (group
    /// commit syncs seals before the active file, so the "durable covers
    /// everything appended" invariant holds without an inline fsync on
    /// the appending thread).
    fn rotate_to(&self, inner: &mut Inner, next: u64) -> io::Result<()> {
        if self.cfg.sync {
            inner.pending_seals.push(Arc::clone(&inner.file));
        }
        let file = open_append(&wal_path(&self.dir, next), true)?;
        inner.active = next;
        inner.file = Arc::new(file);
        inner.active_len = 0;
        Ok(())
    }

    /// True once [`MetaLogConfig::snapshot_every`] records accumulated
    /// since the last snapshot; the driver should take a manager
    /// snapshot and [`MetaLog::install_with`] one.
    pub fn wants_snapshot(&self) -> bool {
        self.core.inner.lock().records_since_snapshot >= self.cfg.snapshot_every
    }

    /// Records appended since the last installed snapshot (replay-tail
    /// length; observability and tests).
    pub fn records_since_snapshot(&self) -> u64 {
        self.core.inner.lock().records_since_snapshot
    }

    /// WAL segment files currently on disk (tests observe rotation and
    /// snapshot pruning with this).
    pub fn wal_segment_count(&self) -> io::Result<usize> {
        Ok(numbered(&self.dir, "wal-", ".log")?.len())
    }

    /// Installs a new recovery base: calls `snapshot()` **while holding
    /// the append lock**, then writes the result (temp file + rename +
    /// directory sync) and prunes the covered segments and older
    /// snapshots with the lock released. Crash-safe at every step —
    /// recovery falls back to the old snapshot + full log until the
    /// rename lands.
    ///
    /// The append lock is held only for the capture + rotation pair:
    /// that is what guarantees the snapshot covers every record in the
    /// sealed segments about to be pruned (no append can land between
    /// capturing the state and sealing the boundary), while the
    /// expensive part — serializing and fsyncing a namespace-sized blob,
    /// unlinking segments — runs without stalling commit acks.
    /// Mutations whose records have *not* been appended yet at capture
    /// time are fine: they land in the fresh segment after the boundary
    /// and replay on top of the snapshot, which may therefore be fuzzy
    /// (already containing their effects); `Manager::replay` detects and
    /// skips exactly those records by version id.
    ///
    /// Lock order is log-then-state: the closure may take the manager's
    /// state lock (`host.with_node`), and no append path acquires the log
    /// lock while holding the state lock (the `NodeHost` pump executes
    /// effects with the node released).
    ///
    /// # Errors
    ///
    /// I/O failures rotating, writing, renaming, or pruning. On failure
    /// after the boundary was sealed, the log simply keeps its old
    /// recovery base (and re-requests a snapshot) — nothing covered was
    /// pruned.
    pub fn install_with(&self, snapshot: impl FnOnce() -> MetaSnapshot) -> io::Result<()> {
        // One installer at a time (phase 2 runs outside the append lock).
        let _installing = self.install_mx.lock();

        // Phase 1, under the append lock: capture the state and seal the
        // segment boundary it covers.
        let (snap, base, seq) = {
            let mut inner = self.core.inner.lock();
            let snap = snapshot();
            let base = inner.active + 1;
            let seq = inner.next_seq;
            self.rotate_to(&mut inner, base)?;
            inner.records_since_snapshot = 0;
            (snap, base, seq)
        };

        // Phase 2, lock-free: persist the snapshot, then prune what it
        // covers. The sealed segments are frozen, so nothing races the
        // unlinks; a crash anywhere here leaves the old base + full log.
        // With a lane attached the serialize/fsync/prune runs on a lane
        // worker — it is exactly the class of blocking disk work the
        // lane owns — and the installer (a background snapshotter
        // thread, never a pump) blocks on the result either way.
        let lane = self.lane.lock().clone();
        let res = match lane {
            Some(lane) => {
                let (tx, rx) = std::sync::mpsc::channel();
                let dir = self.dir.clone();
                let sync = self.cfg.sync;
                let core = Arc::clone(&self.core);
                let submitted = lane.submit(move || {
                    let _ = tx.send(install_phase2(&dir, sync, &core, &snap, base, seq));
                });
                if submitted {
                    rx.recv()
                        .unwrap_or_else(|_| Err(io::Error::other("io lane dropped the install")))
                } else {
                    // The lane shut down under us; the work itself is
                    // unrecoverable here because `snap` moved into the
                    // refused closure. The old recovery base stays valid.
                    Err(io::Error::other("io lane shut down mid-install"))
                }
            }
            None => install_phase2(&self.dir, self.cfg.sync, &self.core, &snap, base, seq),
        };
        if res.is_err() {
            // The tail counter was reset optimistically; re-arm so the
            // driver retries the snapshot instead of waiting for another
            // full threshold of records.
            self.core.inner.lock().records_since_snapshot = self.cfg.snapshot_every;
        }
        res
    }

    /// Attaches the disk I/O lane snapshot installs should run their
    /// fsync/prune phase on.
    pub fn set_io_lane(&self, lane: Arc<IoLane>) {
        *self.lane.lock() = Some(lane);
    }
}

/// [`MetaLog::install_with`]'s second phase: write the captured snapshot
/// through a temp file + rename + directory sync, then prune the WAL
/// segments and older snapshots it covers. Runs lock-free (on the I/O
/// lane when one is attached); crash-safe at every step.
fn install_phase2(
    dir: &Path,
    sync: bool,
    core: &Core,
    snap: &MetaSnapshot,
    base: u64,
    seq: u64,
) -> io::Result<()> {
    let payload = snap.to_wire_bytes();
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&seq.to_le_bytes());
    let header = encode_header(KIND_SNAPSHOT, &key, &payload);
    let tmp = dir.join("snap-tmp");
    {
        let file = File::create(&tmp)?;
        write_all_two(&file, &header, &payload)?;
        if sync {
            core.gc.count_sync();
            file.sync_data()?;
        }
    }
    fs::rename(&tmp, snap_path(dir, base))?;
    if sync {
        // The rename itself must survive a crash.
        File::open(dir)?.sync_all()?;
    }
    for n in numbered(dir, "wal-", ".log")? {
        if n < base {
            fs::remove_file(wal_path(dir, n))?;
        }
    }
    for n in numbered(dir, "snap-", ".snap")? {
        if n < base {
            fs::remove_file(snap_path(dir, n))?;
        }
    }
    Ok(())
}

/// Reads and validates a snapshot file, returning it plus the sequence
/// number of the first WAL record it does *not* cover (stored in the
/// frame key at install time). `None` on any framing, CRC, kind or
/// decode failure (the caller falls back to an older snapshot).
fn read_snapshot(path: &Path) -> Option<(MetaSnapshot, u64)> {
    let file = File::open(path).ok()?;
    let len = file.metadata().ok()?.len();
    let rec = crate::log::read_record(&file, 0, len, KIND_SNAPSHOT).ok()??;
    if rec.kind != KIND_SNAPSHOT || record_size(rec.payload.len() as u32) != len {
        return None;
    }
    let seq = crate::log::le_u64(&rec.key, 0);
    MetaSnapshot::from_wire_bytes(&rec.payload)
        .ok()
        .map(|s| (s, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stdchk_proto::ids::{FileId, NodeId, VersionId};
    use stdchk_proto::policy::RetentionPolicy;
    use stdchk_util::Time;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stdchk-meta-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn rec(i: u64) -> MetaRecord {
        MetaRecord::SetPolicy {
            dir: format!("/d{i}"),
            policy: RetentionPolicy::AutomatedReplace {
                keep_last: i as u32,
            },
            repl_bounds: None,
        }
    }

    #[test]
    fn append_and_recover_in_order() {
        let dir = tmp("order");
        {
            let (mlog, recovered) = MetaLog::open(&dir).unwrap();
            assert!(recovered.snapshot.is_none());
            assert!(recovered.records.is_empty());
            for i in 0..10 {
                mlog.append(i, &rec(i)).unwrap();
            }
        }
        let (_mlog, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.records.len(), 10);
        for (i, r) in recovered.records.iter().enumerate() {
            assert_eq!(r, &rec(i as u64));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_batches_are_serialized() {
        let dir = tmp("reorder");
        let (mlog, _) = MetaLog::open(&dir).unwrap();
        let mlog = std::sync::Arc::new(mlog);
        // Reverse submission order: the thread holding seq 1 must wait
        // for seq 0.
        let m2 = std::sync::Arc::clone(&mlog);
        let t = std::thread::spawn(move || m2.append(1, &rec(1)).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        mlog.append(0, &rec(0)).unwrap();
        t.join().unwrap();
        drop(mlog);
        let (_m, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![rec(0), rec(1)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp("torn");
        {
            let (mlog, _) = MetaLog::open(&dir).unwrap();
            mlog.append(0, &rec(0)).unwrap();
        }
        // Garbage at the tail of the active segment.
        let seg = wal_path(&dir, 0);
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
            f.write_all(&[0xAB; 13]).unwrap();
        }
        let (mlog, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![rec(0)]);
        // And appends continue on a clean boundary.
        mlog.append(0, &rec(1)).unwrap();
        drop(mlog);
        let (_m, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![rec(0), rec(1)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_then_wait_split_recovers_in_order() {
        let dir = tmp("lane-split");
        {
            let cfg = MetaLogConfig {
                segment_bytes: 256, // force rotation mid-stream
                ..Default::default()
            };
            let (mlog, _) = MetaLog::open_with(&dir, cfg).unwrap();
            let mut target = 0;
            for i in 0..10 {
                target = mlog.submit_append_batch(&[(i, rec(i))]).unwrap();
            }
            assert!(mlog.wal_segment_count().unwrap() > 1);
            mlog.wait_appended(target).unwrap();
        }
        let (_m, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.records.len(), 10);
        for (i, r) in recovered.records.iter().enumerate() {
            assert_eq!(r, &rec(i as u64));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_submit_poisons_the_log() {
        // The lane path is single-submitter: a stamp gap can only be a
        // driver bug, and the log must refuse loudly instead of waiting
        // for a predecessor that can never arrive.
        let dir = tmp("lane-gap");
        let (mlog, _) = MetaLog::open(&dir).unwrap();
        mlog.submit_append_batch(&[(0, rec(0))]).unwrap();
        assert!(mlog.submit_append_batch(&[(2, rec(2))]).is_err());
        assert!(mlog.is_poisoned());
        assert!(mlog.append(1, &rec(1)).is_err(), "poisoned log refuses");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_installs_through_an_attached_io_lane() {
        let dir = tmp("lane-snap");
        let lane = std::sync::Arc::new(crate::iolane::IoLane::new());
        let snap = MetaSnapshot {
            next_node: 2,
            ..MetaSnapshot::default()
        };
        {
            let cfg = MetaLogConfig {
                segment_bytes: 256,
                ..Default::default()
            };
            let (mlog, _) = MetaLog::open_with(&dir, cfg).unwrap();
            mlog.set_io_lane(std::sync::Arc::clone(&lane));
            for i in 0..12 {
                mlog.append(i, &rec(i)).unwrap();
            }
            let before = lane.completed();
            mlog.install_with(|| snap.clone()).unwrap();
            assert!(lane.completed() > before, "phase 2 must ride the lane");
            assert_eq!(mlog.wal_segment_count().unwrap(), 1);
            mlog.append(12, &rec(99)).unwrap();
        }
        let (_m, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.snapshot, Some(snap));
        assert_eq!(recovered.records, vec![rec(99)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let dir = tmp("snap");
        let snap = MetaSnapshot {
            next_node: 3,
            next_file: 2,
            next_version: 7,
            benefactors: vec![(NodeId(1), "b:1".into(), 99)],
            files: Vec::new(),
            dirs: vec![("/kept".into(), RetentionPolicy::REPLACE)],
            repl_bounds: vec![("/kept".into(), (2, 4))],
            chunks: Vec::new(),
        };
        {
            let cfg = MetaLogConfig {
                segment_bytes: 256, // force rotation
                ..Default::default()
            };
            let (mlog, _) = MetaLog::open_with(&dir, cfg).unwrap();
            for i in 0..20 {
                mlog.append(i, &rec(i)).unwrap();
            }
            assert!(mlog.wal_segment_count().unwrap() > 1);
            mlog.install_with(|| snap.clone()).unwrap();
            assert_eq!(mlog.wal_segment_count().unwrap(), 1, "old segments pruned");
            assert_eq!(mlog.records_since_snapshot(), 0);
            // Post-snapshot tail.
            mlog.append(20, &rec(100)).unwrap();
        }
        let (_m, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.snapshot, Some(snap));
        assert_eq!(recovered.records, vec![rec(100)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_post_snapshot_segment_fails_recovery() {
        let dir = tmp("gapseg");
        let cfg = MetaLogConfig {
            segment_bytes: 256, // a handful of records per segment
            ..Default::default()
        };
        {
            let (mlog, _) = MetaLog::open_with(&dir, cfg).unwrap();
            for i in 0..4 {
                mlog.append(i, &rec(i)).unwrap();
            }
            mlog.install_with(MetaSnapshot::default).unwrap();
            // Fill the post-snapshot segment past rotation so records
            // span at least two segments after the snapshot base.
            for i in 4..16 {
                mlog.append(i, &rec(i)).unwrap();
            }
            assert!(mlog.wal_segment_count().unwrap() >= 2);
        }
        // Lose the first post-snapshot segment wholesale (disk damage
        // beyond a torn tail). The snapshot's anchored sequence must
        // expose the hole instead of silently skipping acked records.
        let first = numbered(&dir, "wal-", ".log").unwrap()[0];
        fs::remove_file(wal_path(&dir, first)).unwrap();
        let err = MetaLog::open_with(&dir, cfg).expect_err("gap must fail recovery");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_log() {
        let dir = tmp("badsnap");
        {
            let (mlog, _) = MetaLog::open(&dir).unwrap();
            mlog.append(0, &rec(0)).unwrap();
            mlog.install_with(MetaSnapshot::default).unwrap();
            mlog.append(1, &rec(1)).unwrap();
        }
        // Trash the snapshot body.
        let snap = snap_path(&dir, 1);
        let mut bytes = fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&snap, bytes).unwrap();

        // The snapshot is rejected; the post-snapshot tail still replays
        // (the pre-snapshot records are gone with their pruned segments —
        // that is the corruption blast radius of losing a snapshot).
        let (_m, recovered) = MetaLog::open(&dir).unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.records, vec![rec(1)]);
        assert!(!snap.exists(), "invalid snapshot deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_open_fails_fast() {
        let dir = tmp("lock");
        let (mlog, _) = MetaLog::open(&dir).unwrap();
        assert_eq!(
            MetaLog::open(&dir).unwrap_err().kind(),
            io::ErrorKind::AddrInUse
        );
        drop(mlog);
        MetaLog::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_records_roundtrip_through_the_log() {
        let dir = tmp("commit");
        let commit = MetaRecord::Commit {
            path: "/app/ck.n0".into(),
            file: FileId(1),
            version: VersionId(2),
            mtime: Time::from_secs(4),
            entries: vec![stdchk_proto::chunkmap::ChunkEntry {
                id: stdchk_proto::ids::ChunkId::test_id(8),
                size: 64 << 10,
            }],
            placements: vec![(stdchk_proto::ids::ChunkId::test_id(8), vec![NodeId(1)])],
            replication: 1,
        };
        {
            let (mlog, _) = MetaLog::open(&dir).unwrap();
            mlog.append_batch(&[(0, commit.clone()), (1, rec(1))])
                .unwrap();
        }
        let (_m, recovered) = MetaLog::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![commit, rec(1)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
