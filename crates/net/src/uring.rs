//! Optional `io_uring` submission path for disk I/O.
//!
//! The durable waits and segment preads that ride the disk [`IoLane`]
//! normally issue classic blocking syscalls (`fdatasync`, `pread`). This
//! module offers the same two operations through an `io_uring` ring —
//! one submission queue write + one `io_uring_enter` instead of a
//! dedicated syscall per operation — following the crate's no-new-deps
//! rule: raw `syscall(2)` numbers and `#[repr(C)]` structs checked
//! against `linux/io_uring.h`, no liburing.
//!
//! Selection follows the established env-knob pattern
//! (`STDCHK_NET_BACKEND`, `STDCHK_IO_LANE`): the lane is **off by
//! default** and opts in via `STDCHK_IO_URING=on`. At first use the
//! kernel is probed with a real `io_uring_setup`; kernels (or seccomp
//! sandboxes) that refuse it fall back to the blocking syscalls with a
//! one-time notice, so turning the knob on is always safe.
//!
//! Each thread lazily owns one small ring (`thread_local`), sized for the
//! call sites' one-operation-at-a-time pattern: the group-commit flusher
//! waits for its own fsync, a store read wants its buffer filled before
//! returning. There is deliberately no cross-thread submission queue —
//! the win measured here is the cheaper submission path, not batching.
//!
//! [`IoLane`]: crate::iolane::IoLane

use std::cell::OnceCell;
use std::fs::File;
use std::io;
use std::os::raw::{c_long, c_void};
use std::os::unix::fs::FileExt;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;

const IORING_OP_FSYNC: u8 = 3;
const IORING_OP_READ: u8 = 22;
const IORING_FSYNC_DATASYNC: u32 = 1;
const IORING_ENTER_GETEVENTS: u32 = 1;
const IORING_FEAT_SINGLE_MMAP: u32 = 1;
const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 0x01;

/// Submission queue entries per ring; call sites submit one op at a time,
/// so this only needs to be ≥ 1.
const ENTRIES: u32 = 8;

extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
    fn mmap(addr: *mut c_void, len: usize, prot: i32, flags: i32, fd: i32, off: i64)
        -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn close(fd: i32) -> i32;
}

/// `struct io_sqring_offsets` from `linux/io_uring.h`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
struct SqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    resv2: u64,
}

/// `struct io_cqring_offsets` from `linux/io_uring.h`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
struct CqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    resv2: u64,
}

/// `struct io_uring_params` from `linux/io_uring.h`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqOffsets,
    cq_off: CqOffsets,
}

/// `struct io_uring_sqe` (64-byte form) from `linux/io_uring.h`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    rw_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    addr3: u64,
    pad2: u64,
}

/// `struct io_uring_cqe` from `linux/io_uring.h`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

/// One mmap'd span, unmapped on drop.
#[derive(Debug)]
struct Map {
    ptr: *mut u8,
    len: usize,
}

impl Map {
    fn new(fd: i32, len: usize, off: i64) -> io::Result<Map> {
        // SAFETY: a fresh MAP_SHARED mapping at a kernel-chosen address
        // (addr null) over a ring fd the caller owns; the kernel
        // validates len/off against the ring geometry and MAP_FAILED is
        // checked below. The mapping's lifetime is Map's (munmap on
        // Drop), and no safe API hands out the raw pointer.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                off,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Map {
            ptr: ptr.cast(),
            len,
        })
    }
}

impl Drop for Map {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are exactly the span mmap returned, unmapped
        // once (Map is never cloned); Ring's pointer fields into the span
        // die with the Ring that owns this Map.
        unsafe { munmap(self.ptr.cast(), self.len) };
    }
}

/// A userspace io_uring handle: the ring fd plus the three mmap'd spans
/// (SQ ring bookkeeping, CQ ring, SQE array) and precomputed pointers into
/// them. Owned by exactly one thread (`thread_local`), so submissions
/// never race; the atomics order against the *kernel* side.
#[derive(Debug)]
struct Ring {
    fd: i32,
    /// Held for its `Drop` (munmap): every raw pointer below aims into it.
    #[allow(dead_code)]
    sq: Map,
    /// `None` when the kernel advertises `IORING_FEAT_SINGLE_MMAP` and the
    /// CQ ring shares the SQ mapping. Held for `Drop`, like `sq`.
    #[allow(dead_code)]
    cq: Option<Map>,
    sqes: Map,
    sq_tail: *const AtomicU32,
    sq_mask: u32,
    sq_array: *mut u32,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const Cqe,
}

impl Drop for Ring {
    fn drop(&mut self) {
        // SAFETY: no memory crosses the boundary; the ring fd is owned by
        // exactly this Ring and closed exactly once. The mmaps (which
        // keep the rings alive kernel-side) are unmapped by the Map
        // drops that follow.
        unsafe { close(self.fd) };
    }
}

impl Ring {
    fn setup() -> io::Result<Ring> {
        let mut p = UringParams::default();
        // SAFETY: `p` is a live, zeroed #[repr(C)] UringParams the
        // kernel fills; the raw return (fd or -errno) is checked below.
        let fd = unsafe { syscall(SYS_IO_URING_SETUP, ENTRIES, &mut p as *mut UringParams) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as i32;
        let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
        let cq_len = p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
        let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
        let res = (|| {
            let sq = Map::new(
                fd,
                if single { sq_len.max(cq_len) } else { sq_len },
                IORING_OFF_SQ_RING,
            )?;
            let cq = if single {
                None
            } else {
                Some(Map::new(fd, cq_len, IORING_OFF_CQ_RING)?)
            };
            let sqes = Map::new(
                fd,
                p.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;
            let cq_base = cq.as_ref().unwrap_or(&sq).ptr;
            // SAFETY: every offset comes from the params struct the
            // kernel just filled for these mappings, so each `add` lands
            // inside the corresponding Map span; the pointers are stored
            // alongside the Maps that keep them alive, and the
            // single-threaded owner (`thread_local`) means the two
            // mask/array reads here cannot race a submission.
            unsafe {
                Ok(Ring {
                    fd,
                    sq_tail: sq.ptr.add(p.sq_off.tail as usize).cast(),
                    sq_mask: *sq.ptr.add(p.sq_off.ring_mask as usize).cast::<u32>(),
                    sq_array: sq.ptr.add(p.sq_off.array as usize).cast(),
                    cq_head: cq_base.add(p.cq_off.head as usize).cast(),
                    cq_tail: cq_base.add(p.cq_off.tail as usize).cast(),
                    cq_mask: *cq_base.add(p.cq_off.ring_mask as usize).cast::<u32>(),
                    cqes: cq_base.add(p.cq_off.cqes as usize).cast(),
                    sq,
                    cq,
                    sqes,
                })
            }
        })();
        if res.is_err() {
            // SAFETY: the fd is owned and not yet wrapped in a Ring (whose
            // Drop would close it); closing here is the only release.
            unsafe { close(fd) };
        }
        res
    }

    /// Submits one SQE and blocks until its CQE arrives, returning the raw
    /// `res` (a byte count, or `-errno`).
    fn submit_and_wait(&self, sqe: Sqe) -> io::Result<i32> {
        // SAFETY: the ring is thread-local, so this thread is the only
        // submitter: the masked slot the tail points at is free (depth-1
        // usage — every submit waits for its completion before
        // returning), and the Release store publishes the filled SQE to
        // the kernel's Acquire of the tail.
        unsafe {
            let tail = (*self.sq_tail).load(Ordering::Relaxed);
            let idx = tail & self.sq_mask;
            *self.sqes.ptr.cast::<Sqe>().add(idx as usize) = sqe;
            *self.sq_array.add(idx as usize) = idx;
            (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
        }
        loop {
            // SAFETY: plain syscall on the owned ring fd; no userspace
            // memory is passed (null sigset). Kernel reads the SQE through
            // the shared mapping published above.
            let r = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd,
                    1u32,
                    1u32,
                    IORING_ENTER_GETEVENTS,
                    std::ptr::null::<c_void>(),
                    0usize,
                )
            };
            if r >= 0 {
                break;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
        loop {
            // SAFETY: both pointers aim at kernel-maintained u32 counters
            // inside the live CQ mapping; the Acquire on the tail orders
            // the CQE read below after the kernel's Release of it.
            let (head, tail) = unsafe {
                (
                    (*self.cq_head).load(Ordering::Relaxed),
                    (*self.cq_tail).load(Ordering::Acquire),
                )
            };
            if head == tail {
                // Spurious enter return (signal after submit); wait again.
                // SAFETY: as above — owned ring fd, no userspace memory.
                let r = unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        self.fd,
                        0u32,
                        1u32,
                        IORING_ENTER_GETEVENTS,
                        std::ptr::null::<c_void>(),
                        0usize,
                    )
                };
                if r < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                }
                continue;
            }
            // SAFETY: head != tail, so the masked CQE slot holds an entry
            // the kernel published before its tail Release; Cqe is plain
            // old data. The head store (Release) then returns the slot to
            // the kernel.
            let cqe = unsafe {
                let cqe = *self.cqes.add((head & self.cq_mask) as usize);
                (*self.cq_head).store(head.wrapping_add(1), Ordering::Release);
                cqe
            };
            return Ok(cqe.res);
        }
    }

    fn fsync_datasync(&self, file: &File) -> io::Result<()> {
        let res = self.submit_and_wait(Sqe {
            opcode: IORING_OP_FSYNC,
            fd: file.as_raw_fd(),
            rw_flags: IORING_FSYNC_DATASYNC,
            ..Sqe::default()
        })?;
        if res < 0 {
            return Err(io::Error::from_raw_os_error(-res));
        }
        Ok(())
    }

    fn read_exact_at(&self, file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let res = self.submit_and_wait(Sqe {
                opcode: IORING_OP_READ,
                fd: file.as_raw_fd(),
                off: off + done as u64,
                addr: buf[done..].as_mut_ptr() as u64,
                len: (buf.len() - done).min(u32::MAX as usize) as u32,
                ..Sqe::default()
            })?;
            if res < 0 {
                let e = io::Error::from_raw_os_error(-res);
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            if res == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short read from backing file",
                ));
            }
            done += res as usize;
        }
        Ok(())
    }
}

thread_local! {
    static RING: OnceCell<Option<Ring>> = const { OnceCell::new() };
}

/// Runs `f` against this thread's ring; `None` when ring setup failed on
/// this thread (caller falls back to the blocking syscall).
fn with_ring<T>(f: impl FnOnce(&Ring) -> T) -> Option<T> {
    RING.with(|cell| cell.get_or_init(|| Ring::setup().ok()).as_ref().map(f))
}

/// Tri-state probe cache: 0 unknown, 1 enabled, 2 disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when `STDCHK_IO_URING=on` *and* the kernel accepts an
/// `io_uring_setup`. Probed once per process; when the knob is on but the
/// kernel (or a seccomp sandbox) refuses, a one-time notice is printed and
/// every call site keeps its blocking-syscall behavior.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let wanted = matches!(
                std::env::var("STDCHK_IO_URING").as_deref(),
                Ok("1") | Ok("on") | Ok("true")
            );
            let on = wanted
                && match Ring::setup() {
                    Ok(_) => true,
                    Err(e) => {
                        eprintln!(
                            "stdchk: STDCHK_IO_URING=on but io_uring is unavailable \
                             ({e}); falling back to blocking syscalls"
                        );
                        false
                    }
                };
            STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// `fdatasync(file)` through the io_uring lane when enabled, else
/// [`File::sync_data`]. Used by the group-commit flushers whose durable
/// waits ride the disk I/O lane.
///
/// # Errors
///
/// I/O failures of the backing medium.
pub fn sync_data(file: &File) -> io::Result<()> {
    if enabled() {
        if let Some(res) = with_ring(|ring| ring.fsync_datasync(file)) {
            return res;
        }
    }
    file.sync_data()
}

/// Positioned full-buffer read through the io_uring lane when enabled,
/// else [`FileExt::read_exact_at`]. Used for segment-store record reads.
///
/// # Errors
///
/// I/O failures of the backing medium, including a short file.
pub fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    if enabled() {
        if let Some(res) = with_ring(|ring| ring.read_exact_at(file, buf, off)) {
            return res;
        }
    }
    file.read_exact_at(buf, off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn ring_reads_and_syncs() {
        let ring = match Ring::setup() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping: io_uring unavailable here ({e})");
                return;
            }
        };
        let dir = std::env::temp_dir().join(format!("stdchk-uring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        {
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(&payload).unwrap();
        }
        let f = std::fs::File::open(&path).unwrap();
        // Full read, offset read, and EOF behavior.
        let mut buf = vec![0u8; payload.len()];
        ring.read_exact_at(&f, &mut buf, 0).unwrap();
        assert_eq!(buf, payload);
        let mut tail = vec![0u8; 1000];
        ring.read_exact_at(&f, &mut tail, payload.len() as u64 - 1000)
            .unwrap();
        assert_eq!(tail, payload[payload.len() - 1000..]);
        let mut over = vec![0u8; 10];
        let err = ring
            .read_exact_at(&f, &mut over, payload.len() as u64)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Datasync on a writable file.
        let wf = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        ring.fsync_datasync(&wf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fallback_paths_work_without_env() {
        // With the knob unset these route to the blocking syscalls.
        let dir = std::env::temp_dir().join(format!("stdchk-uring-fb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        std::fs::write(&path, b"0123456789").unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let mut buf = [0u8; 4];
        read_exact_at(&f, &mut buf, 3).unwrap();
        assert_eq!(&buf, b"3456");
        let wf = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        sync_data(&wf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
