//! Framed TCP connection helpers shared by servers and clients.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_util::ordlock::OrderedMutex;

use crate::ranks;

use stdchk_proto::frame::{read_frame, write_frame};
use stdchk_proto::msg::Msg;
use stdchk_util::Time;

/// Default connect/write timeout for outbound connections. A dead manager
/// or benefactor fails a dial fast instead of hanging the calling thread in
/// the kernel's (minutes-long) TCP connect timeout.
pub const DIAL_TIMEOUT: Duration = Duration::from_secs(5);

/// Connects to `addr` with a connect timeout, and arms the stream with a
/// write timeout so senders can never block forever on a stalled peer.
///
/// # Errors
///
/// Address resolution failures, connect timeouts, and socket errors.
pub fn dial(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last_err = io::Error::other(format!("{addr}: no addresses resolved"));
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(stream) => {
                stream.set_write_timeout(Some(timeout))?;
                return Ok(stream);
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Reads one frame with a temporary read timeout (handshakes), restoring
/// the stream to blocking afterwards.
///
/// # Errors
///
/// Timeouts surface as [`io::ErrorKind::WouldBlock`]/`TimedOut`; transport
/// errors pass through.
pub fn read_frame_timeout(stream: &mut TcpStream, timeout: Duration) -> io::Result<Option<Msg>> {
    stream.set_read_timeout(Some(timeout))?;
    let r = read_frame(&mut *stream);
    stream.set_read_timeout(None)?;
    r
}

/// Process-wide clock mapping wall time onto the protocol's [`Time`].
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    epoch: Instant,
    /// Protocol time at `epoch` (non-zero when resuming a durable
    /// timeline).
    base: Time,
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

impl Clock {
    /// A clock whose zero is "now".
    pub fn new() -> Clock {
        Clock::starting_at(Time::ZERO)
    }

    /// A clock that reads `base` now and advances from there. Protocol
    /// time is process-relative, so a restarted durable manager resumes
    /// the clock *after* every timestamp it replayed — otherwise
    /// replayed version mtimes from the previous incarnation would sit
    /// in this one's future (inverting mtime order for new commits and
    /// stalling age-based retention until the new process caught up).
    pub fn starting_at(base: Time) -> Clock {
        Clock {
            epoch: Instant::now(),
            base,
        }
    }

    /// Current protocol time.
    pub fn now(&self) -> Time {
        self.base + stdchk_util::Dur(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// A shareable write half: many threads may send frames on one socket.
#[derive(Clone)]
pub struct Sender {
    stream: Arc<OrderedMutex<TcpStream>>,
}

impl std::fmt::Debug for Sender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl Sender {
    /// Wraps a connected stream. The read half should be obtained with
    /// [`Sender::reader`] before wrapping.
    pub fn new(stream: TcpStream) -> Sender {
        Sender {
            stream: Arc::new(OrderedMutex::new(ranks::CONN_STREAM, "conn.stream", stream)),
        }
    }

    /// A cloned handle for the read side.
    ///
    /// # Errors
    ///
    /// Propagates `try_clone` failures.
    pub fn reader(&self) -> io::Result<TcpStream> {
        self.stream.lock().try_clone()
    }

    /// Sends one frame. Serialized across threads.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&self, msg: &Msg) -> io::Result<()> {
        let mut s = self.stream.lock();
        write_frame(&mut *s, msg)
    }

    /// True when both handles wrap the same underlying socket.
    pub fn same_channel(&self, other: &Sender) -> bool {
        Arc::ptr_eq(&self.stream, &other.stream)
    }

    /// Shuts the socket down, unblocking any reader.
    pub fn shutdown(&self) {
        let s = self.stream.lock();
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
}

/// Reads frames until EOF/error, invoking `on_msg` per message.
pub fn read_loop(mut stream: TcpStream, mut on_msg: impl FnMut(Msg)) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(msg)) => on_msg(msg),
            Ok(None) => return,
            Err(_) => return,
        }
    }
}

/// One outbound connection, over either transport backend: a shared
/// blocking write half (thread-per-connection) or a reactor connection
/// token. Registries hold `Link`s so the servers' effects code is
/// backend-agnostic.
#[derive(Clone, Debug)]
pub enum Link {
    /// Legacy blocking transport.
    Thread(Sender),
    /// Reactor-registered connection. Holds a [`WeakHandle`](crate::reactor::WeakHandle): registries
    /// live inside application state the reactor owns, so a strong handle
    /// here would cycle. Sends on a torn-down reactor simply fail.
    Event {
        /// The owning reactor.
        handle: crate::reactor::WeakHandle,
        /// The connection.
        token: crate::reactor::ConnToken,
    },
}

impl Link {
    /// Sends one frame.
    ///
    /// For [`Link::Thread`] this blocks until the socket accepts the
    /// bytes; for [`Link::Event`] it means *queued or written* (bounded —
    /// a slow peer's link errors out and is closed).
    ///
    /// # Errors
    ///
    /// Propagates socket/queueing failures.
    pub fn send(&self, msg: &Msg) -> io::Result<()> {
        match self {
            Link::Thread(s) => s.send(msg),
            Link::Event { handle, token } => match handle.upgrade() {
                Some(h) => h.send(*token, msg),
                None => Err(io::Error::other("reactor is gone")),
            },
        }
    }

    /// Sends one frame, requesting an `on_sent` completion with `track`
    /// once the last byte is written ([`Link::Event`] only; the blocking
    /// transport completes synchronously so callers synthesize it).
    ///
    /// # Errors
    ///
    /// As [`Link::send`].
    pub fn send_tracked(&self, msg: &Msg, track: u64) -> io::Result<()> {
        match self {
            Link::Thread(s) => s.send(msg),
            Link::Event { handle, token } => match handle.upgrade() {
                Some(h) => h.send_tracked(*token, msg, track),
                None => Err(io::Error::other("reactor is gone")),
            },
        }
    }

    /// True when both handles address the same underlying connection.
    pub fn same_conn(&self, other: &Link) -> bool {
        match (self, other) {
            (Link::Thread(a), Link::Thread(b)) => a.same_channel(b),
            (Link::Event { token: a, .. }, Link::Event { token: b, .. }) => a == b,
            _ => false,
        }
    }

    /// Closes the connection.
    pub fn shutdown(&self) {
        match self {
            Link::Thread(s) => s.shutdown(),
            Link::Event { handle, token } => {
                if let Some(h) = handle.upgrade() {
                    h.close(*token);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use stdchk_proto::ids::RequestId;

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn sender_roundtrips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut got = Vec::new();
            read_loop(stream, |m| got.push(m));
            got
        });
        let conn = TcpStream::connect(addr).unwrap();
        let sender = Sender::new(conn);
        sender.send(&Msg::Ack { req: RequestId(1) }).unwrap();
        sender.send(&Msg::Ack { req: RequestId(2) }).unwrap();
        sender.shutdown();
        let got = t.join().unwrap();
        assert_eq!(got.len(), 2);
    }
}
