//! The shared append-only log engine core.
//!
//! Two durable structures in this crate are logs: the benefactor's
//! chunk-payload segment store ([`store::SegmentStore`](crate::store::SegmentStore))
//! and the manager's metadata write-ahead log ([`MetaLog`](crate::MetaLog)).
//! Both need the same mechanics, factored here once:
//!
//! - **record framing** — self-delimiting records
//!   `len ‖ kind ‖ key(32B) ‖ crc32c ‖ payload` whose CRC covers
//!   everything, so a scan can tell a valid record from a torn tail;
//! - **group commit** — writers append then wait on a durable watermark;
//!   a background flusher thread runs one `sync_data` per round covering
//!   every record appended before its snapshot ([`GroupCommit`]);
//! - **torn-tail recovery** — [`scan_records`] walks a segment record by
//!   record and reports the last valid boundary, so the opener can
//!   truncate a crash's half-written suffix;
//! - **directory ownership** — an exclusive pid [`DirLock`] per log
//!   directory, with stale-lock reclaim.
//!
//! What the two users layer on top differs: the segment store keeps a
//! `ChunkId → location` index and compacts by liveness; the metadata log
//! keys nothing (the key field carries a record sequence number) and
//! compacts by snapshotting. Neither policy lives here.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stdchk_util::crc32::Crc32;
use stdchk_util::ordlock::{Condvar, OrderedMutex};

use crate::ranks;

/// Framed-record header size: `len (4) ‖ kind (1) ‖ key (32) ‖ crc32c (4)`.
pub const HEADER: usize = 4 + 1 + 32 + 4;

/// Upper bound accepted for a record payload while scanning — anything
/// larger is treated as a torn/corrupt header rather than allocated.
pub const MAX_RECORD: u32 = 512 << 20;

/// Builds the record header for `key` over `payload`; the payload itself
/// is written separately (`writev`) so hot paths never copy bulk bytes.
/// The CRC covers `len ‖ kind ‖ key ‖ payload` and is
/// position-independent, so records may be copied between segments
/// verbatim.
pub fn encode_header(kind: u8, key: &[u8; 32], payload: &[u8]) -> [u8; HEADER] {
    let mut header = [0u8; HEADER];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4] = kind;
    header[5..37].copy_from_slice(key);
    let mut crc = Crc32::new();
    crc.update(&header[..37]);
    crc.update(payload);
    header[37..41].copy_from_slice(&crc.finalize().to_le_bytes());
    header
}

/// On-disk size of a record with a `payload_len`-byte payload.
pub fn record_size(payload_len: u32) -> u64 {
    HEADER as u64 + payload_len as u64
}

/// A record parsed back out of a segment.
#[derive(Clone, Debug)]
pub struct Record {
    /// Record kind byte (meaning is the log user's).
    pub kind: u8,
    /// The 32-byte key field.
    pub key: [u8; 32],
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Little-endian `u32` at `b[off..off + 4]`.
///
/// Infallible by construction at every call site: the buffers are
/// fixed-size headers (or 32-byte keys) filled by a checked
/// `read_exact_at`, so the slice is always in bounds and the
/// `try_into().unwrap()` this replaces could never actually fail — but
/// a literal `.unwrap()` on a hot path is indistinguishable from a
/// latent panic in review, so the conversion lives here once, named.
pub(crate) fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Little-endian `u64` at `b[off..off + 8]`; see [`le_u32`].
pub(crate) fn le_u64(b: &[u8], off: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(v)
}

/// Reads and CRC-verifies the record at `off`. `Ok(None)` means the bytes
/// at `off` do not frame a valid record with `kind <= max_kind` — at the
/// end of an append segment, that is a torn tail.
///
/// # Errors
///
/// I/O errors reading the file.
pub fn read_record(
    file: &File,
    off: u64,
    file_len: u64,
    max_kind: u8,
) -> io::Result<Option<Record>> {
    if file_len.saturating_sub(off) < HEADER as u64 {
        return Ok(None);
    }
    let mut header = [0u8; HEADER];
    file.read_exact_at(&mut header, off)?;
    let len = le_u32(&header, 0);
    let kind = header[4];
    if len > MAX_RECORD
        || kind > max_kind
        || (len as u64) > file_len.saturating_sub(off + HEADER as u64)
    {
        return Ok(None);
    }
    let mut key = [0u8; 32];
    key.copy_from_slice(&header[5..37]);
    let stored_crc = le_u32(&header, 37);
    let mut payload = vec![0u8; len as usize];
    file.read_exact_at(&mut payload, off + HEADER as u64)?;
    let mut crc = Crc32::new();
    crc.update(&header[..37]);
    crc.update(&payload);
    if crc.finalize() != stored_crc {
        return Ok(None);
    }
    Ok(Some(Record { kind, key, payload }))
}

/// Replays a segment record by record, calling `f(offset, record)` for
/// each valid record, and returns the offset of the first byte that does
/// not start a valid record — the boundary the caller should truncate a
/// torn tail back to.
///
/// # Errors
///
/// I/O errors reading the file, or an error returned by `f`.
pub fn scan_records(
    file: &File,
    file_len: u64,
    max_kind: u8,
    mut f: impl FnMut(u64, Record) -> io::Result<()>,
) -> io::Result<u64> {
    let mut off = 0u64;
    while off < file_len {
        match read_record(file, off, file_len, max_kind)? {
            Some(rec) => {
                let size = record_size(rec.payload.len() as u32);
                f(off, rec)?;
                off += size;
            }
            None => break,
        }
    }
    Ok(off)
}

/// `write_all` across two buffers with `writev`, so header + payload land
/// in one syscall without concatenating them first.
///
/// # Errors
///
/// I/O errors of the underlying writes.
pub fn write_all_two(mut file: &File, a: &[u8], b: &[u8]) -> io::Result<()> {
    let (mut ap, mut bp) = (0usize, 0usize);
    while ap < a.len() || bp < b.len() {
        let n = file.write_vectored(&[io::IoSlice::new(&a[ap..]), io::IoSlice::new(&b[bp..])])?;
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        let take_a = n.min(a.len() - ap);
        ap += take_a;
        bp += n - take_a;
    }
    Ok(())
}

// --------------------------------------------------------------- dir lock

fn lock_path(dir: &Path) -> PathBuf {
    dir.join("LOCK")
}

/// RAII ownership of a log directory's `LOCK` file.
///
/// Two live writers appending to one directory would interleave records
/// and truncate each other's tails, so a second open must fail fast
/// instead. A lock left by a crashed process (its pid no longer exists)
/// is reclaimed automatically; if a recycled pid makes that check
/// spuriously fail, the operator deletes `LOCK` by hand.
#[derive(Debug)]
pub struct DirLock(PathBuf);

impl Drop for DirLock {
    fn drop(&mut self) {
        fs::remove_file(&self.0).ok();
    }
}

/// Claims exclusive ownership of `dir` via its pid `LOCK` file.
///
/// # Errors
///
/// [`io::ErrorKind::AddrInUse`] when another live process (or another
/// log in this process) owns the directory; I/O errors otherwise.
pub fn acquire_dir_lock(dir: &Path) -> io::Result<DirLock> {
    let path = lock_path(dir);
    for _ in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let guard = DirLock(path);
                f.write_all(std::process::id().to_string().as_bytes())?;
                return Ok(guard);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let owner = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match owner {
                    Some(pid)
                        if pid != std::process::id()
                            && Path::new(&format!("/proc/{pid}")).exists() =>
                    {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("log directory already locked by live pid {pid}"),
                        ));
                    }
                    Some(pid) if pid == std::process::id() => {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            "log directory already open in this process",
                        ));
                    }
                    // Stale (crashed owner) or unreadable: reclaim, retry.
                    _ => fs::remove_file(&path)?,
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(
        io::ErrorKind::AddrInUse,
        "log directory lock contended",
    ))
}

// ------------------------------------------------------- fault injection

/// Test/bench-only fault injection for `sync_data` calls.
///
/// A cloneable handle wired into a [`GroupCommit`]: tests and benches
/// inject a per-flush delay (modelling a slow platter or a deep device
/// queue) or a hard failure, to observe how fsync tails propagate —
/// e.g. that an unrelated connection's latency stays decoupled from a
/// stalled commit once the disk I/O lane is on. Production code never
/// sets it; the default is a no-op.
#[derive(Clone, Debug, Default)]
pub struct SyncDelay {
    /// Injected delay per flush round, in milliseconds.
    delay_ms: Arc<AtomicU64>,
    /// When set, flushes fail instead of syncing.
    fail: Arc<AtomicBool>,
}

impl SyncDelay {
    /// Injects `delay` before every subsequent flush (zero clears it).
    pub fn set_delay(&self, delay: Duration) {
        self.delay_ms
            .store(delay.as_millis() as u64, Ordering::Relaxed);
    }

    /// Makes every subsequent flush fail (`false` restores normal
    /// operation — but note a [`GroupCommit`] that already failed stays
    /// poisoned).
    pub fn set_fail(&self, fail: bool) {
        self.fail.store(fail, Ordering::Relaxed);
    }

    /// Applies the injected behavior: sleeps the configured delay, then
    /// errors if failure is armed.
    fn apply(&self) -> io::Result<()> {
        let ms = self.delay_ms.load(Ordering::Relaxed);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if self.fail.load(Ordering::Relaxed) {
            return Err(io::Error::other("injected sync failure"));
        }
        Ok(())
    }
}

// ------------------------------------------------------------ group commit

/// Watermark state behind the commit lock.
#[derive(Debug)]
struct CommitState {
    /// Appended-byte count known durable.
    durable: u64,
    /// The flusher hit an I/O error; the log is dead (sticky).
    failed: bool,
}

/// The group-commit watermark shared by all writers and one flusher.
///
/// Writers append (under their own lock), publish the new appended-byte
/// count with [`GroupCommit::note_appended`], and block in
/// [`GroupCommit::wait_durable`]. The flusher loop
/// ([`GroupCommit::flusher_loop`]) snapshots the appended watermark, runs
/// one `sync_data` on the active file, and advances the durable
/// watermark for every record that landed before the snapshot — the same
/// trick databases use for their WAL, with the flusher shape
/// additionally overlapping writeback with ongoing appends/checksums.
pub struct GroupCommit {
    commit: OrderedMutex<CommitState>,
    /// Wakes the flusher when appends outrun the durable watermark.
    work_cv: Condvar,
    /// Wakes committers when the durable watermark advances.
    done_cv: Condvar,
    /// Mirror of the owner's appended count, readable without its lock.
    appended: AtomicU64,
    /// `sync_data` calls issued so far (observability: group-commit batch
    /// factor = appends / syncs).
    syncs: AtomicU64,
    shutdown: AtomicBool,
    /// The log's on-disk tail no longer matches the in-memory offsets (a
    /// failed append could not be rolled back) or the flusher died; every
    /// further mutation must refuse rather than corrupt. Sticky.
    poisoned: AtomicBool,
    /// Test-only injected delay/failure applied per flush round.
    faults: SyncDelay,
}

impl GroupCommit {
    /// A watermark starting with `durable` bytes already safe (what
    /// recovery found on disk).
    pub fn new(durable: u64) -> GroupCommit {
        GroupCommit {
            commit: OrderedMutex::new(
                ranks::GC_COMMIT,
                "log.gc.commit",
                CommitState {
                    durable,
                    failed: false,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            appended: AtomicU64::new(durable),
            syncs: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            faults: SyncDelay::default(),
        }
    }

    /// The watermark's [`SyncDelay`] fault-injection handle (tests and
    /// benches only; see its docs).
    pub fn sync_faults(&self) -> &SyncDelay {
        &self.faults
    }

    /// Publishes a new appended-byte count and kicks the flusher so
    /// writeback overlaps the rest of the batch.
    pub fn note_appended(&self, watermark: u64) {
        self.appended.store(watermark, Ordering::Relaxed);
        self.work_cv.notify_one();
    }

    /// Total `sync_data` calls issued through this watermark.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Counts one `sync_data` issued outside the flusher (rotation,
    /// compaction) toward the observability counter.
    pub fn count_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks everything up to `upto` durable (after an inline sync) and
    /// releases committers waiting below that point.
    pub fn mark_durable(&self, upto: u64) {
        let mut c = self.commit.lock();
        c.durable = c.durable.max(upto);
        self.done_cv.notify_all();
    }

    /// Marks the log permanently unusable (sticky).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// True once poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Blocks until everything appended up to `target` is durable — i.e.
    /// covered by one of the flusher's batched `sync_data` calls.
    ///
    /// # Errors
    ///
    /// Fails once the flusher has hit an I/O error (the log is dead), or
    /// once shutdown began with the target still short of durable (the
    /// flusher is gone; waiting would hang an I/O-lane worker forever).
    pub fn wait_durable(&self, target: u64) -> io::Result<()> {
        let mut c = self.commit.lock();
        loop {
            if c.durable >= target {
                return Ok(());
            }
            if c.failed {
                return Err(io::Error::other("log flush failed"));
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return Err(io::Error::other("log shut down before flush"));
            }
            // Nudge the flusher *while holding the commit lock*: the
            // flusher's predicate check and its wait are atomic under this
            // lock, so this notify can never fall into its check→sleep
            // window (note_appended's lock-free notify is an optimization
            // and may be lost; this one is the liveness guarantee).
            self.work_cv.notify_one();
            self.done_cv.wait(&mut c);
        }
    }

    /// Stops the flusher loop and releases every waiter (committers
    /// still short of their target fail instead of hanging).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// The background group-commit loop: whenever appended bytes outrun
    /// the durable watermark, call `snapshot()` for the current appended
    /// count, any sealed-but-unsynced files, and the active file;
    /// `sync_data` the seals then the active file; and publish the new
    /// durable point. `snapshot` must be taken under the owner's state
    /// lock, and rotation must hand every file it seals over through the
    /// seal list (instead of syncing inline on the appending thread — an
    /// I/O-lane pump must never eat an fsync), so that syncing seals +
    /// active covers everything up to the count. Runs until
    /// [`GroupCommit::begin_shutdown`].
    pub fn flusher_loop(
        &self,
        commit_window: Duration,
        snapshot: impl Fn() -> (u64, Vec<Arc<File>>, Arc<File>),
    ) {
        loop {
            {
                let mut c = self.commit.lock();
                while !self.shutdown.load(Ordering::Relaxed)
                    && (c.failed || self.appended.load(Ordering::Relaxed) <= c.durable)
                {
                    self.work_cv.wait(&mut c);
                }
                if self.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            if !commit_window.is_zero() {
                // Let concurrent appends pile into the same sync_data.
                std::thread::sleep(commit_window);
            }
            let (cum, seals, file) = snapshot();
            let res = self.faults.apply().and_then(|()| {
                for sealed in &seals {
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                    crate::uring::sync_data(sealed)?;
                }
                self.syncs.fetch_add(1, Ordering::Relaxed);
                crate::uring::sync_data(&file)
            });
            let mut c = self.commit.lock();
            match res {
                Ok(()) => c.durable = c.durable.max(cum),
                Err(_) => {
                    c.failed = true;
                    self.poison();
                }
            }
            self.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_through_scan() {
        let dir = std::env::temp_dir().join(format!("stdchk-log-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.log");
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .unwrap();
        let key = [7u8; 32];
        for (kind, payload) in [(0u8, &b"hello"[..]), (1u8, &b""[..]), (0u8, &b"world!"[..])] {
            let header = encode_header(kind, &key, payload);
            write_all_two(&file, &header, payload).unwrap();
        }
        // A torn tail: half a header of garbage.
        write_all_two(&file, &[0xEE; 17], &[]).unwrap();

        let file_len = file.metadata().unwrap().len();
        let mut seen = Vec::new();
        let valid = scan_records(&file, file_len, 1, |off, rec| {
            seen.push((off, rec.kind, rec.payload));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].2, b"hello");
        assert_eq!(seen[2].2, b"world!");
        assert_eq!(valid, file_len - 17, "scan stops at the torn boundary");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_rejects_wrong_kind_and_bad_crc() {
        let dir = std::env::temp_dir().join(format!("stdchk-log-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .truncate(false)
            .open(dir.join("seg.log"))
            .unwrap();
        let header = encode_header(3, &[0u8; 32], b"x");
        write_all_two(&file, &header, b"x").unwrap();
        let len = file.metadata().unwrap().len();
        // kind 3 valid when allowed, torn when the cap is lower.
        assert!(read_record(&file, 0, len, 3).unwrap().is_some());
        assert!(read_record(&file, 0, len, 2).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_lock_excludes_and_reclaims() {
        let dir = std::env::temp_dir().join(format!("stdchk-log-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let lock = acquire_dir_lock(&dir).unwrap();
        assert_eq!(
            acquire_dir_lock(&dir).unwrap_err().kind(),
            io::ErrorKind::AddrInUse
        );
        drop(lock);
        acquire_dir_lock(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
