//! The network stack's global lock-rank table.
//!
//! Every mutex in this crate is a
//! [`stdchk_util::ordlock::OrderedMutex`] carrying one of the ranks
//! below. The discipline — enforced by a debug-build panic at the
//! moment of the wrong acquisition — is that a thread may only take
//! locks in **strictly increasing** rank order. Any two locks this
//! table orders can then never deadlock against each other: a cycle
//! needs two threads acquiring some pair in opposite orders, and one of
//! the two orders is now a panic on every interleaving, not just the
//! unlucky one (this repo's PR 4 route-lock deadlock and PR 9
//! offer-window wedge were both found *late* exactly because nothing
//! checked the order).
//!
//! The bands mirror the call direction of the stack — application
//! registries feed the driver, the driver's effects feed the transport,
//! and the transport's completions feed storage — so a lower band may
//! hold its lock across a call *into* a higher band, never the other
//! way around:
//!
//! | band | locks | why this order |
//! |------|-------|----------------|
//! | 100s | client grid (routes, benefactor links, address cache, delta signatures, session, stage) | client callbacks/user threads send while holding at most one of these |
//! | 200s | server apps + effects (identity maps, WAL outbox, link registries, peer table, resolver) | the manager's outbox drains (transmits) while held → must precede link registries and the transport |
//! | 500s | reactor (listeners, conn registry, per-conn decoder/outbound, dead-conn stats, blocking-lane queue) + threaded sender | sends from any lower band end here |
//! | 600s | storage (segment-store shared state, metalog, group commit, I/O lane queue) | `compact` marks durability (group commit) while holding the store's shared state |
//! | 650s | driver ([`NodeHost`](crate::NodeHost) node / turn order / timer gate) | the durable manager's snapshotter captures node state *while holding* the metalog install turnstile and tail, so the node ranks above storage; `pump` nests order inside the node lock; no path holds the node lock across a send or a storage acquisition (effects execute after the pump releases it) |
//! | 700s | join/flusher/snapshotter handle registries | shutdown-only; taken with nothing else held |
//! | 50 | test-local locks | below everything: tests hold them across calls into the stack |
//!
//! Ranks are spaced by 10 so a new lock can slot between neighbors
//! without renumbering. Two locks that genuinely never nest may share a
//! rank, but every lock here gets its own so the table stays an
//! exhaustive inventory.
//!
//! Locks deliberately *not* nested (guard dropped before the next
//! acquisition) still appear in ascending order where practical, so an
//! accidental future nesting is legal-by-table or an immediate panic —
//! never silently order-dependent.

// Client grid (client.rs). No two of these nest today (the PR 4 fix
// dropped the benefactor-links guard before sending); the order below
// makes the failover path legal: route take → link lookup → session
// pump, each re-acquired in its own statement.
/// `GridApp.conns`: reactor-token → grid routing for shared runtimes.
pub const CLIENT_APP_CONNS: u16 = 100;
/// `GridInner.routes`: request-id → reply route (RPC or session slot).
pub const CLIENT_ROUTES: u16 = 110;
/// `GridInner.benefs`: benefactor data-plane links (up or dialing).
pub const CLIENT_BENEFS: u16 = 120;
/// `GridInner.addr_cache`: node-id → address resolutions.
pub const CLIENT_ADDR_CACHE: u16 = 130;
/// `GridInner.signatures`: per-path delta bases from prior writes.
pub const CLIENT_SIGNATURES: u16 = 140;
/// `SessionShared.session`: one write/read session's state machine.
pub const CLIENT_SESSION: u16 = 150;
/// `SessionShared.stage`: the session's local spill file.
pub const CLIENT_STAGE: u16 = 160;

// Manager server (manager_server.rs). The nesting that fixes this
// band's internal order: `route_inbound` binds identities (conns) while
// holding the per-connection identity map, and `drain_outbox` transmits
// (conns, then the transport) while holding the outbox.
/// `MgrApp.bound`: per-connection bound-identity stacks.
pub const MGR_BOUND: u16 = 200;
/// `MgrEffects.outbox`: WAL-ordered reply release queue.
pub const MGR_OUTBOX: u16 = 210;
/// `MgrEffects.conns`: node-id → live link registry.
pub const MGR_CONNS: u16 = 220;

// Benefactor server (benefactor_server.rs). `Send` effects transmit
// while holding the manager link; everything else here is taken and
// dropped in its own statement.
/// `BenefApp.kinds`: reactor-token → connection role.
pub const BENEF_KINDS: u16 = 230;
/// `BenefEffects.mgr`: the manager control-plane link.
pub const BENEF_MGR: u16 = 240;
/// `BenefEffects.conns`: inbound data-connection registry.
pub const BENEF_CONNS: u16 = 250;
/// `BenefEffects.peers`: outbound replication links (up or dialing).
pub const BENEF_PEERS: u16 = 260;
/// `BenefEffects.resolver`: the blocking manager RPC sideband (held
/// across its blocking round-trip; acquires nothing further).
pub const BENEF_RESOLVER: u16 = 270;
/// `BenefEffects.host`: the node-host registry (threaded peer reader).
pub const BENEF_HOST: u16 = 280;
/// `BenefEffects.rapp`: the reactor-app registry (peer dial routing).
pub const BENEF_RAPP: u16 = 290;

// Reactor transport (reactor.rs, conn.rs). Workers take the conn
// registry then a per-conn lock; `close_conn` folds stats after the
// registry; app callbacks always run with every reactor lock released.
/// `Inner.listeners`: armed listener registry.
pub const REACTOR_LISTENERS: u16 = 500;
/// `Inner.conns`: token → connection registry.
pub const REACTOR_CONNS: u16 = 510;
/// `ConnShared.dec`: per-connection frame decoder.
pub const REACTOR_DEC: u16 = 520;
/// `ConnShared.out`: per-connection outbound queue (sends end here).
pub const REACTOR_OUT: u16 = 530;
/// `Inner.dead_stats`: folded stats of closed connections.
pub const REACTOR_DEAD_STATS: u16 = 540;
/// `Inner.jobs`: the blocking dial lane's delayed-job queue.
pub const REACTOR_JOBS: u16 = 550;
/// `Sender.stream` (threaded backend): the write half of one socket.
pub const CONN_STREAM: u16 = 560;

// Storage engines (store/, metalog.rs, log.rs, iolane.rs). The orders
// that matter: segment compaction marks durability while holding the
// store's shared state; the metalog's installer holds its turnstile
// across capture+rotate; lane workers run jobs with nothing held.
/// `MetaLog.install_mx`: snapshot-install turnstile.
pub const METALOG_INSTALL: u16 = 590;
/// `SegmentStore` `Core.shared`: index + segment table + active tail.
pub const STORE_SHARED: u16 = 600;
/// `MemStore.blobs`: the in-memory chunk map (test/baseline store).
pub const STORE_MEM: u16 = 605;
/// `MetaLog` `Core.inner`: WAL tail + ordering state.
pub const METALOG_INNER: u16 = 610;
/// `MetaLog.lane`: the attached I/O lane registry.
pub const METALOG_LANE: u16 = 620;
/// `GroupCommit.commit`: durable/failed watermarks (fsync waits).
pub const GC_COMMIT: u16 = 630;
/// `IoLane` `Inner.jobs`: the bounded blocking-work queue.
pub const IOLANE_JOBS: u16 = 640;

// Driver (driver.rs). Above the storage band: the durable manager's
// snapshot installer captures node state (`host.node`) while holding
// the metalog install turnstile and WAL tail. The reverse direction
// never holds — `pump` releases the node lock before its effects
// execute, so node-held code acquires no transport or storage lock.
// `pump` acquires the turn-order lock inside the node lock; the timer
// gate is parked on with nothing else held.
/// `NodeHost.node`: the protocol state machine.
pub const NODE: u16 = 650;
/// `NodeHost.order`: ordered-host turn tickets.
pub const NODE_ORDER: u16 = 660;
/// `NodeHost.timer_gate`: the timer thread's wakeup parking lot.
pub const NODE_TIMER: u16 = 670;

// Shutdown-only handle registries: joined with nothing else held.
/// `Reactor.joins`: worker + blocking-lane thread handles.
pub const REACTOR_JOINS: u16 = 700;
/// `IoLane.joins`: lane worker thread handles.
pub const IOLANE_JOINS: u16 = 710;
/// `SegmentStore.flusher`: the group-commit flusher handle.
pub const STORE_FLUSHER: u16 = 720;
/// `MetaLog.flusher`: the WAL flusher handle.
pub const METALOG_FLUSHER: u16 = 730;
/// `ManagerServer.snapshotter`: the snapshot-installer handle.
pub const MGR_SNAPSHOTTER: u16 = 740;

/// Test-local locks (any module's `#[cfg(test)]` helpers): below every
/// production rank, so a test may hold one across a call into the
/// stack (test callbacks acquire them with no production lock held —
/// the reactor releases everything before invoking an app).
pub const TEST: u16 = 50;
