//! The generic event loop driving any sans-IO [`Node`] over real threads.
//!
//! `stdchk-net` used to wire each role (manager, benefactor) with its own
//! dispatch, timer thread, and completion plumbing. [`NodeHost`] replaces
//! all of that with one loop shared by every role:
//!
//! - reader threads feed inbound messages through [`NodeHost::deliver`];
//! - [`run_node`] is the event loop: it fires [`Node::handle_timeout`] when
//!   the deadline from [`Node::poll_timeout`] arrives and sleeps exactly
//!   until the next one (woken early whenever an input may have re-armed a
//!   timer);
//! - after every input the host drains [`Node::poll_action`] **in batches**
//!   — actions are popped under the lock in groups, then executed without
//!   holding the node, so socket and disk I/O never serialize protocol
//!   handling;
//! - role-specific behaviour is reduced to an [`Effects`] implementation:
//!   "transmit this message", "store/load this chunk". Effects return
//!   [`Completion`]s that the host feeds straight back.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stdchk_util::ordlock::{Condvar, OrderedMutex};

use crate::ranks;

use stdchk_core::node::{Action, Completion, Node};
use stdchk_proto::ids::NodeId;
use stdchk_proto::msg::Msg;

use crate::conn::Clock;

/// Actions popped per lock acquisition while draining (shared by
/// [`NodeHost::pump`] and the client's session pump).
pub const ACTION_BATCH: usize = 32;

/// Longest uninterrupted timer sleep (a safety net against missed wakeups;
/// the loop normally sleeps exactly to [`Node::poll_timeout`]).
const MAX_TIMER_SLEEP: Duration = Duration::from_millis(500);

/// Role-specific execution of unified actions. Implementations are cheap
/// handles (connection registries, blob stores) shared across threads.
///
/// All routing state must live in the implementation (connection
/// registries keyed by node id): actions from the shared queue may be
/// executed by *any* pumping thread — a timer tick may transmit a reply
/// another connection's message produced — so effects cannot depend on
/// which thread delivered the triggering input.
pub trait Effects: Send + Sync + 'static {
    /// Executes one action. Returns the resulting completion for
    /// synchronous effects (blob-store writes); `None` when there is
    /// nothing to report.
    fn execute(&self, action: Action) -> Option<Completion>;

    /// Executes one drained batch of actions, draining `actions` and
    /// pushing resulting completions.
    ///
    /// The default executes them one at a time in order. Implementations
    /// sitting on batch-aware resources should override it — the
    /// benefactor coalesces its queued `Store` actions into one blob-store
    /// `put_batch` so a group-commit engine covers a whole ingest burst
    /// with a single flush.
    fn execute_batch(&self, actions: &mut Vec<Action>, completions: &mut Vec<Completion>) {
        for action in actions.drain(..) {
            if let Some(c) = self.execute(action) {
                completions.push(c);
            }
        }
    }
}

/// Batch-order tickets for [`NodeHost`]s running with ordered effects.
#[derive(Debug, Default)]
struct OrderState {
    /// Next ticket to hand out (assigned while the batch is popped).
    next: u64,
    /// Ticket currently allowed to execute.
    turn: u64,
}

/// A sans-IO node hosted behind a lock, with a shared clock, an effects
/// executor, and a timer the event loop sleeps on.
pub struct NodeHost<N, E> {
    node: OrderedMutex<N>,
    clock: Clock,
    effects: E,
    timer_gate: OrderedMutex<()>,
    timer_cv: Condvar,
    shutdown: AtomicBool,
    /// When set, drained batches execute strictly in pop order, one at a
    /// time (see [`NodeHost::new_ordered`]).
    ordered: bool,
    order: OrderedMutex<OrderState>,
    order_cv: Condvar,
}

/// Advances the batch-order turn even if the executing thread unwinds,
/// so a panicking effect cannot wedge every other pump.
struct TurnGuard<'a> {
    order: &'a OrderedMutex<OrderState>,
    cv: &'a Condvar,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        self.order.lock().turn += 1;
        self.cv.notify_all();
    }
}

impl<N: Node + Send + 'static, E: Effects> NodeHost<N, E> {
    /// Hosts `node` with concurrent effect execution: any pumping thread
    /// may execute any drained batch, in any interleaving. Right for
    /// effects that carry no cross-action ordering (blob I/O keyed by
    /// content hash, independent sends).
    pub fn new(node: N, clock: Clock, effects: E) -> Arc<NodeHost<N, E>> {
        NodeHost::build(node, clock, effects, false)
    }

    /// Hosts `node` with **ordered** effect execution: drained batches
    /// run strictly in the order they were popped from the action queue,
    /// one batch at a time. Required when effect order is part of the
    /// protocol — the manager's metadata WAL queues each append *ahead
    /// of* the reply it guards, and that only means write-ahead if no
    /// racing pump thread can transmit a later-queued send first. Costs
    /// effect-execution parallelism, so reserve it for nodes whose
    /// effects are cheap (the manager's are socket writes and small log
    /// appends).
    pub fn new_ordered(node: N, clock: Clock, effects: E) -> Arc<NodeHost<N, E>> {
        NodeHost::build(node, clock, effects, true)
    }

    fn build(node: N, clock: Clock, effects: E, ordered: bool) -> Arc<NodeHost<N, E>> {
        Arc::new(NodeHost {
            node: OrderedMutex::new(ranks::NODE, "host.node", node),
            clock,
            effects,
            timer_gate: OrderedMutex::new(ranks::NODE_TIMER, "host.timer_gate", ()),
            timer_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            ordered,
            order: OrderedMutex::new(ranks::NODE_ORDER, "host.order", OrderState::default()),
            order_cv: Condvar::new(),
        })
    }

    /// The host's clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The role-specific effects executor.
    pub fn effects(&self) -> &E {
        &self.effects
    }

    /// Runs `f` against the node (accessors, invariant audits).
    pub fn with_node<R>(&self, f: impl FnOnce(&mut N) -> R) -> R {
        f(&mut self.node.lock())
    }

    /// The hosted node's next protocol deadline (what a reactor folds
    /// into its `epoll_wait` timeout).
    pub fn next_deadline(&self) -> Option<stdchk_util::Time> {
        self.node.lock().poll_timeout()
    }

    /// Fires the node's timer if due and drains the resulting actions:
    /// the shared tick every reactor-hosted server app delegates to.
    pub fn tick(&self, now: stdchk_util::Time) {
        {
            let mut node = self.node.lock();
            if node.poll_timeout().is_some_and(|t| t <= now) {
                node.handle_timeout(now);
            }
        }
        self.pump();
    }

    /// Feeds one inbound message, then drains resulting actions.
    pub fn deliver(&self, from: NodeId, msg: Msg) {
        let now = self.clock.now();
        self.node.lock().handle(from, msg, now);
        self.pump();
        // Handling a message may have armed an earlier timer.
        self.timer_cv.notify_all();
    }

    /// Feeds one completion (for asynchronous effects), then drains.
    pub fn complete(&self, completion: Completion) {
        self.complete_all(std::iter::once(completion));
    }

    /// Feeds a batch of completions under one node-lock acquisition,
    /// then drains once — how the disk I/O lane reports a whole store
    /// batch's `Stored` acks without N lock round-trips.
    pub fn complete_all(&self, completions: impl IntoIterator<Item = Completion>) {
        let now = self.clock.now();
        {
            let mut node = self.node.lock();
            for c in completions {
                node.handle_completion(c, now);
            }
        }
        self.pump();
        self.timer_cv.notify_all();
    }

    /// Drains `poll_action` in batches: pop up to [`ACTION_BATCH`] actions
    /// under the lock, hand the whole batch to
    /// [`Effects::execute_batch`] lock-free, feed completions back, repeat
    /// until the queue is empty.
    ///
    /// On an ordered host ([`NodeHost::new_ordered`]) each batch takes a
    /// ticket *inside the pop critical section* (ticket order ≡ queue
    /// order) and waits its turn before executing, so effects run in
    /// exactly the order the node emitted them even with many pumping
    /// threads.
    pub fn pump(&self) {
        let mut batch = Vec::with_capacity(ACTION_BATCH);
        loop {
            let ticket = {
                let mut node = self.node.lock();
                while batch.len() < ACTION_BATCH {
                    match node.poll_action() {
                        Some(a) => batch.push(a),
                        None => break,
                    }
                }
                if batch.is_empty() {
                    return;
                }
                if self.ordered {
                    let mut order = self.order.lock();
                    let t = order.next;
                    order.next += 1;
                    Some(t)
                } else {
                    None
                }
            };
            let _turn_guard = ticket.map(|t| {
                let mut order = self.order.lock();
                while order.turn != t {
                    self.order_cv.wait(&mut order);
                }
                drop(order);
                TurnGuard {
                    order: &self.order,
                    cv: &self.order_cv,
                }
            });
            let mut completions = Vec::new();
            self.effects.execute_batch(&mut batch, &mut completions);
            debug_assert!(batch.is_empty(), "execute_batch must drain the batch");
            if !completions.is_empty() {
                let now = self.clock.now();
                let mut node = self.node.lock();
                for c in completions {
                    node.handle_completion(c, now);
                }
            }
        }
    }

    /// Stops [`run_node`] loops on this host.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.timer_cv.notify_all();
    }

    /// True once [`NodeHost::shutdown`] ran.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// The generic event loop: fires due timers, drains actions, and sleeps
/// until the node's next deadline. Blocks until [`NodeHost::shutdown`].
///
/// One `run_node` thread per host; reader threads deliver messages
/// concurrently through [`NodeHost::deliver`].
pub fn run_node<N: Node + Send + 'static, E: Effects>(host: &NodeHost<N, E>) {
    while !host.is_shutdown() {
        let now = host.clock.now();
        let next = {
            let mut node = host.node.lock();
            if node.poll_timeout().is_some_and(|t| t <= now) {
                node.handle_timeout(now);
            }
            node.poll_timeout()
        };
        host.pump();
        let now = host.clock.now();
        let sleep = match next {
            Some(t) if t <= now => Duration::from_millis(1), // re-armed and already due
            Some(t) => Duration::from_nanos(t.as_nanos() - now.as_nanos()),
            None => MAX_TIMER_SLEEP,
        }
        .clamp(Duration::from_millis(1), MAX_TIMER_SLEEP);
        let mut gate = host.timer_gate.lock();
        if host.is_shutdown() {
            return;
        }
        host.timer_cv.wait_for(&mut gate, sleep);
    }
}

/// Spawns the [`run_node`] event loop on a named thread.
pub fn spawn_node_loop<N: Node + Send + 'static, E: Effects>(
    name: &str,
    host: Arc<NodeHost<N, E>>,
) {
    if let Err(e) = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || run_node(&host))
    {
        // Fail-stop, not unwind: without its loop thread the node never
        // pumps another action, so timers and retries die silently while
        // the sockets stay open — a half-alive server.
        eprintln!("stdchk node loop {name}: fatal: cannot spawn thread: {e}");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use stdchk_core::node::ActionQueue;
    use stdchk_proto::ids::RequestId;
    use stdchk_util::Time;

    /// A trivial node: echoes every message back to its sender and ticks a
    /// counter on each timeout.
    struct Echo {
        q: ActionQueue,
        ticks: u32,
        next_deadline: Option<Time>,
    }

    impl Node for Echo {
        fn handle(&mut self, from: NodeId, msg: Msg, _now: Time) {
            self.q.send(from, msg);
        }

        fn handle_timeout(&mut self, now: Time) {
            self.ticks += 1;
            self.next_deadline = Some(now + stdchk_util::Dur::from_millis(5));
        }

        fn poll_action(&mut self) -> Option<Action> {
            self.q.pop()
        }

        fn poll_timeout(&self) -> Option<Time> {
            self.next_deadline
        }
    }

    #[derive(Default)]
    struct Captured(PlMutex<Vec<(NodeId, Msg)>>);

    impl Effects for Arc<Captured> {
        fn execute(&self, action: Action) -> Option<Completion> {
            if let Action::Send { to, msg } = action {
                self.0.lock().push((to, msg));
            }
            None
        }
    }

    #[test]
    fn deliver_drains_through_effects() {
        let sink = Arc::new(Captured::default());
        let host = NodeHost::new(
            Echo {
                q: ActionQueue::new(),
                ticks: 0,
                next_deadline: Some(Time::ZERO),
            },
            Clock::new(),
            Arc::clone(&sink),
        );
        host.deliver(NodeId(9), Msg::Ack { req: RequestId(1) });
        let got = sink.0.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, NodeId(9));
    }

    #[test]
    fn run_node_fires_timers_until_shutdown() {
        let sink = Arc::new(Captured::default());
        let host = NodeHost::new(
            Echo {
                q: ActionQueue::new(),
                ticks: 0,
                next_deadline: Some(Time::ZERO),
            },
            Clock::new(),
            Arc::clone(&sink),
        );
        let h2 = Arc::clone(&host);
        let t = std::thread::spawn(move || run_node(&h2));
        std::thread::sleep(Duration::from_millis(40));
        host.shutdown();
        t.join().unwrap();
        assert!(host.with_node(|n| n.ticks) >= 2, "timer loop must re-fire");
    }
}
