//! The metadata manager as a TCP server.
//!
//! The sans-IO [`Manager`] is driven entirely through the unified
//! [`Node`](stdchk_core::Node) API. Two transports can host it
//! ([`crate::Backend`]):
//!
//! - **reactor** (default): the epoll [`Reactor`] owns
//!   every socket with a fixed worker pool — workers decode frames
//!   incrementally and `deliver` them, manager maintenance fires from
//!   `poll_timeout` folded into `epoll_wait`, and idle connections are
//!   reaped. Threads stay O(workers) no matter how many clients and
//!   benefactors connect.
//! - **threaded** (legacy, `STDCHK_NET_BACKEND=threaded`): reader thread
//!   per connection + the generic [`run_node`](crate::run_node) timer
//!   loop. Kept as the benchmark baseline.
//!
//! Either way the only manager-specific code is [`MgrEffects`] — a
//! connection registry that knows how to transmit, plus (for durable
//! managers) the metadata write-ahead log.
//!
//! [`ManagerServer::spawn`] runs the paper's volatile manager: a restart
//! comes back empty and relies on benefactor re-offers.
//! [`ManagerServer::spawn_durable`] attaches a [`MetaLog`]: the manager
//! state machine write-ahead-logs every namespace mutation, a background
//! thread installs periodic snapshots, and a restart replays snapshot +
//! log before accepting its first connection — `stat`/`list`/`open`
//! serve from replayed state immediately, and re-offers demote to a
//! consistency repair.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use stdchk_util::ordlock::OrderedMutex;

use crate::ranks;

use stdchk_core::node::{Action, Completion};
use stdchk_core::{Manager, ManagerStats, PoolConfig};
use stdchk_proto::ids::NodeId;
use stdchk_proto::meta::MetaRecord;
use stdchk_proto::msg::{DedupSummary, Msg, Role};
use stdchk_util::Time;

use crate::conn::{read_loop, Clock, Link, Sender};
use crate::driver::{spawn_node_loop, Effects, NodeHost};
use crate::iolane::IoLane;
use crate::log::SyncDelay;
use crate::metalog::{MetaLog, MetaLogConfig};
use crate::reactor::{CloseReason, ConnOpts, ConnToken, Reactor, ReactorApp, ReactorConfig};
use crate::{Backend, ServerOpts};

/// Base of the per-connection client node-id namespace (far above any
/// benefactor id the manager will ever assign).
pub const CLIENT_NET_BASE: u64 = 1 << 48;

/// Base of the synthetic id namespace for anonymous helper connections
/// (pre-join benefactors, resolver sidebands). Every connection is bound in
/// the registry under *some* id so any pumping thread can route replies.
pub const HELPER_NET_BASE: u64 = 1 << 49;

/// One drained batch's replies, parked until release.
struct OutboxEntry {
    sends: Vec<(NodeId, Msg)>,
    /// True once the batch's durability (if any) landed; released when
    /// every earlier batch has also been released.
    ready: bool,
}

/// Batch-ordered reply release for the I/O-lane path.
///
/// The ordered `NodeHost` executes drained batches strictly in queue
/// order, so entries are *enqueued* in ticket order; the outbox then
/// releases them in exactly that order, with a durable batch's sends
/// held back until its lane-side `wait_appended` completes. That keeps
/// the end-to-end guarantee intact: no send — from any batch — can
/// overtake a WAL append queued ahead of it, even though the pump no
/// longer blocks on the fsync.
#[derive(Default)]
struct Outbox {
    /// Next batch sequence to assign (assigned while batches execute,
    /// which the ordered host serializes).
    next_seq: u64,
    /// Next batch sequence allowed to transmit.
    next_release: u64,
    parked: BTreeMap<u64, OutboxEntry>,
}

/// Effects for the manager: a registry of live connections keyed by node
/// id, plus — for durable managers — the metadata write-ahead log that
/// `MetaAppend` actions land in, and the disk I/O lane its group-commit
/// waits ride on.
pub struct MgrEffects {
    conns: OrderedMutex<HashMap<NodeId, Link>>,
    next_client: AtomicU64,
    next_helper: AtomicU64,
    metalog: Option<Arc<MetaLog>>,
    /// Durable waits ride here instead of the executing pump (None:
    /// inline execution, the `STDCHK_IO_LANE=off` baseline).
    lane: Option<Arc<IoLane>>,
    outbox: OrderedMutex<Outbox>,
}

impl MgrEffects {
    fn bind(&self, node: NodeId, conn: &Link) {
        self.conns.lock().insert(node, conn.clone());
    }

    /// Unbinds `node` only while it still points at `conn`: a reconnect may
    /// already have rebound the id to a fresh connection.
    fn unbind_if(&self, node: NodeId, conn: &Link) {
        let mut conns = self.conns.lock();
        if conns.get(&node).is_some_and(|c| c.same_conn(conn)) {
            conns.remove(&node);
        }
    }
}

impl MgrEffects {
    /// The I/O-lane path for one drained batch: append the records
    /// inline (buffered writes — fixing WAL order at submission), park
    /// the replies on the batch's outbox slot, and hand only the
    /// durability *wait* to the lane, whose completion releases the
    /// slot. Batches without records still take a slot so their sends
    /// cannot overtake replies parked behind an earlier batch's fsync.
    ///
    /// Called only from the ordered host's serialized batch execution,
    /// which is what makes `next_seq` assignment the ticket order.
    fn execute_lane(
        self: &Arc<Self>,
        lane: &Arc<IoLane>,
        log: &Arc<MetaLog>,
        records: Vec<(u64, MetaRecord)>,
        sends: Vec<(NodeId, Msg)>,
    ) {
        if records.is_empty() {
            let mut ob = self.outbox.lock();
            let seq = ob.next_seq;
            ob.next_seq += 1;
            ob.parked.insert(seq, OutboxEntry { sends, ready: true });
            self.drain_outbox(&mut ob);
            return;
        }
        let target = match log.submit_append_batch(&records) {
            Ok(t) => t,
            Err(e) => {
                // Same fail-stop as the inline path: the in-memory
                // manager is already ahead of a log that cannot advance.
                eprintln!("stdchk-mgr: fatal: metadata WAL append failed: {e}");
                std::process::abort();
            }
        };
        let seq = {
            let mut ob = self.outbox.lock();
            let seq = ob.next_seq;
            ob.next_seq += 1;
            ob.parked.insert(
                seq,
                OutboxEntry {
                    sends,
                    ready: false,
                },
            );
            seq
        };
        let this = Arc::clone(self);
        let log2 = Arc::clone(log);
        if !lane.submit(move || this.finish_durable(&log2, target, seq)) {
            // Lane already shut down: degrade to the inline wait (the
            // shutdown path; ordering still holds — we are the newest
            // parked entry).
            self.finish_durable(log, target, seq);
        }
    }

    /// Lane job (or shutdown-path inline call): wait out the batch's
    /// group commit, then release its replies — and everything parked
    /// behind them — in batch order.
    fn finish_durable(&self, log: &MetaLog, target: u64, seq: u64) {
        let res = log.wait_appended(target);
        let mut ob = self.outbox.lock();
        let entry = ob.parked.get_mut(&seq).expect("parked batch");
        if res.is_err() {
            if log.is_poisoned() {
                // The flusher hit an I/O error: fail-stop, exactly like
                // a failed inline append — never ack-then-lose.
                eprintln!("stdchk-mgr: fatal: metadata WAL flush failed");
                std::process::abort();
            }
            // Shutdown race: drop the replies (indistinguishable from a
            // crash before transmission; clients retry), but keep the
            // slot releasing so later entries are not wedged.
            entry.sends.clear();
        }
        entry.ready = true;
        self.drain_outbox(&mut ob);
    }

    /// Transmits every consecutive ready batch from the release cursor.
    /// Runs under the outbox lock: that serializes racing lane
    /// completions, so the global transmit order equals batch order
    /// (sends are bounded nonblocking enqueues on the reactor, so the
    /// hold is short).
    fn drain_outbox(&self, ob: &mut Outbox) {
        while ob
            .parked
            .get(&ob.next_release)
            .is_some_and(|entry| entry.ready)
        {
            let entry = ob.parked.remove(&ob.next_release).expect("checked");
            ob.next_release += 1;
            for (to, msg) in entry.sends {
                self.transmit(to, &msg);
            }
        }
    }

    fn transmit(&self, to: NodeId, msg: &Msg) {
        let conn = self.conns.lock().get(&to).cloned();
        if let Some(conn) = conn {
            if conn.send(msg).is_err() {
                // A failed (or timed-out) send may have left a partial
                // frame on the wire; any further message on this socket
                // would desync the peer's framing. Drop the connection —
                // peers are soft-state and re-register/retry. (The
                // reactor link additionally fails on backpressure: a
                // peer that stopped draining gets disconnected here.)
                self.unbind_if(to, &conn);
                conn.shutdown();
            }
        }
        // Peers with no registered connection are dropped: they are
        // soft-state; their timers re-register and re-request.
    }
}

/// Routes one inbound message through the tiny connection handshake shared
/// by both transports: binds the peer's identity (client/benefactor id or
/// a synthetic helper id) in the registry, and returns `Some((from, msg))`
/// when the message should be delivered to the manager node.
///
/// `bound_ids` is the per-connection identity stack; the last entry is the
/// current peer identity and every entry is unbound when the connection
/// dies.
fn route_inbound(
    effects: &MgrEffects,
    bound_ids: &mut Vec<NodeId>,
    conn: &Link,
    msg: Msg,
) -> Option<(NodeId, Msg)> {
    // Transport liveness probes never reach the node (the reactor answers
    // them itself; this is the threaded path's equivalent).
    match &msg {
        Msg::Ping { nonce } => {
            let _ = conn.send(&Msg::Pong { nonce: *nonce });
            return None;
        }
        Msg::Pong { .. } => return None,
        _ => {}
    }
    let peer = bound_ids.last().copied();
    match (&msg, peer) {
        (
            Msg::Hello {
                role: Role::Client, ..
            },
            None,
        ) => {
            let id = NodeId(effects.next_client.fetch_add(1, Ordering::Relaxed));
            bound_ids.push(id);
            effects.bind(id, conn);
            // Tell the client its pool identity.
            let _ = conn.send(&Msg::Hello {
                role: Role::Manager,
                node: id,
            });
            None
        }
        (Msg::Hello { node, .. }, None) if *node != NodeId(0) => {
            // Benefactor (or manager peer) announcing an existing id.
            bound_ids.push(*node);
            effects.bind(*node, conn);
            None
        }
        (Msg::Hello { .. }, None) => {
            // Anonymous connection (pre-join benefactor, resolver
            // sideband): bind a synthetic helper id so replies — including
            // the JoinOk that assigns the real id — route through the
            // registry from any thread.
            let id = NodeId(effects.next_helper.fetch_add(1, Ordering::Relaxed));
            bound_ids.push(id);
            effects.bind(id, conn);
            None
        }
        _ => {
            // A heartbeat binds the announcing node id (manager restart:
            // benefactors keep their old ids; post-join benefactors
            // upgrade their helper binding).
            if let Msg::Heartbeat { node, .. } = msg {
                if peer != Some(node) {
                    bound_ids.push(node);
                    effects.bind(node, conn);
                }
            }
            let from = match bound_ids.last().copied() {
                Some(id) => id,
                None => {
                    // No Hello at all: bind a helper id on first use.
                    let id = NodeId(effects.next_helper.fetch_add(1, Ordering::Relaxed));
                    bound_ids.push(id);
                    effects.bind(id, conn);
                    id
                }
            };
            // Commits that rode the have/want negotiation carry their wire
            // accounting; surface the per-commit dedup ratio next to the
            // manager's other operational logging.
            if let Msg::CommitChunkMap {
                reservation, dedup, ..
            } = &msg
            {
                if *dedup != DedupSummary::default() {
                    let moved = dedup.delta_bytes + dedup.full_bytes;
                    let total = dedup.reused_bytes + moved;
                    let pct = if total > 0 {
                        100.0 * moved as f64 / total as f64
                    } else {
                        100.0
                    };
                    eprintln!(
                        "stdchk-mgr: commit {reservation:?} dedup: offered={} wanted={} \
                         reused={}B delta={}B full={}B ({pct:.1}% of logical bytes on wire)",
                        dedup.offered,
                        dedup.wanted,
                        dedup.reused_bytes,
                        dedup.delta_bytes,
                        dedup.full_bytes,
                    );
                }
            }
            Some((from, msg))
        }
    }
}

/// The manager's [`ReactorApp`]: handshake-routes inbound messages into
/// the shared [`NodeHost`], unbinds identities when connections die, and
/// fires the manager's maintenance timers from the reactor's tick.
struct MgrApp {
    host: OnceLock<Arc<NodeHost<Manager, Arc<MgrEffects>>>>,
    handle: OnceLock<crate::reactor::WeakHandle>,
    /// Identities bound by each live connection.
    bound: OrderedMutex<HashMap<ConnToken, Vec<NodeId>>>,
}

impl MgrApp {
    fn link(&self, conn: ConnToken) -> Link {
        Link::Event {
            handle: self.handle.get().expect("handle set at spawn").clone(),
            token: conn,
        }
    }
}

impl ReactorApp for MgrApp {
    fn on_accept(&self, conn: ConnToken, _listener: u64) {
        self.bound.lock().insert(conn, Vec::new());
    }

    fn on_msg(&self, conn: ConnToken, msg: Msg) {
        let Some(host) = self.host.get() else { return };
        let link = self.link(conn);
        let routed = {
            let mut bound = self.bound.lock();
            let ids = bound.entry(conn).or_default();
            route_inbound(host.effects(), ids, &link, msg)
        };
        if let Some((from, msg)) = routed {
            host.deliver(from, msg);
        }
    }

    fn on_close(&self, conn: ConnToken, _reason: CloseReason) {
        let Some(host) = self.host.get() else { return };
        let link = self.link(conn);
        if let Some(ids) = self.bound.lock().remove(&conn) {
            for id in ids {
                host.effects().unbind_if(id, &link);
            }
        }
    }

    fn next_deadline(&self) -> Option<Time> {
        self.host.get().and_then(|h| h.next_deadline())
    }

    fn on_tick(&self, now: Time) {
        if let Some(host) = self.host.get() {
            host.tick(now);
        }
    }
}

impl Effects for Arc<MgrEffects> {
    /// Single-action path: same semantics as [`Effects::execute_batch`]
    /// (which is the only caller shape the host actually uses), so the
    /// two can never diverge on ordering or failure handling.
    fn execute(&self, action: Action) -> Option<Completion> {
        let mut batch = vec![action];
        let mut completions = Vec::new();
        self.execute_batch(&mut batch, &mut completions);
        debug_assert!(completions.is_empty(), "manager effects yield nothing");
        None
    }

    /// Write-ahead ordering for a whole drained batch: every `MetaAppend`
    /// is appended (one group commit covers them all) **before** any
    /// `Send` executes, so no reply can acknowledge state the log does
    /// not yet hold. Cross-batch order comes from the host: the manager
    /// runs on an *ordered* [`NodeHost`], so batches execute strictly in
    /// queue order and a send can never overtake the append queued ahead
    /// of it in an earlier batch.
    ///
    /// With the disk I/O lane attached the pump no longer waits out the
    /// group commit: the appends still run here (inline, buffered), the
    /// replies park on the batch's outbox slot, and the lane's
    /// `wait_appended` completion releases them — still strictly in
    /// batch order (the outbox), so both invariants survive with the
    /// fsync tail off the worker.
    ///
    /// A failed append is fail-stop: the in-memory manager has already
    /// applied mutations the log will never hold, so continuing would
    /// either ack state a restart loses or serve a namespace that
    /// silently diverges from disk forever. Aborting lets the successor
    /// restart from the last durable state (clients retry, exactly as
    /// for a crash).
    fn execute_batch(&self, actions: &mut Vec<Action>, completions: &mut Vec<Completion>) {
        let _ = &completions;
        let mut sends = Vec::with_capacity(actions.len());
        let mut records: Vec<(u64, MetaRecord)> = Vec::new();
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => sends.push((to, msg)),
                Action::MetaAppend { seq, record } => records.push((seq, record)),
                other => unreachable!("manager never requests {other:?}"),
            }
        }
        if let (Some(lane), Some(log)) = (&self.lane, &self.metalog) {
            let (lane, log) = (Arc::clone(lane), Arc::clone(log));
            self.execute_lane(&lane, &log, records, sends);
            return;
        }
        if !records.is_empty() {
            let log = self
                .metalog
                .as_ref()
                .expect("MetaAppend emitted without an attached MetaLog");
            if let Err(e) = log.append_batch(&records) {
                eprintln!("stdchk-mgr: fatal: metadata WAL append failed: {e}");
                std::process::abort();
            }
        }
        for (to, msg) in sends {
            self.transmit(to, &msg);
        }
    }
}

/// A running manager server.
pub struct ManagerServer {
    host: Arc<NodeHost<Manager, Arc<MgrEffects>>>,
    addr: SocketAddr,
    /// The epoll transport (reactor backend only).
    reactor: Option<Reactor>,
    /// The disk I/O lane (durable mode with the lane enabled).
    lane: Option<Arc<IoLane>>,
    /// The snapshot-installer thread (durable mode): joined on shutdown
    /// so its `Arc<MetaLog>` — and with it the log directory `LOCK` —
    /// is released promptly for a successor.
    snapshotter: OrderedMutex<Option<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ManagerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagerServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ManagerServer {
    /// Binds `listen` (e.g. `"127.0.0.1:0"`) and starts serving with
    /// volatile metadata (the paper's soft-state manager: a restart
    /// relies on heartbeats and re-offers). Transport comes from
    /// [`ServerOpts::default`] (the reactor, unless
    /// `STDCHK_NET_BACKEND=threaded`).
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind.
    pub fn spawn(listen: &str, cfg: PoolConfig) -> io::Result<ManagerServer> {
        ManagerServer::spawn_with(listen, cfg, ServerOpts::default())
    }

    /// [`ManagerServer::spawn`] with explicit transport tuning (backend,
    /// reactor workers, idle reaping).
    ///
    /// # Errors
    ///
    /// As [`ManagerServer::spawn`].
    pub fn spawn_with(
        listen: &str,
        cfg: PoolConfig,
        opts: ServerOpts,
    ) -> io::Result<ManagerServer> {
        ManagerServer::spawn_inner(listen, cfg, None, opts)
    }

    /// Binds `listen` and starts serving with durable metadata rooted at
    /// `meta_dir`: the manager replays the directory's snapshot + WAL
    /// before accepting its first connection, write-ahead-logs every
    /// further namespace mutation, and installs periodic snapshots so
    /// replay stays bounded.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind, the log directory cannot be
    /// opened/locked, or the recovered log is corrupt.
    pub fn spawn_durable(
        listen: &str,
        cfg: PoolConfig,
        meta_dir: impl AsRef<Path>,
    ) -> io::Result<ManagerServer> {
        ManagerServer::spawn_durable_with(listen, cfg, meta_dir, MetaLogConfig::default())
    }

    /// [`ManagerServer::spawn_durable`] with explicit [`MetaLogConfig`]
    /// tuning (tests use small snapshot thresholds).
    ///
    /// # Errors
    ///
    /// As [`ManagerServer::spawn_durable`].
    pub fn spawn_durable_with(
        listen: &str,
        cfg: PoolConfig,
        meta_dir: impl AsRef<Path>,
        log_cfg: MetaLogConfig,
    ) -> io::Result<ManagerServer> {
        ManagerServer::spawn_durable_tuned(listen, cfg, meta_dir, log_cfg, ServerOpts::default())
    }

    /// [`ManagerServer::spawn_durable_with`] plus explicit transport
    /// tuning.
    ///
    /// # Errors
    ///
    /// As [`ManagerServer::spawn_durable`].
    pub fn spawn_durable_tuned(
        listen: &str,
        cfg: PoolConfig,
        meta_dir: impl AsRef<Path>,
        log_cfg: MetaLogConfig,
        opts: ServerOpts,
    ) -> io::Result<ManagerServer> {
        let (metalog, recovery) = MetaLog::open_with(meta_dir, log_cfg)?;
        ManagerServer::spawn_inner(listen, cfg, Some((Arc::new(metalog), recovery)), opts)
    }

    fn spawn_inner(
        listen: &str,
        cfg: PoolConfig,
        durable: Option<(Arc<MetaLog>, crate::metalog::MetaRecovery)>,
        opts: ServerOpts,
    ) -> io::Result<ManagerServer> {
        let cfg = cfg.apply_env();
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let (clock, metalog, manager) = match durable {
            None => (Clock::new(), None, Manager::new(cfg)),
            Some((metalog, recovery)) => {
                // Resume the protocol clock after the newest replayed
                // timestamp: a fresh zero would put every durable mtime
                // in this incarnation's future, inverting mtime order
                // for new commits and stalling age-based retention.
                let clock =
                    Clock::starting_at(recovery.max_time() + stdchk_util::Dur::from_millis(1));
                let now = clock.now();
                let mut mgr = match &recovery.snapshot {
                    Some(snap) => Manager::restore(cfg, snap, now),
                    None => Manager::new(cfg),
                };
                for record in &recovery.records {
                    mgr.replay(record, now);
                }
                mgr.enable_wal();
                (clock, Some(metalog), mgr)
            }
        };
        // The disk I/O lane: durable waits (WAL group commits, snapshot
        // fsync/prune) ride it instead of the pump that drained the
        // batch. Only a durable manager has durable waits; the
        // `STDCHK_IO_LANE=off` escape hatch keeps the inline baseline.
        let lane = if opts.io_lane && metalog.is_some() {
            Some(Arc::new(IoLane::new()))
        } else {
            None
        };
        if let (Some(lane), Some(log)) = (&lane, &metalog) {
            log.set_io_lane(Arc::clone(lane));
        }
        let effects = Arc::new(MgrEffects {
            conns: OrderedMutex::new(ranks::MGR_CONNS, "mgr.conns", HashMap::new()),
            next_client: AtomicU64::new(CLIENT_NET_BASE),
            next_helper: AtomicU64::new(HELPER_NET_BASE),
            metalog: metalog.clone(),
            lane: lane.clone(),
            outbox: OrderedMutex::new(ranks::MGR_OUTBOX, "mgr.outbox", Outbox::default()),
        });
        // Ordered host: WAL appends are queued ahead of the replies they
        // guard, and only in-order batch execution makes that
        // write-ahead across racing connection threads.
        let host = NodeHost::new_ordered(manager, clock, effects);

        let reactor = match opts.backend {
            Backend::Threaded => {
                // The generic event loop replaces the bespoke maintenance
                // ticker: wakeups come from Manager::poll_timeout.
                spawn_node_loop("stdchk-mgr-node", Arc::clone(&host));
                None
            }
            Backend::Reactor => {
                // Maintenance fires from the reactor's tick instead; no
                // dedicated timer thread.
                let app = Arc::new(MgrApp {
                    host: OnceLock::new(),
                    handle: OnceLock::new(),
                    bound: OrderedMutex::new(ranks::MGR_BOUND, "mgr.bound", HashMap::new()),
                });
                let _ = app.host.set(Arc::clone(&host));
                let reactor = Reactor::new(
                    clock,
                    Arc::clone(&app) as Arc<dyn ReactorApp>,
                    ReactorConfig {
                        workers: opts.workers,
                    },
                )?;
                let _ = app.handle.set(reactor.handle().downgrade());
                reactor.handle().add_listener(
                    listener.try_clone()?,
                    0,
                    ConnOpts::server_default(opts.idle_timeout),
                )?;
                Some(reactor)
            }
        };

        // Snapshot installer: once the WAL tail grows past the configured
        // threshold, serialize the manager and compact the log. The
        // snapshot is captured inside `install_with` — under the log's
        // append lock — so it is guaranteed to cover every record in the
        // segments the install prunes; see `MetaLog::install_with` for
        // why the resulting fuzziness (effects of not-yet-appended
        // records) is safe to replay.
        let snapshotter = metalog.map(|metalog| {
            let host = Arc::clone(&host);
            thread::Builder::new()
                .name("stdchk-mgr-snapshot".into())
                .spawn(move || {
                    while !host.is_shutdown() {
                        if metalog.wants_snapshot() {
                            let res = metalog.install_with(|| host.with_node(|m| m.snapshot()));
                            if let Err(e) = res {
                                eprintln!("stdchk-mgr: snapshot install failed: {e}");
                            }
                        }
                        // Short slices so shutdown (which joins this
                        // thread to release the log LOCK) is quick.
                        for _ in 0..5 {
                            if host.is_shutdown() {
                                return;
                            }
                            thread::sleep(Duration::from_millis(20));
                        }
                    }
                })
                .expect("spawn snapshotter")
        });

        // Accept loop (threaded backend only; the reactor accepts through
        // its registered listener).
        if reactor.is_none() {
            let host = Arc::clone(&host);
            thread::Builder::new()
                .name("stdchk-mgr-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if host.is_shutdown() {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        let host = Arc::clone(&host);
                        thread::Builder::new()
                            .name("stdchk-mgr-conn".into())
                            .spawn(move || serve_conn(host, stream))
                            .expect("spawn conn");
                    }
                })
                .expect("spawn accept");
        }

        Ok(ManagerServer {
            host,
            addr,
            reactor,
            lane,
            snapshotter: OrderedMutex::new(ranks::MGR_SNAPSHOTTER, "mgr.snapshotter", snapshotter),
        })
    }

    /// The bound address clients and benefactors dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current manager counters.
    pub fn stats(&self) -> ManagerStats {
        self.host.with_node(|m| m.stats())
    }

    /// Metadata-WAL records appended since the last installed snapshot
    /// (`None` for a volatile manager). Tests observe snapshot cadence
    /// with this.
    pub fn meta_wal_tail(&self) -> Option<u64> {
        self.host
            .effects()
            .metalog
            .as_ref()
            .map(|m| m.records_since_snapshot())
    }

    /// The metadata WAL's [`SyncDelay`] fault-injection handle (`None`
    /// for a volatile manager). Test/bench instrumentation: inject an
    /// fsync delay or failure into the WAL flusher to observe how disk
    /// tails propagate (or, with the I/O lane, don't) to unrelated
    /// connections.
    pub fn meta_sync_faults(&self) -> Option<SyncDelay> {
        self.host
            .effects()
            .metalog
            .as_ref()
            .map(|m| m.sync_faults())
    }

    /// Cumulative wire-dedup ledger (offered/wanted chunks, reused /
    /// delta / full bytes). Durable managers rebuild it from `Dedup`
    /// WAL records on restart.
    pub fn dedup_totals(&self) -> stdchk_core::DedupTotals {
        self.host.with_node(|m| m.dedup_totals())
    }

    /// Online benefactor count (for tests and examples).
    pub fn online_benefactors(&self) -> usize {
        self.host.with_node(|m| m.online_benefactors())
    }

    /// Runs the manager's metadata invariant audit.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        self.host.with_node(|m| m.check_invariants());
    }

    /// Stops accepting and ticking. Existing connection threads exit as
    /// their sockets close. Joins the snapshotter so a durable manager's
    /// log directory `LOCK` is released promptly for a successor (the
    /// last straggler is any connection thread still draining its
    /// `Arc`s; restart paths retry briefly on `AddrInUse`).
    pub fn shutdown(&self) {
        self.host.shutdown();
        if let Some(reactor) = &self.reactor {
            reactor.shutdown();
        }
        // Unblock the threaded accept loop.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.host.effects().conns.lock().drain() {
            conn.shutdown();
        }
        if let Some(h) = self.snapshotter.lock().take() {
            let _ = h.join();
        }
        // Drain the I/O lane last: the MetaLog (and its flusher, which
        // the queued waits depend on) is still alive — it drops with the
        // effects, after this returns.
        if let Some(lane) = &self.lane {
            lane.shutdown();
        }
    }
}

impl Drop for ManagerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection: a small inbound handshake binds the peer in the
/// registry (real id, client id, or synthetic helper id — every connection
/// gets one), then every message is delivered through the generic host.
fn serve_conn(host: Arc<NodeHost<Manager, Arc<MgrEffects>>>, stream: TcpStream) {
    // Bound outbound writes: the manager's effects execute in order, so a
    // peer that stops draining its socket must time out instead of
    // stalling the whole reply pipeline behind its full buffer.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let sender = Sender::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let Ok(reader) = sender.reader() else { return };
    let link = Link::Thread(sender);

    // Handshake state: every id this connection was bound under. A helper
    // id can later be joined by the real node id a heartbeat announces; the
    // last entry is the current peer identity, and all of them are unbound
    // when the connection dies.
    let mut bound_ids: Vec<NodeId> = Vec::new();
    {
        let host = Arc::clone(&host);
        let link = link.clone();
        let bound = &mut bound_ids;
        // stdchk-allow(no-blocking-on-pump): threaded backend per-connection reader thread
        read_loop(reader, move |msg| {
            if let Some((from, msg)) = route_inbound(host.effects(), bound, &link, msg) {
                host.deliver(from, msg);
            }
        });
    }
    // Unbind every identity this connection held so the registry never
    // keeps a handle to a dead socket.
    for id in bound_ids.drain(..) {
        host.effects().unbind_if(id, &link);
    }
}
