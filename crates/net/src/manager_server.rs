//! The metadata manager as a TCP server.
//!
//! Thread-per-connection around the sans-IO [`Manager`] state machine. A
//! connection registry keyed by node id routes manager-initiated messages
//! (replication commands, deferred pessimistic commit acks, chunk deletions)
//! to the right socket; everything else flows back on the connection that
//! carried the request.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;

use stdchk_core::{Manager, ManagerStats, PoolConfig};
use stdchk_proto::ids::NodeId;
use stdchk_proto::msg::{Msg, Role};

use crate::conn::{read_loop, Clock, Sender};

/// Base of the per-connection client node-id namespace (far above any
/// benefactor id the manager will ever assign).
pub const CLIENT_NET_BASE: u64 = 1 << 48;

struct MgrState {
    mgr: Mutex<Manager>,
    clock: Clock,
    conns: Mutex<HashMap<NodeId, Sender>>,
    next_client: AtomicU64,
    shutdown: AtomicBool,
}

impl MgrState {
    fn route(&self, origin: Option<(NodeId, &Sender)>, sends: Vec<stdchk_core::Send>) {
        for s in sends {
            let sent = match origin {
                Some((from, conn)) if s.to == from => conn.send(&s.msg).is_ok(),
                _ => match self.conns.lock().get(&s.to) {
                    Some(conn) => conn.send(&s.msg).is_ok(),
                    None => false,
                },
            };
            let _ = sent; // unreachable peers are soft-state; timers recover
        }
    }
}

/// A running manager server.
pub struct ManagerServer {
    state: Arc<MgrState>,
    addr: SocketAddr,
}

impl std::fmt::Debug for ManagerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagerServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ManagerServer {
    /// Binds `listen` (e.g. `"127.0.0.1:0"`) and starts serving.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind.
    pub fn spawn(listen: &str, cfg: PoolConfig) -> io::Result<ManagerServer> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(MgrState {
            mgr: Mutex::new(Manager::new(cfg)),
            clock: Clock::new(),
            conns: Mutex::new(HashMap::new()),
            next_client: AtomicU64::new(CLIENT_NET_BASE),
            shutdown: AtomicBool::new(false),
        });

        // Maintenance ticker.
        {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("stdchk-mgr-tick".into())
                .spawn(move || loop {
                    if state.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    thread::sleep(Duration::from_millis(100));
                    let now = state.clock.now();
                    let sends = state.mgr.lock().tick(now);
                    state.route(None, sends);
                })
                .expect("spawn ticker");
        }

        // Accept loop.
        {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("stdchk-mgr-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if state.shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        let state = Arc::clone(&state);
                        thread::Builder::new()
                            .name("stdchk-mgr-conn".into())
                            .spawn(move || serve_conn(state, stream))
                            .expect("spawn conn");
                    }
                })
                .expect("spawn accept");
        }

        Ok(ManagerServer { state, addr })
    }

    /// The bound address clients and benefactors dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current manager counters.
    pub fn stats(&self) -> ManagerStats {
        self.state.mgr.lock().stats()
    }

    /// Online benefactor count (for tests and examples).
    pub fn online_benefactors(&self) -> usize {
        self.state.mgr.lock().online_benefactors()
    }

    /// Runs the manager's metadata invariant audit.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        self.state.mgr.lock().check_invariants();
    }

    /// Stops accepting and ticking. Existing connection threads exit as
    /// their sockets close.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.state.conns.lock().drain() {
            conn.shutdown();
        }
    }
}

impl Drop for ManagerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_conn(state: Arc<MgrState>, stream: TcpStream) {
    let sender = Sender::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let Ok(reader) = sender.reader() else { return };

    // Handshake: learn who is on the other end. The slot is shared with the
    // post-loop cleanup.
    let peer_slot: Arc<Mutex<Option<NodeId>>> = Arc::new(Mutex::new(None));
    let peer_slot2 = Arc::clone(&peer_slot);
    let state2 = Arc::clone(&state);
    let sender2 = sender.clone();
    read_loop(reader, move |msg| {
        let now = state2.clock.now();
        let mut peer_guard = peer_slot2.lock();
        let peer = *peer_guard;
        match (&msg, peer) {
            (Msg::Hello { role: Role::Client, .. }, None) => {
                let id = NodeId(state2.next_client.fetch_add(1, Ordering::Relaxed));
                *peer_guard = Some(id);
                state2.conns.lock().insert(id, sender2.clone());
                // Tell the client its pool identity.
                let _ = sender2.send(&Msg::Hello {
                    role: Role::Manager,
                    node: id,
                });
            }
            (Msg::Hello { node, .. }, None) => {
                // Benefactor (or manager peer) announcing an existing id.
                if *node != NodeId(0) {
                    *peer_guard = Some(*node);
                    state2.conns.lock().insert(*node, sender2.clone());
                }
            }
            _ => {
                let from = peer.unwrap_or(NodeId(0));
                let sends = state2.mgr.lock().handle_msg(from, msg.clone(), now);
                // A join assigns the benefactor's node id: bind this conn
                // and deliver the JoinOk here — the joiner had no routable
                // id when the request was processed.
                if let Msg::JoinRequest { .. } = msg {
                    for s in &sends {
                        if let Msg::JoinOk { node, .. } = s.msg {
                            *peer_guard = Some(node);
                            state2.conns.lock().insert(node, sender2.clone());
                            let _ = sender2.send(&s.msg);
                        }
                    }
                    return;
                }
                // A heartbeat from a not-yet-bound conn also binds it
                // (manager restart: benefactors keep their old ids).
                if let Msg::Heartbeat { node, .. } = msg {
                    if peer_guard.is_none() {
                        *peer_guard = Some(node);
                        state2.conns.lock().insert(node, sender2.clone());
                    }
                }
                // Replies addressed to `from` always return on this
                // connection — including unbound helper connections whose
                // `from` is the placeholder NodeId(0).
                state2.route(Some((from, &sender2)), sends);
            }
        }
    });
    let bound = *peer_slot.lock();
    if let Some(id) = bound {
        state.conns.lock().remove(&id);
    }
}
