//! The metadata manager as a TCP server.
//!
//! Thread-per-connection around the sans-IO [`Manager`], driven entirely
//! through the unified [`Node`](stdchk_core::Node) API by the generic
//! [`NodeHost`] event loop: reader threads call `deliver`, the shared
//! [`run_node`](crate::run_node) loop fires maintenance from `poll_timeout`, and the only
//! manager-specific code left is [`MgrEffects`] — a connection registry
//! that knows how to transmit.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

use stdchk_core::node::{Action, Completion};
use stdchk_core::{Manager, ManagerStats, PoolConfig};
use stdchk_proto::ids::NodeId;
use stdchk_proto::msg::{Msg, Role};

use crate::conn::{read_loop, Clock, Sender};
use crate::driver::{spawn_node_loop, Effects, NodeHost};

/// Base of the per-connection client node-id namespace (far above any
/// benefactor id the manager will ever assign).
pub const CLIENT_NET_BASE: u64 = 1 << 48;

/// Base of the synthetic id namespace for anonymous helper connections
/// (pre-join benefactors, resolver sidebands). Every connection is bound in
/// the registry under *some* id so any pumping thread can route replies.
pub const HELPER_NET_BASE: u64 = 1 << 49;

/// Transmit-only effects for the manager: a registry of live connections
/// keyed by node id. The manager performs no disk or stage I/O.
pub struct MgrEffects {
    conns: Mutex<HashMap<NodeId, Sender>>,
    next_client: AtomicU64,
    next_helper: AtomicU64,
}

impl MgrEffects {
    fn bind(&self, node: NodeId, conn: &Sender) {
        self.conns.lock().insert(node, conn.clone());
    }

    /// Unbinds `node` only while it still points at `conn`: a reconnect may
    /// already have rebound the id to a fresh connection.
    fn unbind_if(&self, node: NodeId, conn: &Sender) {
        let mut conns = self.conns.lock();
        if conns.get(&node).is_some_and(|c| c.same_channel(conn)) {
            conns.remove(&node);
        }
    }
}

impl Effects for Arc<MgrEffects> {
    fn execute(&self, action: Action) -> Option<Completion> {
        let Action::Send { to, msg } = action else {
            unreachable!("manager only transmits");
        };
        let conn = self.conns.lock().get(&to).cloned();
        if let Some(conn) = conn {
            let _ = conn.send(&msg);
        }
        // Unreachable peers are dropped: they are soft-state; their timers
        // re-register and re-request.
        None
    }
}

/// A running manager server.
pub struct ManagerServer {
    host: Arc<NodeHost<Manager, Arc<MgrEffects>>>,
    addr: SocketAddr,
}

impl std::fmt::Debug for ManagerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagerServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ManagerServer {
    /// Binds `listen` (e.g. `"127.0.0.1:0"`) and starts serving.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind.
    pub fn spawn(listen: &str, cfg: PoolConfig) -> io::Result<ManagerServer> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let effects = Arc::new(MgrEffects {
            conns: Mutex::new(HashMap::new()),
            next_client: AtomicU64::new(CLIENT_NET_BASE),
            next_helper: AtomicU64::new(HELPER_NET_BASE),
        });
        let host = NodeHost::new(Manager::new(cfg), Clock::new(), effects);

        // The generic event loop replaces the bespoke maintenance ticker:
        // wakeups come from Manager::poll_timeout.
        spawn_node_loop("stdchk-mgr-node", Arc::clone(&host));

        // Accept loop.
        {
            let host = Arc::clone(&host);
            thread::Builder::new()
                .name("stdchk-mgr-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if host.is_shutdown() {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        let host = Arc::clone(&host);
                        thread::Builder::new()
                            .name("stdchk-mgr-conn".into())
                            .spawn(move || serve_conn(host, stream))
                            .expect("spawn conn");
                    }
                })
                .expect("spawn accept");
        }

        Ok(ManagerServer { host, addr })
    }

    /// The bound address clients and benefactors dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current manager counters.
    pub fn stats(&self) -> ManagerStats {
        self.host.with_node(|m| m.stats())
    }

    /// Online benefactor count (for tests and examples).
    pub fn online_benefactors(&self) -> usize {
        self.host.with_node(|m| m.online_benefactors())
    }

    /// Runs the manager's metadata invariant audit.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        self.host.with_node(|m| m.check_invariants());
    }

    /// Stops accepting and ticking. Existing connection threads exit as
    /// their sockets close.
    pub fn shutdown(&self) {
        self.host.shutdown();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.host.effects().conns.lock().drain() {
            conn.shutdown();
        }
    }
}

impl Drop for ManagerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection: a small inbound handshake binds the peer in the
/// registry (real id, client id, or synthetic helper id — every connection
/// gets one), then every message is delivered through the generic host.
fn serve_conn(host: Arc<NodeHost<Manager, Arc<MgrEffects>>>, stream: TcpStream) {
    let sender = Sender::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let Ok(reader) = sender.reader() else { return };

    // Handshake state: every id this connection was bound under. A helper
    // id can later be joined by the real node id a heartbeat announces; the
    // last entry is the current peer identity, and all of them are unbound
    // when the connection dies. Shared with the post-loop cleanup.
    let bound_ids: Arc<Mutex<Vec<NodeId>>> = Arc::new(Mutex::new(Vec::new()));
    let bound_ids2 = Arc::clone(&bound_ids);
    let host2 = Arc::clone(&host);
    let sender2 = sender.clone();
    read_loop(reader, move |msg| {
        let mut ids = bound_ids2.lock();
        let peer = ids.last().copied();
        match (&msg, peer) {
            (
                Msg::Hello {
                    role: Role::Client, ..
                },
                None,
            ) => {
                let id = NodeId(host2.effects().next_client.fetch_add(1, Ordering::Relaxed));
                ids.push(id);
                host2.effects().bind(id, &sender2);
                // Tell the client its pool identity.
                let _ = sender2.send(&Msg::Hello {
                    role: Role::Manager,
                    node: id,
                });
            }
            (Msg::Hello { node, .. }, None) if *node != NodeId(0) => {
                // Benefactor (or manager peer) announcing an existing id.
                ids.push(*node);
                host2.effects().bind(*node, &sender2);
            }
            (Msg::Hello { .. }, None) => {
                // Anonymous connection (pre-join benefactor, resolver
                // sideband): bind a synthetic helper id so replies —
                // including the JoinOk that assigns the real id — route
                // through the registry from any thread.
                let id = NodeId(host2.effects().next_helper.fetch_add(1, Ordering::Relaxed));
                ids.push(id);
                host2.effects().bind(id, &sender2);
            }
            _ => {
                // A heartbeat binds the announcing node id (manager
                // restart: benefactors keep their old ids; post-join
                // benefactors upgrade their helper binding).
                if let Msg::Heartbeat { node, .. } = msg {
                    if peer != Some(node) {
                        ids.push(node);
                        host2.effects().bind(node, &sender2);
                    }
                }
                let from = match ids.last().copied() {
                    Some(id) => id,
                    None => {
                        // No Hello at all: bind a helper id on first use.
                        let id =
                            NodeId(host2.effects().next_helper.fetch_add(1, Ordering::Relaxed));
                        ids.push(id);
                        host2.effects().bind(id, &sender2);
                        id
                    }
                };
                drop(ids);
                host2.deliver(from, msg);
            }
        }
    });
    // Unbind every identity this connection held so the registry never
    // keeps a Sender to a dead socket.
    for id in bound_ids.lock().drain(..) {
        host.effects().unbind_if(id, &sender);
    }
}
