//! Virtual (tag-level) checkpoint traces for the simulator.
//!
//! Gigabyte-scale experiments can't allocate real images. A
//! [`VirtualTrace`] emits, per checkpoint, one *content tag* per chunk:
//! equal tags mean identical chunk content (they hash to equal
//! [`ChunkId`](stdchk_proto::ChunkId)s through the session's
//! `ChunkAssembler`). A configurable fraction of chunk positions keeps its
//! tag between versions, directly modelling the FsCH-detectable similarity
//! the paper measures on BLCR traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Emits per-chunk content tags for successive checkpoint images.
///
/// # Examples
///
/// ```
/// use stdchk_workloads::VirtualTrace;
///
/// let mut t = VirtualTrace::new(100, 0.8, 42);
/// let v1 = t.next_tags();
/// let v2 = t.next_tags();
/// let same = v1.iter().zip(&v2).filter(|(a, b)| a == b).count();
/// assert!((70..=90).contains(&same), "≈80% of chunks stable, got {same}");
/// ```
#[derive(Debug)]
pub struct VirtualTrace {
    chunks: usize,
    similarity: f64,
    rng: StdRng,
    next_fresh: u64,
    current: Vec<u64>,
}

impl VirtualTrace {
    /// Creates a trace of images `chunks` chunks long where, on average,
    /// `similarity` of each image's chunks are identical to the previous
    /// image's chunk at the same position.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= similarity <= 1.0` and `chunks > 0`.
    pub fn new(chunks: usize, similarity: f64, seed: u64) -> VirtualTrace {
        assert!(chunks > 0, "empty images are not a trace");
        assert!(
            (0.0..=1.0).contains(&similarity),
            "similarity must be a fraction"
        );
        VirtualTrace {
            chunks,
            similarity,
            rng: StdRng::seed_from_u64(seed),
            next_fresh: 1,
            current: Vec::new(),
        }
    }

    /// Chunks per image.
    pub fn chunks_per_image(&self) -> usize {
        self.chunks
    }

    /// Produces the next image's chunk tags.
    pub fn next_tags(&mut self) -> Vec<u64> {
        if self.current.is_empty() {
            // First image: all fresh.
            self.current = (0..self.chunks).map(|_| self.fresh()).collect();
            return self.current.clone();
        }
        let mut next = Vec::with_capacity(self.chunks);
        for i in 0..self.chunks {
            if self.rng.gen_bool(self.similarity) {
                next.push(self.current[i]);
            } else {
                let t = self.fresh();
                next.push(t);
            }
        }
        self.current = next.clone();
        next
    }

    fn fresh(&mut self) -> u64 {
        let t = self.next_fresh;
        self.next_fresh += 1;
        // Disperse so tags aren't accidentally equal across traces.
        stdchk_util::mix64(t ^ 0x5743_6864_7461_0001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_image_is_all_fresh_and_distinct() {
        let mut t = VirtualTrace::new(50, 0.9, 1);
        let v1 = t.next_tags();
        let set: std::collections::HashSet<_> = v1.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn zero_similarity_shares_nothing() {
        let mut t = VirtualTrace::new(64, 0.0, 2);
        let a = t.next_tags();
        let b = t.next_tags();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn full_similarity_shares_everything() {
        let mut t = VirtualTrace::new(64, 1.0, 3);
        let a = t.next_tags();
        let b = t.next_tags();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let collect = |seed| {
            let mut t = VirtualTrace::new(32, 0.5, seed);
            (t.next_tags(), t.next_tags())
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }
}
