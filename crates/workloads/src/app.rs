//! Application phase model: compute / checkpoint cycles.
//!
//! Table 5 of the paper runs BLAST end-to-end, alternating long compute
//! phases with checkpoint writes, and compares local-disk checkpointing
//! against stdchk. [`AppRun`] describes such a run; the simulator executes
//! it against either backend.

use stdchk_util::Dur;

/// A long-running application that computes and periodically checkpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppRun {
    /// Wall-clock compute time between checkpoints.
    pub compute_per_interval: Dur,
    /// Number of checkpoints over the run.
    pub checkpoints: usize,
    /// Bytes per checkpoint image.
    pub image_size: u64,
    /// Cross-version chunk similarity of the images (FsCH-detectable).
    pub similarity: f64,
}

impl AppRun {
    /// A scaled-down BLAST-like run: the paper used 30-minute intervals,
    /// ~280 MB images, and enough checkpoints to write 3.55 TB total.
    /// `scale` divides both the interval and the checkpoint count so the
    /// simulation completes quickly while preserving every ratio.
    pub fn blast_like(scale: u64) -> AppRun {
        let scale = scale.max(1);
        AppRun {
            compute_per_interval: Dur::from_secs(1800 / scale),
            checkpoints: (128 / scale as usize).max(8),
            image_size: 280 << 20,
            similarity: 0.69,
        }
    }

    /// Total bytes the application writes (before dedup).
    pub fn total_bytes(&self) -> u64 {
        self.image_size * self.checkpoints as u64
    }

    /// Total compute time (excludes checkpointing).
    pub fn total_compute(&self) -> Dur {
        self.compute_per_interval * self.checkpoints as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_scale_with_checkpoints() {
        let run = AppRun {
            compute_per_interval: Dur::from_secs(10),
            checkpoints: 5,
            image_size: 100,
            similarity: 0.5,
        };
        assert_eq!(run.total_bytes(), 500);
        assert_eq!(run.total_compute(), Dur::from_secs(50));
    }

    #[test]
    fn blast_like_preserves_ratios() {
        let a = AppRun::blast_like(1);
        let b = AppRun::blast_like(4);
        assert_eq!(a.image_size, b.image_size);
        assert!(b.compute_per_interval < a.compute_per_interval);
    }
}
