//! Byte-level checkpoint trace generators.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// What kind of checkpointing produced the images.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// Application-level checkpoints (BMS-like): dense, compressed state —
    /// every version is fresh bytes.
    ApplicationLevel,
    /// Library-level process images (BLCR-like).
    LibraryLevel {
        /// Fraction of the image identical to the previous version and at
        /// the same offsets (detectable by FsCH and CbCH).
        aligned_stable: f64,
        /// Fraction identical but shifted by growing insertions (detectable
        /// only by content-based chunking).
        shifted_stable: f64,
        /// Fraction of the stable regions consisting of zero pages
        /// (low-entropy memory such as untouched heap).
        zero_fraction: f64,
    },
    /// VM-level images (Xen-like): page permutation plus per-version
    /// metadata stamps interleaved into every page.
    VmLevel {
        /// Guest page size.
        page_size: usize,
        /// Distance between changing metadata stamps within a page.
        stamp_every: usize,
    },
}

impl TraceKind {
    /// The paper's BLCR-like trace at a 5-minute interval: FsCH detects
    /// ≈ 24 %, CbCH ≈ 84 % (Table 3).
    pub fn blcr_5min() -> TraceKind {
        TraceKind::LibraryLevel {
            aligned_stable: 0.25,
            shifted_stable: 0.60,
            zero_fraction: 0.2,
        }
    }

    /// The paper's BLCR-like trace at a 15-minute interval: more drift
    /// between images — FsCH ≈ 7 %, CbCH ≈ 70 %.
    pub fn blcr_15min() -> TraceKind {
        TraceKind::LibraryLevel {
            aligned_stable: 0.07,
            shifted_stable: 0.64,
            zero_fraction: 0.2,
        }
    }

    /// Xen-like VM checkpointing.
    pub fn xen() -> TraceKind {
        TraceKind::VmLevel {
            page_size: 4096,
            stamp_every: 512,
        }
    }
}

/// Configuration of a synthetic trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// Bytes per checkpoint image.
    pub image_size: usize,
    /// Number of checkpoint images.
    pub count: usize,
    /// Image structure.
    pub kind: TraceKind,
    /// Determinism seed.
    pub seed: u64,
}

/// Generates successive checkpoint images.
///
/// # Examples
///
/// ```
/// use stdchk_workloads::{TraceConfig, TraceGenerator, TraceKind};
///
/// let mut gen = TraceGenerator::new(TraceConfig {
///     image_size: 64 * 1024,
///     count: 3,
///     kind: TraceKind::blcr_5min(),
///     seed: 7,
/// });
/// let v1 = gen.next_image().unwrap();
/// let v2 = gen.next_image().unwrap();
/// assert_eq!(v1.len(), 64 * 1024);
/// // Successive library-level images share content...
/// assert_eq!(&v1[..1024], &v2[..1024]);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    version: usize,
    /// Stable content pools, fixed for the lifetime of the trace.
    aligned_pool: Vec<u8>,
    shifted_pool: Vec<u8>,
    rng: StdRng,
}

impl TraceGenerator {
    /// Creates a generator for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if fractions in `cfg.kind` exceed 1.0 combined.
    pub fn new(cfg: TraceConfig) -> TraceGenerator {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (mut aligned_pool, mut shifted_pool) = (Vec::new(), Vec::new());
        if let TraceKind::LibraryLevel {
            aligned_stable,
            shifted_stable,
            zero_fraction,
        } = cfg.kind
        {
            assert!(
                aligned_stable >= 0.0 && shifted_stable >= 0.0 && zero_fraction >= 0.0,
                "fractions must be non-negative"
            );
            assert!(
                aligned_stable + shifted_stable <= 1.0,
                "stable fractions exceed the image"
            );
            let a_len = (cfg.image_size as f64 * aligned_stable) as usize;
            let s_len = (cfg.image_size as f64 * shifted_stable) as usize;
            aligned_pool = stable_bytes(&mut rng, a_len, zero_fraction);
            shifted_pool = stable_bytes(&mut rng, s_len, zero_fraction);
        }
        TraceGenerator {
            cfg,
            version: 0,
            aligned_pool,
            shifted_pool,
            rng,
        }
    }

    /// The trace configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Produces the next checkpoint image, or `None` after `count` images.
    pub fn next_image(&mut self) -> Option<Vec<u8>> {
        if self.version >= self.cfg.count {
            return None;
        }
        let v = self.version;
        self.version += 1;
        Some(match self.cfg.kind {
            TraceKind::ApplicationLevel => {
                let mut img = vec![0u8; self.cfg.image_size];
                self.rng.fill_bytes(&mut img);
                img
            }
            TraceKind::LibraryLevel { .. } => self.library_image(v),
            TraceKind::VmLevel {
                page_size,
                stamp_every,
            } => self.vm_image(v, page_size, stamp_every),
        })
    }

    /// Remaining images as an iterator.
    pub fn images(mut self) -> impl Iterator<Item = Vec<u8>> {
        std::iter::from_fn(move || self.next_image())
    }

    fn library_image(&mut self, version: usize) -> Vec<u8> {
        // Layout: [aligned stable][insertion (grows with version)]
        //         [shifted stable][fresh tail]
        let size = self.cfg.image_size;
        let mut img = Vec::with_capacity(size + 64);
        img.extend_from_slice(&self.aligned_pool);
        // The insertion models heap growth/drift; it shifts everything after
        // it by a version-dependent, non-chunk-aligned amount.
        let insertion = 37 * (version + 1);
        let mut blob = vec![0u8; insertion];
        self.rng.fill_bytes(&mut blob);
        img.extend_from_slice(&blob);
        img.extend_from_slice(&self.shifted_pool);
        // Fresh tail fills up to the target size.
        if img.len() < size {
            let mut tail = vec![0u8; size - img.len()];
            self.rng.fill_bytes(&mut tail);
            img.extend_from_slice(&tail);
        }
        img.truncate(size);
        img
    }

    fn vm_image(&mut self, version: usize, page_size: usize, stamp_every: usize) -> Vec<u8> {
        let size = self.cfg.image_size;
        let pages = size.div_ceil(page_size).max(1);
        // Stable page bodies, deterministic per page index.
        let mut img = vec![0u8; pages * page_size];
        // Permute page order per version (Fisher-Yates over a derived rng so
        // the *bodies* stay identical while positions move).
        let mut order: Vec<usize> = (0..pages).collect();
        let mut perm_rng = StdRng::seed_from_u64(self.cfg.seed ^ (version as u64) << 32);
        for i in (1..pages).rev() {
            let j = (perm_rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for (slot, &page) in order.iter().enumerate() {
            let base = slot * page_size;
            let mut body_rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xbeef ^ page as u64);
            body_rng.fill_bytes(&mut img[base..base + page_size]);
            // Xen-style metadata: stamps that change every checkpoint,
            // interleaved through the page. They defeat chunk-level dedup at
            // any chunk size ≥ stamp_every.
            let mut off = 0;
            while off < page_size {
                let stamp = (version as u64) << 32 | page as u64 ^ off as u64;
                let end = (off + 8).min(page_size);
                img[base + off..base + end].copy_from_slice(&stamp.to_le_bytes()[..end - off]);
                off += stamp_every;
            }
        }
        img.truncate(size);
        img
    }
}

fn stable_bytes(rng: &mut StdRng, len: usize, zero_fraction: f64) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    // Carve zero pages (4 KiB) into the pool.
    let page = 4096;
    let zero_pages = ((len / page) as f64 * zero_fraction) as usize;
    for i in 0..zero_pages {
        // Spread them deterministically.
        let start = (i * 2 + 1) * page;
        if start + page <= len {
            v[start..start + page].fill(0);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn fsch_similarity(prev: &[u8], cur: &[u8], chunk: usize) -> f64 {
        let ids: HashSet<_> = prev
            .chunks(chunk)
            .map(stdchk_util::sha256::Sha256::digest)
            .collect();
        let dup: usize = cur
            .chunks(chunk)
            .filter(|c| ids.contains(&stdchk_util::sha256::Sha256::digest(c)))
            .map(|c| c.len())
            .sum();
        dup as f64 / cur.len() as f64
    }

    #[test]
    fn application_level_has_no_similarity() {
        let mut gen = TraceGenerator::new(TraceConfig {
            image_size: 256 * 1024,
            count: 3,
            kind: TraceKind::ApplicationLevel,
            seed: 1,
        });
        let a = gen.next_image().unwrap();
        let b = gen.next_image().unwrap();
        assert!(fsch_similarity(&a, &b, 1024) < 0.01);
    }

    #[test]
    fn library_level_aligned_fraction_matches_fsch() {
        let kind = TraceKind::LibraryLevel {
            aligned_stable: 0.25,
            shifted_stable: 0.60,
            zero_fraction: 0.0,
        };
        let mut gen = TraceGenerator::new(TraceConfig {
            image_size: 1 << 20,
            count: 3,
            kind,
            seed: 2,
        });
        let a = gen.next_image().unwrap();
        let b = gen.next_image().unwrap();
        let sim = fsch_similarity(&a, &b, 4096);
        assert!(
            (0.18..0.32).contains(&sim),
            "FsCH similarity {sim}, expected ≈0.25"
        );
    }

    #[test]
    fn library_level_images_have_exact_size_and_are_deterministic() {
        let cfg = TraceConfig {
            image_size: 123_456,
            count: 4,
            kind: TraceKind::blcr_5min(),
            seed: 3,
        };
        let imgs_a: Vec<_> = TraceGenerator::new(cfg).images().collect();
        let imgs_b: Vec<_> = TraceGenerator::new(cfg).images().collect();
        assert_eq!(imgs_a.len(), 4);
        for (a, b) in imgs_a.iter().zip(&imgs_b) {
            assert_eq!(a.len(), 123_456);
            assert_eq!(a, b, "same seed must reproduce the trace");
        }
    }

    #[test]
    fn vm_level_defeats_fixed_size_dedup() {
        let mut gen = TraceGenerator::new(TraceConfig {
            image_size: 512 * 1024,
            count: 2,
            kind: TraceKind::xen(),
            seed: 4,
        });
        let a = gen.next_image().unwrap();
        let b = gen.next_image().unwrap();
        assert!(
            fsch_similarity(&a, &b, 1024) < 0.01,
            "per-page stamps must break chunk dedup"
        );
    }

    #[test]
    fn count_limits_the_trace() {
        let mut gen = TraceGenerator::new(TraceConfig {
            image_size: 1024,
            count: 2,
            kind: TraceKind::ApplicationLevel,
            seed: 5,
        });
        assert!(gen.next_image().is_some());
        assert!(gen.next_image().is_some());
        assert!(gen.next_image().is_none());
    }

    #[test]
    #[should_panic]
    fn overfull_fractions_panic() {
        let _ = TraceGenerator::new(TraceConfig {
            image_size: 1024,
            count: 1,
            kind: TraceKind::LibraryLevel {
                aligned_stable: 0.7,
                shifted_stable: 0.7,
                zero_fraction: 0.0,
            },
            seed: 0,
        });
    }
}
