//! Synthetic checkpoint workloads for the stdchk evaluation.
//!
//! The paper evaluates incremental checkpointing on traces collected from
//! real applications (Table 2): a biomolecular simulation using
//! *application-level* checkpointing (BMS), BLAST checkpointed at the
//! *library level* with BLCR, and BLAST checkpointed at the *VM level* with
//! Xen. Those traces are proprietary and terabyte-scale, so this crate
//! generates synthetic equivalents whose **byte-level structure** is
//! controlled to match the properties the heuristics respond to:
//!
//! - [`TraceKind::ApplicationLevel`] — "user-controlled, ideally-compressed
//!   format": fresh incompressible bytes every version ⇒ no detectable
//!   similarity (paper: 0% for every heuristic).
//! - [`TraceKind::LibraryLevel`] — process images: a configurable fraction
//!   stays identical *and aligned* (FsCH-detectable), another fraction stays
//!   identical but *shifted* by growing insertions (only content-based
//!   chunking can find it), a fraction of zero pages models low-entropy
//!   memory, and the remainder is fresh.
//! - [`TraceKind::VmLevel`] — Xen-style images: pages are permuted every
//!   checkpoint and per-page metadata stamps change every version, which
//!   destroys similarity for both heuristics (paper's "surprising result").
//!
//! [`VirtualTrace`] is the simulator-side counterpart: instead of bytes it
//! emits per-chunk *content tags* with a target cross-version similarity, so
//! gigabyte-scale experiments (Figure 7, Table 5) run without allocating
//! data.

#![forbid(unsafe_code)]

pub mod app;
pub mod traces;
pub mod virt;

pub use app::AppRun;
pub use traces::{TraceConfig, TraceGenerator, TraceKind};
pub use virt::VirtualTrace;
