//! Property tests for the fluid-flow network: capacity conservation,
//! allocation work-conservation, and progress under arbitrary churn.

use proptest::prelude::*;

use stdchk_proto::ids::NodeId;
use stdchk_sim::FlowNet;
use stdchk_util::{Dur, Time};

const MBPS: f64 = 1e6;

#[derive(Clone, Debug)]
enum Churn {
    Add {
        src: u8,
        dst: u8,
        kb: u32,
        background: bool,
    },
    Settle {
        ms: u16,
    },
    Gate {
        node: u8,
        pct: u8,
    },
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    prop_oneof![
        (0u8..5, 0u8..5, 1u32..100_000, any::<bool>()).prop_map(|(src, dst, kb, background)| {
            Churn::Add {
                src,
                dst,
                kb,
                background,
            }
        }),
        (1u16..2000).prop_map(|ms| Churn::Settle { ms }),
        (0u8..5, 10u8..100).prop_map(|(node, pct)| Churn::Gate { node, pct }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rates_never_exceed_capacity_and_flows_always_finish(
        churn in proptest::collection::vec(arb_churn(), 1..40)
    ) {
        let nodes: Vec<NodeId> = (0..5).map(|i| NodeId(i + 1)).collect();
        let mut net: FlowNet<u32> = FlowNet::new(Some(400.0 * MBPS));
        for n in &nodes {
            net.set_node(*n, 100.0 * MBPS, 100.0 * MBPS);
        }
        let mut now = Time::ZERO;
        let mut added = 0u32;
        let mut finished = 0u32;
        let mut gates = [100.0 * MBPS; 5];
        for c in churn {
            match c {
                Churn::Add { src, dst, kb, background } => {
                    let (s, d) = (nodes[src as usize % 5], nodes[dst as usize % 5]);
                    if s == d {
                        continue;
                    }
                    net.settle(now);
                    net.add(s, d, kb as u64 * 1000, background, added);
                    added += 1;
                    net.recompute();
                }
                Churn::Settle { ms } => {
                    now += Dur::from_millis(ms as u64);
                    net.settle(now);
                    finished += net.take_finished().len() as u32;
                    net.recompute();
                }
                Churn::Gate { node, pct } => {
                    net.settle(now);
                    let cap = 100.0 * MBPS * pct as f64 / 100.0;
                    gates[node as usize % 5] = cap;
                    net.set_ingress(nodes[node as usize % 5], cap);
                    net.recompute();
                }
            }
            // Conservation: per-node egress/ingress and the fabric hold.
            let mut eg = [0.0f64; 5];
            let mut ing = [0.0f64; 5];
            let mut total = 0.0;
            for f in net.flows() {
                prop_assert!(f.rate >= -1e-6, "negative rate");
                eg[(f.src.as_u64() - 1) as usize] += f.rate;
                ing[(f.dst.as_u64() - 1) as usize] += f.rate;
                total += f.rate;
            }
            for (i, e) in eg.iter().enumerate() {
                prop_assert!(*e <= 100.0 * MBPS + 1.0, "egress {i} overcommitted: {e}");
            }
            for (i, v) in ing.iter().enumerate() {
                prop_assert!(*v <= gates[i] + 1.0, "ingress {i} overcommitted: {v}");
            }
            prop_assert!(total <= 400.0 * MBPS + 1.0, "fabric overcommitted: {total}");
            // Work conservation: if any flow exists, at least one has rate.
            if !net.is_empty() {
                prop_assert!(
                    net.flows().any(|f| f.rate > 0.0) || net.flows().all(|f| f.background),
                    "allocator stalled with foreground flows pending"
                );
            }
        }
        // Drain: with no further churn, everything completes.
        let mut guard = 0;
        while !net.is_empty() {
            guard += 1;
            prop_assert!(guard < 10_000, "drain diverged");
            let step = net
                .next_completion()
                .unwrap_or(Dur::from_millis(100));
            now += step;
            net.settle(now);
            finished += net.take_finished().len() as u32;
            net.recompute();
        }
        prop_assert_eq!(added, finished, "every flow must eventually finish");
    }
}
