//! Property test for durability under churn: for arbitrary seeded steady
//! churn traces (filtered so the fleet never loses nodes faster than the
//! detector + repair pipeline can restore redundancy), every committed
//! replication-≥2 version remains readable at trace end, and the manager's
//! metadata invariants — including chunk refcounts vs version references
//! and location-table consistency — hold.

use proptest::prelude::*;

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::scenarios::{chaos_bcfg, committed_versions, version_readable};
use stdchk_sim::{steady, ChurnEvent, ChurnKind, SimCluster, SimConfig, WriteJob};
use stdchk_util::{Dur, Time};

const MB: u64 = 1_000_000;
/// Trace horizon.
const SPAN: Dur = Dur::from_secs(60);
/// Minimum spacing between fleet departures: must exceed heartbeat-lease
/// expiry (6 s in the gige config) plus the worst-case rebuild of one
/// node's share at the default repair budgets, so redundancy is restored
/// before the next node can go down.
const DEPARTURE_GAP: Dur = Dur::from_secs(12);

fn sw(buffer: u64) -> SessionConfig {
    SessionConfig {
        protocol: WriteProtocol::SlidingWindow { buffer },
        ..SessionConfig::default()
    }
}

/// Enforces the survivable-churn guard on a raw steady trace: departures
/// come one at a time, at least [`DEPARTURE_GAP`] apart, and never in the
/// final stretch (where repair could still be in flight at trace end).
/// Returns are kept only for departures that were kept.
fn guard(trace: Vec<ChurnEvent>, fleet: usize) -> Vec<ChurnEvent> {
    let cutoff = Time::ZERO + (SPAN - Dur::from_secs(15));
    let mut online = vec![true; fleet];
    let mut last_departure: Option<Time> = None;
    let mut kept = Vec::new();
    for ev in trace {
        match ev.kind {
            ChurnKind::Leave | ChurnKind::Crash => {
                let spaced = last_departure.is_none_or(|t| ev.at.since(t) >= DEPARTURE_GAP);
                if online[ev.benefactor] && spaced && ev.at <= cutoff {
                    online[ev.benefactor] = false;
                    last_departure = Some(ev.at);
                    kept.push(ev);
                }
            }
            ChurnKind::Return => {
                if !online[ev.benefactor] {
                    online[ev.benefactor] = true;
                    kept.push(ev);
                }
            }
        }
    }
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn committed_versions_survive_guarded_churn(
        seed in any::<u64>(),
        fleet in 6usize..10,
        files in 1usize..4,
        file_mb in 8u64..17,
        replication in 2u32..4,
        mean_session_s in 40u64..81,
        crash_frac in 0.0f64..0.6,
    ) {
        let mut cfg = SimConfig::gige(fleet, 1);
        cfg.benefactor_cfg = Some(chaos_bcfg(&cfg.pool));
        let mut sim = SimCluster::new(cfg);
        for f in 0..files {
            let mut job = WriteJob::new(
                format!("/ckpt/p{f}.n0"),
                file_mb * MB,
                sw(16 << 20),
            );
            job.replication = replication;
            sim.submit(0, job);
        }
        let trace = guard(
            steady(
                fleet,
                Dur::from_secs(mean_session_s),
                Dur::from_secs(20),
                Dur::from_secs(10),
                crash_frac,
                SPAN,
                seed,
            ),
            fleet,
        );
        sim.schedule_trace(&trace);
        let report = sim.run(SPAN + Dur::from_secs(60));
        prop_assert!(report.results.iter().all(|r| !r.failed));
        for f in 0..files {
            let path = format!("/ckpt/p{f}.n0");
            let versions = committed_versions(&mut sim, &path);
            prop_assert!(!versions.is_empty(), "{path} must have committed");
            for version in versions {
                prop_assert!(
                    version_readable(&mut sim, &path, version),
                    "{path} v{version:?} lost under trace seed {seed} \
                     (fleet {fleet}, repl {replication}, {} churn events)",
                    trace.len()
                );
            }
        }
        sim.manager().check_invariants();
    }
}
