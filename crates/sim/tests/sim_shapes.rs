//! Validates that the simulator reproduces the paper's qualitative shapes:
//! protocol orderings, stripe-width saturation, fabric limits, dedup
//! savings, and determinism.

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::{SimCluster, SimConfig, WriteJob};
use stdchk_util::bytesize::to_mbps;
use stdchk_util::{Dur, Time};
use stdchk_workloads::VirtualTrace;

const MB: u64 = 1_000_000;

fn sw(buffer: u64) -> SessionConfig {
    SessionConfig {
        protocol: WriteProtocol::SlidingWindow { buffer },
        ..SessionConfig::default()
    }
}

fn iw(temp: u64) -> SessionConfig {
    SessionConfig {
        protocol: WriteProtocol::Incremental { temp_size: temp },
        ..SessionConfig::default()
    }
}

fn clw() -> SessionConfig {
    SessionConfig {
        protocol: WriteProtocol::CompleteLocal,
        ..SessionConfig::default()
    }
}

/// Runs one job and returns (OAB, ASB) in MB/s.
fn one_job(benefactors: usize, stripe: u32, size: u64, session: SessionConfig) -> (f64, f64) {
    let mut sim = SimCluster::new(SimConfig::gige(benefactors, 1));
    let mut job = WriteJob::new("/bench/file.n0", size, session);
    job.stripe_width = stripe;
    sim.submit(0, job);
    let report = sim.run(Dur::from_secs(1));
    assert_eq!(report.results.len(), 1);
    assert!(!report.results[0].failed);
    (to_mbps(report.mean_oab()), to_mbps(report.mean_asb()))
}

#[test]
fn sliding_window_saturates_gige_with_two_benefactors() {
    let (oab1, _) = one_job(1, 1, 256 * MB, sw(64 << 20));
    let (oab2, _) = one_job(2, 2, 256 * MB, sw(64 << 20));
    let (oab4, _) = one_job(4, 4, 256 * MB, sw(64 << 20));
    // Paper Fig. 2: two benefactors saturate the client's GigE NIC.
    assert!(
        oab1 < oab2,
        "stripe 1 ({oab1}) must trail stripe 2 ({oab2})"
    );
    assert!(
        (oab4 - oab2).abs() / oab2 < 0.15,
        "saturated by stripe 2: {oab2} vs {oab4}"
    );
    assert!(
        (95.0..125.0).contains(&oab2),
        "SW at stripe 2 should approach GigE: {oab2} MB/s"
    );
    // Stripe 1 is gated by the single benefactor's disk.
    assert!(
        (70.0..95.0).contains(&oab1),
        "SW at stripe 1 should be near disk speed: {oab1} MB/s"
    );
}

#[test]
fn clw_tracks_local_disk_and_serializes_push() {
    let (oab, asb) = one_job(4, 4, 256 * MB, clw());
    // Paper Fig. 2/3: CLW's OAB ≈ local I/O (86.2 MB/s); its ASB pays the
    // serialized push: 1/(1/86.2 + 1/117) ≈ 49.6 MB/s.
    assert!(
        (75.0..95.0).contains(&oab),
        "CLW OAB should track the local disk: {oab} MB/s"
    );
    assert!(
        (38.0..58.0).contains(&asb),
        "CLW ASB pays the serialized push: {asb} MB/s"
    );
}

#[test]
fn protocol_ordering_matches_figure_3() {
    let size = 256 * MB;
    let (_, asb_clw) = one_job(4, 4, size, clw());
    let (_, asb_iw) = one_job(4, 4, size, iw(16 << 20));
    let (_, asb_sw) = one_job(4, 4, size, sw(64 << 20));
    assert!(
        asb_clw < asb_iw && asb_iw <= asb_sw + 5.0,
        "ASB ordering CLW < IW <= SW violated: {asb_clw} / {asb_iw} / {asb_sw}"
    );
}

#[test]
fn iw_exceeds_sustained_disk_bandwidth() {
    // The paper's IW reaches ~110 MB/s OAB — above the 86.2 MB/s disk —
    // because temps die in the page cache.
    let (oab, _) = one_job(4, 4, 256 * MB, iw(16 << 20));
    assert!(
        oab > 95.0,
        "IW OAB should exceed disk speed via cache absorption: {oab} MB/s"
    );
}

#[test]
fn bigger_sw_buffers_help_oab() {
    // Paper Fig. 4: larger write buffers keep the pipeline full.
    let size = 256 * MB;
    let (small, _) = one_job(4, 4, size, sw(8 << 20));
    let (large, _) = one_job(4, 4, size, sw(256 << 20));
    assert!(
        large >= small,
        "larger buffer must not hurt OAB: {small} vs {large}"
    );
}

#[test]
fn ten_gige_client_scales_with_stripe_width() {
    // Paper Fig. 6: the 10 GbE client aggregates benefactor bandwidth and
    // does not saturate by 4 benefactors.
    let mut prev = 0.0;
    for stripe in [1usize, 2, 4] {
        let mut sim = SimCluster::new(SimConfig::ten_gige(stripe));
        let mut job = WriteJob::new("/f.n0", 256 * MB, sw(512 << 20));
        job.stripe_width = stripe as u32;
        sim.submit(0, job);
        let report = sim.run(Dur::from_secs(1));
        let oab = to_mbps(report.mean_oab());
        assert!(
            oab > prev * 1.5,
            "OAB must keep scaling: stripe {stripe} gives {oab} after {prev}"
        );
        prev = oab;
    }
    assert!(prev > 250.0, "4 benefactors should exceed 250 MB/s: {prev}");
}

#[test]
fn fabric_cap_limits_aggregate_throughput() {
    let mut cfg = SimConfig::gige(8, 4);
    cfg.fabric = Some(300e6);
    let mut sim = SimCluster::new(cfg);
    for c in 0..4 {
        for f in 0..2 {
            let mut job = WriteJob::new(format!("/c{c}/f{f}.n0"), 128 * MB, sw(64 << 20));
            job.start = Time::from_secs_f64(c as f64 * 0.5);
            sim.submit(c, job);
        }
    }
    let report = sim.run(Dur::from_secs(2));
    assert_eq!(report.results.len(), 8);
    // Peak persisted rate must respect the fabric.
    let peak = report
        .persisted_series
        .iter()
        .map(|(_, b)| *b)
        .max()
        .unwrap_or(0);
    assert!(
        peak as f64 <= 330e6,
        "peak {peak} exceeds the 300 MB/s fabric"
    );
    // And the aggregate should actually *reach* the fabric-limited regime.
    assert!(
        peak as f64 > 230e6,
        "aggregate should press against the fabric: {peak}"
    );
}

#[test]
fn dedup_with_virtual_trace_saves_transfers() {
    let mut sim = SimCluster::new(SimConfig::gige(4, 1));
    let chunk = 1u64 << 20;
    let chunks = 64usize;
    let mut trace = VirtualTrace::new(chunks, 0.7, 99);
    for v in 0..3 {
        let mut job = WriteJob::new(
            "/app/img",
            chunks as u64 * chunk,
            SessionConfig {
                dedup: true,
                ..sw(64 << 20)
            },
        );
        job.tags = Some(trace.next_tags());
        job.path = "/app/img".to_string();
        let _ = v;
        sim.submit(0, job);
    }
    let report = sim.run(Dur::from_secs(1));
    assert_eq!(report.results.len(), 3);
    let first = &report.results[0].stats;
    assert_eq!(first.bytes_deduped, 0, "first version is all fresh");
    for r in &report.results[1..] {
        let ratio = r.stats.bytes_deduped as f64 / r.stats.bytes_written as f64;
        assert!(
            (0.55..0.85).contains(&ratio),
            "≈70% of bytes should dedup: {ratio}"
        );
    }
    // The paper's point (Fig. 7): dedup trades write-path hashing for a
    // large reduction in storage/network effort. OAB stays hash-bound and
    // roughly flat; bytes shipped drop with the similarity ratio.
    let v1 = &report.results[0].stats;
    let v2 = &report.results[1].stats;
    assert!(
        (v2.bytes_stored as f64) < 0.5 * v1.bytes_stored as f64,
        "dedup must slash shipped bytes: {} vs {}",
        v2.bytes_stored,
        v1.bytes_stored
    );
    assert!(
        v2.oab().unwrap() > 0.9 * v1.oab().unwrap(),
        "OAB must not regress under dedup"
    );
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = SimCluster::new(SimConfig::gige(6, 2));
        for c in 0..2 {
            for f in 0..3 {
                let mut job = WriteJob::new(format!("/d{c}/f{f}.n0"), 64 * MB, sw(32 << 20));
                job.stripe_width = 3;
                job.replication = 2;
                sim.submit(c, job);
            }
        }
        let report = sim.run(Dur::from_secs(5));
        (
            report.end,
            report
                .results
                .iter()
                .map(|r| (r.path.clone(), r.stats.done_at))
                .collect::<Vec<_>>(),
            report.persisted_series,
        )
    };
    assert_eq!(run(), run(), "same configuration must replay identically");
}

#[test]
fn replication_happens_in_background_after_optimistic_close() {
    let mut sim = SimCluster::new(SimConfig::gige(4, 1));
    let mut job = WriteJob::new("/rep/f.n0", 64 * MB, sw(64 << 20));
    job.replication = 2;
    sim.submit(0, job);
    let report = sim.run(Dur::from_secs(30));
    // All data eventually persisted twice: 2 × 64 MB.
    let total: u64 = report.persisted_series.iter().map(|(_, b)| b).sum();
    assert!(
        total >= 2 * 64 * MB,
        "replication should double persisted bytes: {total}"
    );
    // One copy per distinct chunk: ceil(64 MB / 1 MiB).
    let chunks = (64 * MB).div_ceil(1 << 20);
    assert_eq!(report.manager_stats.replication_copies, chunks);
}

#[test]
fn pessimistic_write_completes_later_than_optimistic() {
    let run = |pessimistic: bool| {
        let mut sim = SimCluster::new(SimConfig::gige(4, 1));
        let mut job = WriteJob::new(
            "/sem/f.n0",
            64 * MB,
            SessionConfig {
                pessimistic,
                ..sw(64 << 20)
            },
        );
        job.replication = 2;
        sim.submit(0, job);
        let report = sim.run(Dur::from_secs(30));
        report.results[0].stats.done_at.expect("done").as_secs_f64()
    };
    let optimistic = run(false);
    let pessimistic = run(true);
    assert!(
        pessimistic > optimistic * 1.2,
        "pessimistic close must wait for replication: {optimistic} vs {pessimistic}"
    );
}

#[test]
fn metadata_wal_charges_commit_latency_without_changing_outcomes() {
    let run = |meta_log: bool| {
        let mut cfg = SimConfig::gige(4, 1);
        cfg.meta_log = meta_log;
        // Exaggerate the per-record cost so the gating is visible even on
        // a short run (the default is tens of microseconds).
        cfg.meta_op_overhead = Dur::from_millis(5);
        let mut sim = SimCluster::new(cfg);
        for i in 0..4 {
            let mut job = WriteJob::new(format!("/wal/f{i}.n0"), 8 * MB, sw(16 << 20));
            job.stripe_width = 2;
            sim.submit(0, job);
        }
        let report = sim.run(Dur::from_secs(1));
        assert_eq!(report.results.len(), 4);
        assert!(report.results.iter().all(|r| !r.failed));
        (report.manager_stats.commits, report.end)
    };
    let (commits_off, end_off) = run(false);
    let (commits_on, end_on) = run(true);
    // Durability changes latency, never outcomes.
    assert_eq!(commits_off, commits_on);
    assert!(
        end_on >= end_off,
        "WAL appends must not make the run finish earlier: {end_off} vs {end_on}"
    );
}
