//! Chaos scenario suite: fleet churn driven through the real state
//! machines, asserting durability (no committed version loses its last
//! live replica) and bounded victim ingest latency under rate-limited
//! repair — plus the heartbeat-expiry edge cases around returning nodes
//! and dying repair sources.

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::scenarios::{
    chaos_bcfg, churn_departure, committed_versions, live_replicas, version_readable,
};
use stdchk_sim::{steady, ChurnKind, SimCluster, SimConfig, WriteJob};
use stdchk_util::{Dur, Time};

const MB: u64 = 1_000_000;

fn sw(buffer: u64) -> SessionConfig {
    SessionConfig {
        protocol: WriteProtocol::SlidingWindow { buffer },
        ..SessionConfig::default()
    }
}

/// The acceptance A/B: a seeded 30%-fleet correlated departure. With the
/// repair scheduler on, no committed replication-3 version loses its last
/// live replica and the victim writer's ingest p99 stays within 5× the
/// calm baseline; the unthrottled FIFO baseline demonstrably violates that
/// bound (its rebuild storm floods survivor disks and gates their NICs).
#[test]
fn correlated_departure_survives_with_bounded_victim_tail() {
    let calm = churn_departure(true, false);
    let sched = churn_departure(true, true);
    let fifo = churn_departure(false, true);
    println!("{}", calm.summary);
    println!("{}", sched.summary);
    println!("{}", fifo.summary);
    println!(
        "victim p99: calm={:?} sched={:?} fifo={:?}",
        calm.victim_p99, sched.victim_p99, fifo.victim_p99
    );
    println!(
        "victim max: calm={:?} sched={:?} fifo={:?} done: calm={:?} sched={:?} fifo={:?} copies: {} {} {}",
        calm.victim_max, sched.victim_max, fifo.victim_max,
        calm.victim_done, sched.victim_done, fifo.victim_done,
        calm.replication_copies, sched.replication_copies, fifo.replication_copies,
    );
    assert!(!calm.victim_failed && !sched.victim_failed && !fifo.victim_failed);
    assert!(calm.audited_versions >= 7 && calm.lost_versions == 0);

    // Durability: every committed replication-3 version stays readable.
    assert_eq!(
        sched.lost_versions, 0,
        "scheduler run lost {}/{} committed versions",
        sched.lost_versions, sched.audited_versions
    );
    // Repair actually ran and finished.
    assert!(sched.backlog_peak > 0, "departure must queue repairs");
    assert!(sched.repair_cleared_at.is_some());

    // Ingest tail: bounded under the scheduler, unbounded without it.
    let bound = calm.victim_p99 * 5;
    assert!(
        sched.victim_p99 <= bound,
        "scheduled repair must keep the victim p99 within 5x calm: {:?} vs calm {:?}",
        sched.victim_p99,
        calm.victim_p99
    );
    assert!(
        fifo.victim_p99 > bound,
        "unthrottled repair should blow the 5x bound: {:?} vs calm {:?}",
        fifo.victim_p99,
        calm.victim_p99
    );
}

/// Heartbeat-expiry edge case: a benefactor leaves long enough for its
/// lease to expire and repairs to be queued, then returns *while the
/// rebuild is still mostly queued* (repair budgets are starved to pin it
/// in the queue). Its first GC report re-learns the locations, which must
/// cancel the queued repairs instead of double-replicating its chunks.
#[test]
fn returning_benefactor_cancels_queued_repairs() {
    let mut cfg = SimConfig::gige(4, 1);
    cfg.pool.repair_rate_source = 2_000_000;
    cfg.pool.repair_rate_fleet = 2_000_000;
    cfg.pool.repair_burst = 2_000_000;
    cfg.benefactor_cfg = Some(chaos_bcfg(&cfg.pool));
    let mut sim = SimCluster::new(cfg);
    let mut job = WriteJob::new("/ckpt/bounce.n0", 48 * MB, sw(16 << 20));
    job.replication = 2;
    sim.submit(0, job);
    // Initial replication (48 copies at 2 MB/s) finishes by ~26 s; the
    // node leaves after that, its lease expires at ~36 s, and it returns
    // a few seconds into the starved rebuild.
    sim.schedule_churn(Time::from_secs(30), 0, ChurnKind::Leave);
    sim.schedule_churn(Time::from_secs(40), 0, ChurnKind::Return);
    let report = sim.run(Dur::from_secs(90));
    assert!(report.results.iter().all(|r| !r.failed));

    // The departure queued repairs...
    assert!(
        report.metrics.backlog_peak() > 0,
        "expiry must queue repairs for the departed node's chunks"
    );
    // ...but the return cancelled the queued remainder: total copies stay
    // well below initial replication (48) plus a full rebuild of the
    // node's ~24-chunk share.
    let copies = report.manager_stats.replication_copies;
    assert!(
        copies < 48 + 20,
        "queued repairs must be cancelled on return, not re-run: {copies} copies"
    );
    assert_eq!(sim.manager().repair_backlog(), 0, "backlog must drain");
    for version in committed_versions(&mut sim, "/ckpt/bounce.n0") {
        assert!(version_readable(&mut sim, "/ckpt/bounce.n0", version));
    }
    sim.manager().check_invariants();
}

/// Heartbeat-expiry edge case: a repair source dies before serving its
/// queued copies. The orphaned jobs must be re-planned against surviving
/// holders — every chunk of every committed version ends back at its full
/// replica target on online nodes, with the dead node gone from the
/// location table.
#[test]
fn repair_survives_source_expiry_midstream() {
    let mut cfg = SimConfig::gige(6, 1);
    cfg.pool.repair_rate_source = 2_000_000;
    cfg.pool.repair_rate_fleet = 2_000_000;
    cfg.pool.repair_burst = 2_000_000;
    cfg.benefactor_cfg = Some(chaos_bcfg(&cfg.pool));
    let mut sim = SimCluster::new(cfg);
    let path = "/ckpt/srcdeath.n0";
    let mut job = WriteJob::new(path, 24 * MB, sw(16 << 20));
    job.replication = 3;
    sim.submit(0, job);
    // The prioritized queue replicates breadth-first (fewest live replicas
    // first), so by t=16 s (~30 of 48 copies at 2 MB/s) every chunk has a
    // second holder — then one node crashes, orphaning whatever jobs were
    // still queued against it as a source and wiping its chunks.
    sim.schedule_churn(Time::from_secs(16), 0, ChurnKind::Crash);
    let report = sim.run(Dur::from_secs(150));
    assert!(report.results.iter().all(|r| !r.failed));

    let versions = committed_versions(&mut sim, path);
    assert!(!versions.is_empty());
    for version in versions {
        let counts = live_replicas(&mut sim, path, version).expect("version view");
        assert!(!counts.is_empty());
        for (chunk, live) in counts {
            assert!(
                live >= 3,
                "chunk {chunk:?} must be rebuilt to its replica target on \
                 live nodes, has {live}"
            );
        }
    }
    assert_eq!(sim.manager().repair_backlog(), 0, "backlog must drain");
    sim.manager().check_invariants();
}

/// Scale smoke: a 1000-benefactor fleet under seeded steady churn. The
/// run must stay deterministic and consistent — sessions complete, the
/// churn tracker observes departures and produces a sane availability
/// estimate, and the metadata invariants hold at the end.
#[test]
fn thousand_node_fleet_steady_churn_smoke() {
    let mut cfg = SimConfig::gige(1000, 2);
    cfg.benefactor_cfg = Some(chaos_bcfg(&cfg.pool));
    let mut sim = SimCluster::new(cfg);
    for f in 0..4 {
        let mut job = WriteJob::new(format!("/ckpt/fleet{f}.n0"), 32 * MB, sw(16 << 20));
        job.replication = 3;
        sim.submit(f % 2, job);
    }
    let trace = steady(
        1000,
        Dur::from_secs(60),
        Dur::from_secs(30),
        Dur::from_secs(10),
        0.3,
        Dur::from_secs(90),
        7,
    );
    assert!(trace.len() > 500, "a 1000-node fleet should churn plenty");
    sim.schedule_trace(&trace);
    let report = sim.run(Dur::from_secs(120));
    assert!(report.results.iter().all(|r| !r.failed));

    let totals = sim.manager().churn_totals();
    assert!(
        totals.departures > 100,
        "the tracker must observe fleet departures: {}",
        totals.departures
    );
    let now = sim.now();
    let avail = sim.manager().availability_ppm(now);
    assert!(
        (1..=1_000_000).contains(&avail),
        "availability estimate out of range: {avail} ppm"
    );
    sim.manager().check_invariants();
}
