//! The discrete-event cluster simulator.
//!
//! [`SimCluster`] embeds the *real* stdchk state machines (`Manager`,
//! `Benefactor`, `WriteSession`) and drives them **uniformly through the
//! unified [`Node`] API** under virtual time: one dispatcher translates
//! every [`Action`] into simulated resources, one completion path feeds
//! [`Completion`]s back, and maintenance fires from each node's
//! `poll_timeout`. The resource model is calibrated to the paper's testbed:
//!
//! - **network**: fluid flows with max-min fair NIC sharing, optional fabric
//!   cap, strict foreground/background priority ([`crate::flownet`]);
//!   control messages travel with a fixed small latency;
//! - **disks**: FIFO byte-rate queues per node, plus a fixed per-record
//!   overhead on benefactor chunk I/O calibrated to the measured
//!   segment-log storage engine; a benefactor whose disk backlog exceeds a
//!   threshold *gates* its NIC ingress down to disk speed, modelling TCP
//!   backpressure from a storage-bound receiver;
//! - **application**: each write call costs the FUSE user-space crossing
//!   (per-call overhead + copy at memcpy rate, Table 1's calibration) plus
//!   the FsCH hashing rate when incremental checkpointing is on;
//! - **staging**: CLW stage writes go through the client disk; IW temps are
//!   absorbed by the page cache (sealed temps are pushed and deleted before
//!   writeback would persist them — the behaviour that lets the paper's IW
//!   exceed sustained disk bandwidth).
//!
//! Payloads are virtual ([`Payload::Virtual`]), so simulating the paper's
//! 70 GB scalability run allocates no data.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use stdchk_core::node::{Action, Completion, Node};
use stdchk_core::payload::Payload;
use stdchk_core::session::write::{
    OpenGrant, SessionConfig, SessionState, WriteProtocol, WriteSession, WriteStats,
};
use stdchk_core::{Benefactor, BenefactorConfig, Manager, PoolConfig, MANAGER_NODE};
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::Msg;
use stdchk_util::{mix64, Dur, Time};

use crate::flownet::FlowNet;
use crate::metrics::{Metrics, Percentiles};

/// Node id of the first benefactor; benefactor `i` is `BENEF_BASE + i`.
pub const BENEF_BASE: u64 = 1;
/// Node id of the first client.
pub const CLIENT_BASE: u64 = 10_000;

/// Simulated platform parameters. Rates are bytes/second.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of benefactor nodes.
    pub benefactors: usize,
    /// Number of client nodes.
    pub clients: usize,
    /// Benefactor NIC rate.
    pub benefactor_nic: f64,
    /// Benefactor disk rate.
    pub benefactor_disk: f64,
    /// Space contributed per benefactor.
    pub benefactor_space: u64,
    /// Client NIC rate.
    pub client_nic: f64,
    /// Client local-disk rate (CLW staging).
    pub client_disk: f64,
    /// Optional switch-fabric aggregate capacity.
    pub fabric: Option<f64>,
    /// One-way latency of control messages.
    pub control_latency: Dur,
    /// FUSE user-space crossing cost per write call (Table 1: ≈32 µs).
    pub fuse_per_call: Dur,
    /// Data copy rate of the FUSE write path.
    pub memcpy_rate: f64,
    /// FsCH hashing rate (charged on the write path when dedup is on).
    pub hash_rate: f64,
    /// Rolling-checksum delta-encode scan rate, charged on the write path
    /// when wire-level have/want negotiation is on (the client signs each
    /// outgoing chunk and scans near-miss chunks against the previous
    /// version's signatures). The negotiation's manager round-trips are
    /// charged separately and automatically: `OfferChunks`/`WantChunks`
    /// are control messages, so each batch costs 2× `control_latency`.
    pub delta_scan_rate: f64,
    /// Application write-call size (defaults to the chunk size).
    pub app_block: u32,
    /// User-space copy passes charged when a benefactor serves a chunk
    /// read onto the wire (`Action::Load` with `serve`). `0` models the
    /// zero-copy data path (`sendfile` straight from a sealed segment —
    /// `stdchk-net`'s default); `3` approximates the copying baseline
    /// (pread buffer → outbound flatten → socket write). Off by default so
    /// the paper-calibrated figures are unchanged.
    pub serve_copy_passes: u32,
    /// Fixed per-record cost of the benefactor storage engine, charged on
    /// every chunk store/load in addition to the byte transfer. Calibrated
    /// to the measured segment-log engine (`stdchk-net`'s `SegmentStore`):
    /// one record append plus the amortized share of a group-commit
    /// `sync_data` — tens of microseconds, not the milliseconds a
    /// file-per-chunk layout pays for create + fsync + rename.
    pub store_op_overhead: Dur,
    /// Model the manager's metadata write-ahead log (`stdchk-net`'s
    /// `MetaLog`): the manager state machine runs with its WAL enabled
    /// and every record occupies the manager's log disk, delaying the
    /// replies the record guards (durable-before-ack). Off by default so
    /// the paper-calibrated figures are unchanged.
    pub meta_log: bool,
    /// Fixed per-record cost of a metadata WAL append (the amortized
    /// group-commit share; same shape as [`SimConfig::store_op_overhead`]
    /// but for the tiny metadata records).
    pub meta_op_overhead: Dur,
    /// Byte rate of the manager's metadata log disk.
    pub manager_disk: f64,
    /// Disk backlog beyond which a benefactor gates its ingress.
    pub gate_on: Dur,
    /// Backlog below which the gate reopens.
    pub gate_off: Dur,
    /// Pool (manager) configuration.
    pub pool: PoolConfig,
    /// Benefactor state-machine knobs; `None` uses the testbed defaults
    /// (chaos scenarios tighten the GC cadence so returning nodes
    /// re-advertise their inventory quickly).
    pub benefactor_cfg: Option<BenefactorConfig>,
}

impl SimConfig {
    /// The paper's LAN testbed: GigE NICs (≈117 MB/s usable), 86.2 MB/s
    /// disks, 32 µs FUSE crossings (§V.A).
    pub fn gige(benefactors: usize, clients: usize) -> SimConfig {
        let pool = PoolConfig {
            heartbeat_every: Dur::from_secs(2),
            benefactor_timeout: Dur::from_secs(6),
            ..PoolConfig::default()
        };
        SimConfig {
            benefactors,
            clients,
            benefactor_nic: 117e6,
            benefactor_disk: 86.2e6,
            benefactor_space: 1 << 40,
            client_nic: 117e6,
            client_disk: 86.2e6,
            fabric: None,
            control_latency: Dur::from_micros(150),
            fuse_per_call: Dur::from_micros(32),
            memcpy_rate: 1.05e9,
            hash_rate: 110e6,
            delta_scan_rate: 400e6,
            app_block: pool.chunk_size,
            serve_copy_passes: 0,
            store_op_overhead: Dur::from_micros(60),
            meta_log: false,
            meta_op_overhead: Dur::from_micros(40),
            manager_disk: 86.2e6,
            gate_on: Dur::from_millis(150),
            gate_off: Dur::from_millis(50),
            pool,
            benefactor_cfg: None,
        }
    }

    /// The 10 Gbps testbed of §V.D: one fat client, SATA-disk benefactors
    /// behind 1 GbE.
    pub fn ten_gige(benefactors: usize) -> SimConfig {
        let mut cfg = SimConfig::gige(benefactors, 1);
        cfg.client_nic = 1_180e6;
        cfg.client_disk = 120e6;
        cfg.benefactor_disk = 85e6;
        cfg
    }
}

/// One write to run against the pool.
#[derive(Clone, Debug)]
pub struct WriteJob {
    /// stdchk path.
    pub path: String,
    /// Bytes to write.
    pub size: u64,
    /// Session configuration (protocol, dedup, semantics).
    pub session: SessionConfig,
    /// Stripe width to request.
    pub stripe_width: u32,
    /// Replica target.
    pub replication: u32,
    /// Earliest start time.
    pub start: Time,
    /// Ground-truth content tags, one per chunk (for dedup experiments);
    /// `None` means all-fresh content.
    pub tags: Option<Vec<u64>>,
}

impl WriteJob {
    /// A fresh-content job with default striping.
    pub fn new(path: impl Into<String>, size: u64, session: SessionConfig) -> WriteJob {
        WriteJob {
            path: path.into(),
            size,
            session,
            stripe_width: 4,
            replication: 1,
            start: Time::ZERO,
            tags: None,
        }
    }
}

/// What happens to a benefactor at a churn-trace transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// The node goes offline with its stored chunks intact (powered off,
    /// network partition). A later [`ChurnKind::Return`] brings the data
    /// back.
    Leave,
    /// The node goes offline *and* loses its stored chunks (disk wipe,
    /// reinstall). A later return rejoins it empty.
    Crash,
    /// The node comes back online and resumes heartbeating.
    Return,
}

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Client index that ran the job.
    pub client: usize,
    /// Path written.
    pub path: String,
    /// Session metrics (OAB/ASB windows, dedup savings).
    pub stats: WriteStats,
    /// Per-application-write-call latency percentiles (queueing included):
    /// the ingest-latency view a checkpointing application sees.
    pub ingest: Percentiles,
    /// True if the session failed instead of completing.
    pub failed: bool,
}

/// Everything a simulation run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-job results in completion order.
    pub results: Vec<JobResult>,
    /// Bytes persisted to benefactor disks per whole second of sim time.
    pub persisted_series: Vec<(u64, u64)>,
    /// Manager counters.
    pub manager_stats: stdchk_core::ManagerStats,
    /// Full metrics (latency percentiles, repair-backlog gauge, summary).
    pub metrics: Metrics,
    /// Virtual time at the end of the run.
    pub end: Time,
}

impl SimReport {
    /// Mean observed application bandwidth across successful jobs (B/s).
    pub fn mean_oab(&self) -> f64 {
        mean(self.results.iter().filter_map(|r| r.stats.oab()))
    }

    /// Mean achieved storage bandwidth across successful jobs (B/s).
    pub fn mean_asb(&self) -> f64 {
        mean(self.results.iter().filter_map(|r| r.stats.asb()))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

// ---------------------------------------------------------------- internals

#[derive(Clone, Copy, Debug, Default)]
struct Disk {
    rate: f64,
    /// Fixed per-operation cost on top of the byte transfer (zero for
    /// client staging, the storage-engine record overhead on benefactors).
    per_op: Dur,
    busy_until: Time,
}

impl Disk {
    fn schedule(&mut self, now: Time, bytes: u64) -> Time {
        let start = self.busy_until.max(now);
        let fin = start + self.per_op + Dur::for_bytes(bytes, self.rate);
        self.busy_until = fin;
        fin
    }

    fn backlog(&self, now: Time) -> Dur {
        self.busy_until.since(now)
    }
}

#[derive(Debug)]
struct BenefNode {
    sm: Benefactor,
    disk: Disk,
    gated: bool,
    /// False while churned out: inbound traffic, ticks, and disk
    /// completions are dropped, exactly as if the process were gone.
    online: bool,
    /// Earliest maintenance wakeup currently sitting in the event heap.
    next_tick: Time,
}

#[derive(Debug)]
struct ActiveWrite {
    job: WriteJob,
    session: WriteSession,
    written: u64,
    app_busy: bool,
    closed: bool,
    /// Completion instant of the previous write call (ingest-latency
    /// sampling: the gap to the next completion includes blocking).
    last_done: Time,
    lat: Percentiles,
}

#[derive(Debug)]
enum ClientActive {
    Opening { job: WriteJob, req: RequestId },
    Writing(Box<ActiveWrite>),
}

#[derive(Debug)]
struct ClientNode {
    node: NodeId,
    queue: VecDeque<WriteJob>,
    active: Option<ClientActive>,
    disk: Disk,
}

#[derive(Debug)]
struct FlowLoad {
    from: NodeId,
    to: NodeId,
    msg: Msg,
    /// `(client index, request)` to notify with `on_put_sent`.
    notify: Option<(usize, RequestId)>,
}

#[derive(Debug)]
enum DiskKind {
    BenefStore {
        bi: usize,
        op: u64,
        bytes: u64,
    },
    BenefLoad {
        bi: usize,
        op: u64,
        chunk: ChunkId,
        size: u32,
    },
    StageAppend {
        ci: usize,
        op: u64,
    },
    StageFetch {
        ci: usize,
        op: u64,
        size: u32,
    },
}

#[derive(Debug)]
enum Ev {
    MgrTick,
    BenefTick(usize),
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: Msg,
    },
    FlowCheck {
        gen: u64,
    },
    AppWrite {
        ci: usize,
        n: u32,
        tag: u64,
    },
    DiskDone(DiskKind),
    ClientStart {
        ci: usize,
    },
    Churn {
        bi: usize,
        kind: ChurnKind,
    },
    /// Synthesized transport failure for a client put (connection refused
    /// or reset by a churned-out target).
    PutFailed {
        ci: usize,
        req: RequestId,
    },
}

struct Sched {
    at: Time,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Addresses one simulated node for uniform `Node`-API dispatch.
#[derive(Clone, Copy, Debug)]
enum NodeRef {
    Mgr,
    Benef(usize),
    Client(usize),
}

/// The simulator. Build with [`SimCluster::new`], enqueue jobs with
/// [`SimCluster::submit`], execute with [`SimCluster::run`].
pub struct SimCluster {
    cfg: SimConfig,
    now: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<Sched>>,
    net: FlowNet<FlowLoad>,
    net_gen: u64,
    mgr: Manager,
    /// The manager's metadata-log disk (when `meta_log` is on).
    mgr_log: Disk,
    /// WAL appends ahead of this instant are not yet durable; manager
    /// replies queued behind them wait (group-commit ack gating).
    mgr_log_gate: Time,
    benefs: Vec<BenefNode>,
    bcfg: BenefactorConfig,
    clients: Vec<ClientNode>,
    metrics: Metrics,
    /// Client puts delivered to a benefactor but not yet acked, by target:
    /// when the target churns out these become `SendFailed` (TCP reset).
    unacked: HashMap<NodeId, HashMap<RequestId, usize>>,
    results: Vec<JobResult>,
    jobs_outstanding: usize,
    next_sid: u64,
    next_fresh_tag: u64,
    tick_stop: Option<Time>,
    mgr_next_tick: Time,
}

impl SimCluster {
    /// Builds a cluster: registers every node with the manager and the flow
    /// network, and schedules the periodic maintenance ticks.
    pub fn new(cfg: SimConfig) -> SimCluster {
        assert!(cfg.benefactors > 0, "a pool needs benefactors");
        assert!(cfg.clients > 0, "a pool needs clients");
        let mut net = FlowNet::new(cfg.fabric);
        let mut mgr = Manager::new(cfg.pool.clone());
        if cfg.meta_log {
            mgr.enable_wal();
        }
        let mut benefs = Vec::new();
        let bcfg = cfg.benefactor_cfg.clone().unwrap_or(BenefactorConfig {
            heartbeat_every: cfg.pool.heartbeat_every,
            gc_grace: Dur::from_secs(600),
            gc_min_interval: Dur::from_secs(30),
            // Short enough that repair copies stranded by a mid-transfer
            // departure retry within a chaos scenario's horizon.
            put_timeout: Dur::from_secs(15),
            reoffer_every: Dur::from_secs(10),
            stash_ttl: Dur::from_secs(3600),
        });
        for i in 0..cfg.benefactors {
            let id = NodeId(BENEF_BASE + i as u64);
            net.set_node(id, cfg.benefactor_nic, cfg.benefactor_nic);
            // Implicit registration (the manager adopts heartbeats).
            mgr.handle_msg(
                id,
                Msg::Heartbeat {
                    node: id,
                    free_space: cfg.benefactor_space,
                    total_space: cfg.benefactor_space,
                    addr: String::new(),
                },
                Time::ZERO,
            );
            benefs.push(BenefNode {
                sm: Benefactor::new(id, cfg.benefactor_space, bcfg.clone()),
                disk: Disk {
                    rate: cfg.benefactor_disk,
                    per_op: cfg.store_op_overhead,
                    busy_until: Time::ZERO,
                },
                gated: false,
                online: true,
                next_tick: Time::MAX,
            });
        }
        let mut clients = Vec::new();
        for i in 0..cfg.clients {
            let id = NodeId(CLIENT_BASE + i as u64);
            net.set_node(id, cfg.client_nic, cfg.client_nic);
            clients.push(ClientNode {
                node: id,
                queue: VecDeque::new(),
                active: None,
                disk: Disk {
                    rate: cfg.client_disk,
                    per_op: Dur::from_nanos(0),
                    busy_until: Time::ZERO,
                },
            });
        }
        let mgr_log = Disk {
            rate: cfg.manager_disk,
            per_op: cfg.meta_op_overhead,
            busy_until: Time::ZERO,
        };
        let mut sim = SimCluster {
            cfg,
            now: Time::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            net,
            net_gen: 0,
            mgr_log,
            mgr_log_gate: Time::ZERO,
            mgr,
            benefs,
            bcfg,
            clients,
            metrics: Metrics::default(),
            unacked: HashMap::new(),
            results: Vec::new(),
            jobs_outstanding: 0,
            next_sid: 1,
            next_fresh_tag: 1,
            tick_stop: None,
            mgr_next_tick: Time::MAX,
        };
        sim.schedule_next_timeout(NodeRef::Mgr);
        for i in 0..sim.benefs.len() {
            sim.schedule_next_timeout(NodeRef::Benef(i));
        }
        sim
    }

    /// Queues a job on client `client`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown client index or an SW buffer smaller than one
    /// chunk (which could never make progress).
    pub fn submit(&mut self, client: usize, job: WriteJob) {
        if let WriteProtocol::SlidingWindow { buffer } = job.session.protocol {
            assert!(
                buffer >= self.cfg.pool.chunk_size as u64,
                "SW buffer smaller than a chunk cannot progress"
            );
        }
        let start = job.start;
        let c = &mut self.clients[client];
        c.queue.push_back(job);
        self.jobs_outstanding += 1;
        if c.active.is_none() && c.queue.len() == 1 {
            self.schedule_at(start.max(self.now), Ev::ClientStart { ci: client });
        }
    }

    /// Runs until every job completes, keeps maintenance alive for `drain`
    /// afterwards (replication, GC), then returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the event queue empties while jobs are incomplete (a
    /// protocol deadlock — this is a correctness backstop for tests).
    pub fn run(&mut self, drain: Dur) -> SimReport {
        while let Some(Reverse(s)) = self.heap.pop() {
            debug_assert!(s.at >= self.now, "time went backwards");
            self.now = s.at;
            if self.jobs_outstanding == 0 && self.tick_stop.is_none() {
                self.tick_stop = Some(self.now + drain);
            }
            self.handle(s.ev);
        }
        assert!(
            self.jobs_outstanding == 0,
            "simulation deadlock: {} jobs incomplete at {} (clients: {:?})",
            self.jobs_outstanding,
            self.now,
            self.clients
                .iter()
                .map(|c| c.active.as_ref().map(|a| match a {
                    ClientActive::Opening { job, .. } => format!("opening {}", job.path),
                    ClientActive::Writing(w) => format!(
                        "{} written={} state={:?} writable={}",
                        w.job.path,
                        w.written,
                        w.session.state(),
                        w.session.writable()
                    ),
                }))
                .collect::<Vec<_>>()
        );
        SimReport {
            results: std::mem::take(&mut self.results),
            persisted_series: self.metrics.series(),
            manager_stats: self.mgr.stats(),
            metrics: self.metrics.clone(),
            end: self.now,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The embedded manager (metadata ground truth for assertions).
    pub fn manager(&self) -> &Manager {
        &self.mgr
    }

    /// Mutable manager access, for read-style queries (`GetFile`,
    /// `ListVersions`) driven directly by tests.
    pub fn manager_mut(&mut self) -> &mut Manager {
        &mut self.mgr
    }

    /// Whether benefactor `i` is currently churned in.
    pub fn benefactor_online(&self, i: usize) -> bool {
        self.benefs[i].online
    }

    /// Ground truth: does benefactor `i` actually hold `chunk`? (Bypasses
    /// the manager's location metadata — this is what durability
    /// assertions must check against.)
    pub fn benefactor_has(&self, i: usize, chunk: ChunkId) -> bool {
        self.benefs[i].sm.contains(chunk)
    }

    /// Number of benefactors in the fleet.
    pub fn benefactor_count(&self) -> usize {
        self.benefs.len()
    }

    /// Schedules one churn transition for benefactor `benefactor`.
    pub fn schedule_churn(&mut self, at: Time, benefactor: usize, kind: ChurnKind) {
        assert!(benefactor < self.benefs.len(), "unknown benefactor");
        self.schedule_at(
            at.max(self.now),
            Ev::Churn {
                bi: benefactor,
                kind,
            },
        );
    }

    /// Schedules a whole churn trace (see [`crate::churn`]).
    pub fn schedule_trace(&mut self, trace: &[crate::churn::ChurnEvent]) {
        for e in trace {
            self.schedule_churn(e.at, e.benefactor, e.kind);
        }
    }

    // ------------------------------------------------------------ scheduling

    fn schedule(&mut self, after: Dur, ev: Ev) {
        self.schedule_at(self.now + after, ev);
    }

    fn schedule_at(&mut self, at: Time, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(Sched {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn ticks_enabled(&self) -> bool {
        match self.tick_stop {
            None => true,
            Some(t) => self.now < t,
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::MgrTick => {
                self.mgr_next_tick = Time::MAX;
                self.mgr.handle_timeout(self.now);
                self.metrics
                    .note_backlog(self.now, self.mgr.repair_backlog());
                self.drive(NodeRef::Mgr);
                if self.ticks_enabled() {
                    self.schedule_next_timeout(NodeRef::Mgr);
                }
            }
            Ev::BenefTick(bi) => {
                self.benefs[bi].next_tick = Time::MAX;
                if !self.benefs[bi].online {
                    return; // churned out: the process isn't running
                }
                self.benefs[bi].sm.handle_timeout(self.now);
                self.drive(NodeRef::Benef(bi));
                if self.ticks_enabled() {
                    self.schedule_next_timeout(NodeRef::Benef(bi));
                }
            }
            Ev::Deliver { from, to, msg } => self.route(from, to, msg, None),
            Ev::FlowCheck { gen } => {
                if gen != self.net_gen {
                    return;
                }
                self.net.settle(self.now);
                let done = self.net.take_finished();
                for flow in done {
                    let load = flow.payload;
                    if self.benef_offline(load.to) {
                        // Target churned out mid-transfer: the connection
                        // resets instead of acking.
                        if let Some((ci, req)) = load.notify {
                            self.with_session(ci, |s, now| {
                                s.handle_completion(Completion::SendFailed { req }, now);
                            });
                        }
                        continue;
                    }
                    if self.benef_offline(load.from) {
                        continue; // sender died before the bytes landed
                    }
                    if let Some((ci, req)) = load.notify {
                        self.with_session(ci, |s, now| {
                            s.handle_completion(Completion::SendDone { req }, now);
                        });
                    }
                    self.route(load.from, load.to, load.msg, None);
                }
                self.reflow();
            }
            Ev::AppWrite { ci, n, tag } => self.app_write(ci, n, tag),
            Ev::DiskDone(kind) => self.disk_done(kind),
            Ev::ClientStart { ci } => self.client_start(ci),
            Ev::Churn { bi, kind } => self.apply_churn(bi, kind),
            Ev::PutFailed { ci, req } => {
                self.with_session(ci, |s, now| {
                    s.handle_completion(Completion::SendFailed { req }, now);
                });
            }
        }
    }

    /// Schedules the next maintenance wakeup for `nr` from its
    /// `poll_timeout` — timer coalescing instead of fixed-period ticking.
    /// Called after ticks *and* after message handling: an input may arm a
    /// deadline earlier than the wakeup already sitting in the heap.
    fn schedule_next_timeout(&mut self, nr: NodeRef) {
        let (deadline, scheduled, ev) = match nr {
            NodeRef::Mgr => (self.mgr.poll_timeout(), self.mgr_next_tick, Ev::MgrTick),
            NodeRef::Benef(bi) => (
                self.benefs[bi].sm.poll_timeout(),
                self.benefs[bi].next_tick,
                Ev::BenefTick(bi),
            ),
            NodeRef::Client(_) => return, // sessions have no timers
        };
        if let Some(t) = deadline {
            // The +1ns nudge steps over strict `<` expiry comparisons so a
            // deadline can never reschedule itself at the same instant.
            let at = t.max(self.now) + Dur::from_nanos(1);
            if at >= scheduled {
                return; // an equal-or-earlier wakeup is already queued
            }
            match nr {
                NodeRef::Mgr => self.mgr_next_tick = at,
                NodeRef::Benef(bi) => self.benefs[bi].next_tick = at,
                NodeRef::Client(_) => unreachable!(),
            }
            self.schedule_at(at, ev);
        }
    }

    // ------------------------------------------------------------ routing

    /// Sends messages out of `from`: chunk payloads become network flows,
    /// everything else is a control message with fixed latency.
    fn dispatch_from(
        &mut self,
        from: NodeId,
        msgs: impl Iterator<Item = (NodeId, Msg)>,
        notify_client: Option<usize>,
    ) {
        let mut flows_added = false;
        for (to, msg) in msgs {
            let is_data = matches!(
                msg,
                Msg::PutChunk { .. } | Msg::DeltaPutChunk { .. } | Msg::GetChunkOk { .. }
            );
            if is_data && to != MANAGER_NODE {
                let background = matches!(
                    msg,
                    Msg::PutChunk {
                        background: true,
                        ..
                    }
                );
                let notify = match (&msg, notify_client) {
                    (Msg::PutChunk { req, .. }, Some(ci)) => Some((ci, *req)),
                    _ => None,
                };
                if self.benef_offline(to) {
                    // Connection refused: a client put fails fast so the
                    // session retries on another stripe target; anything
                    // else (repair copies, reads) just vanishes.
                    if let Some((ci, req)) = notify {
                        self.schedule(self.cfg.control_latency, Ev::PutFailed { ci, req });
                    }
                    continue;
                }
                let bytes = msg.wire_size();
                self.net.settle(self.now);
                self.net.add(
                    from,
                    to,
                    bytes,
                    background,
                    FlowLoad {
                        from,
                        to,
                        msg,
                        notify,
                    },
                );
                flows_added = true;
            } else {
                self.schedule(self.cfg.control_latency, Ev::Deliver { from, to, msg });
            }
        }
        if flows_added {
            self.reflow();
        }
    }

    fn reflow(&mut self) {
        self.net.settle(self.now);
        self.net.recompute();
        self.net_gen += 1;
        if let Some(d) = self.net.next_completion() {
            let gen = self.net_gen;
            self.schedule(d, Ev::FlowCheck { gen });
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Msg, _ctx: Option<()>) {
        if to == MANAGER_NODE {
            if self.benef_offline(from) {
                return; // a dead node sends nothing (heartbeats included)
            }
            self.mgr.handle(from, msg, self.now);
            self.drive(NodeRef::Mgr);
            if self.ticks_enabled() {
                self.schedule_next_timeout(NodeRef::Mgr);
            }
        } else if to.as_u64() >= CLIENT_BASE {
            let ci = (to.as_u64() - CLIENT_BASE) as usize;
            if self.benef_offline(from) {
                return;
            }
            // An ack reaching the client settles the delivered-unacked
            // window for that put.
            if let Some(req) = msg.request_id() {
                if let Some(pending) = self.unacked.get_mut(&from) {
                    pending.remove(&req);
                }
            }
            self.client_msg(ci, msg);
        } else {
            let bi = (to.as_u64() - BENEF_BASE) as usize;
            if bi < self.benefs.len() && self.benefs[bi].online {
                // A client put is now delivered but unacked: if the target
                // churns out before `PutChunkOk` makes it back, this put
                // must fail (the TCP connection resets with it).
                if from.as_u64() >= CLIENT_BASE {
                    if let (Msg::PutChunk { req, .. } | Msg::DeltaPutChunk { req, .. }, ci) =
                        (&msg, (from.as_u64() - CLIENT_BASE) as usize)
                    {
                        self.unacked.entry(to).or_default().insert(*req, ci);
                    }
                }
                self.benefs[bi].sm.handle(from, msg, self.now);
                self.drive(NodeRef::Benef(bi));
                if self.ticks_enabled() {
                    self.schedule_next_timeout(NodeRef::Benef(bi));
                }
            }
        }
    }

    /// True when `node` addresses a benefactor that is currently churned
    /// out (clients and the manager are never offline).
    fn benef_offline(&self, node: NodeId) -> bool {
        let v = node.as_u64();
        if node == MANAGER_NODE || v >= CLIENT_BASE {
            return false;
        }
        let bi = (v - BENEF_BASE) as usize;
        bi < self.benefs.len() && !self.benefs[bi].online
    }

    // ------------------------------------------------ uniform dispatch

    /// Drains `poll_action()` from one node and translates every unified
    /// [`Action`] into the simulated resource it costs: sends become flows
    /// or control messages, chunk I/O lands on the owning node's disk,
    /// stage I/O on the client disk or page cache. This single dispatcher
    /// replaces the per-role action appliers.
    fn drive(&mut self, nr: NodeRef) {
        loop {
            let action = match nr {
                NodeRef::Mgr => self.mgr.poll_action(),
                NodeRef::Benef(bi) => self.benefs[bi].sm.poll_action(),
                NodeRef::Client(ci) => match &mut self.clients[ci].active {
                    Some(ClientActive::Writing(w)) => w.session.poll_action(),
                    _ => None,
                },
            };
            let Some(action) = action else { break };
            if let NodeRef::Benef(bi) = nr {
                if !self.benefs[bi].online {
                    continue; // drain and discard: the process is gone
                }
            }
            self.execute(nr, action);
        }
    }

    fn execute(&mut self, nr: NodeRef, action: Action) {
        match action {
            Action::Send { to, msg } => {
                let (from, notify) = match nr {
                    NodeRef::Mgr => (MANAGER_NODE, None),
                    NodeRef::Benef(bi) => (NodeId(BENEF_BASE + bi as u64), None),
                    NodeRef::Client(ci) => (self.clients[ci].node, Some(ci)),
                };
                // A manager reply queued behind a WAL append waits for the
                // append's group commit (durable-before-ack): its control
                // latency grows by whatever log writeback is outstanding.
                if matches!(nr, NodeRef::Mgr) && self.mgr_log_gate > self.now {
                    let extra = self.mgr_log_gate.since(self.now);
                    self.schedule(
                        self.cfg.control_latency + extra,
                        Ev::Deliver { from, to, msg },
                    );
                    return;
                }
                self.dispatch_from(from, std::iter::once((to, msg)), notify);
            }
            Action::MetaAppend { record, .. } => {
                debug_assert!(matches!(nr, NodeRef::Mgr), "only the manager logs metadata");
                // One framed record lands on the manager's log disk; the
                // durable point gates every reply drained after it.
                let bytes = record.wire_size();
                self.mgr_log_gate = self.mgr_log.schedule(self.now, bytes);
            }
            Action::Store { op, payload, .. } => {
                let NodeRef::Benef(bi) = nr else {
                    unreachable!("chunk stores run on benefactors");
                };
                let bytes = payload.len();
                let fin = self.benefs[bi].disk.schedule(self.now, bytes);
                self.schedule_at(fin, Ev::DiskDone(DiskKind::BenefStore { bi, op, bytes }));
                self.update_gate(bi);
            }
            Action::Load {
                op,
                chunk,
                size,
                serve,
            } => {
                let NodeRef::Benef(bi) = nr else {
                    unreachable!("chunk loads run on benefactors");
                };
                let mut fin = self.benefs[bi].disk.schedule(self.now, size as u64);
                if serve && self.cfg.serve_copy_passes > 0 {
                    // Copying-transmit data path: each pass drags the chunk
                    // through user space once (pread buffer, outbound
                    // flatten, socket write). The zero-copy default charges
                    // nothing, matching sendfile-from-segment.
                    let passes = self.cfg.serve_copy_passes as u64;
                    fin += Dur::for_bytes(size as u64 * passes, self.cfg.memcpy_rate);
                }
                self.schedule_at(
                    fin,
                    Ev::DiskDone(DiskKind::BenefLoad {
                        bi,
                        op,
                        chunk,
                        size,
                    }),
                );
                self.update_gate(bi);
            }
            Action::DropChunk { .. } => {}
            Action::StageAppend { op, payload, .. } => {
                let NodeRef::Client(ci) = nr else {
                    unreachable!("staging runs on clients");
                };
                match self.client_protocol(ci) {
                    Some(WriteProtocol::CompleteLocal) => {
                        let fin = self.clients[ci].disk.schedule(self.now, payload.len());
                        self.schedule_at(fin, Ev::DiskDone(DiskKind::StageAppend { ci, op }));
                    }
                    _ => {
                        // IW temps: absorbed by the page cache at memcpy
                        // speed; they are deleted after push, before
                        // writeback persists them.
                        let d = Dur::for_bytes(payload.len(), self.cfg.memcpy_rate);
                        self.schedule(d, Ev::DiskDone(DiskKind::StageAppend { ci, op }));
                    }
                }
            }
            Action::StageFetch { op, len, .. } => {
                let NodeRef::Client(ci) = nr else {
                    unreachable!("staging runs on clients");
                };
                match self.client_protocol(ci) {
                    Some(WriteProtocol::CompleteLocal) => {
                        let fin = self.clients[ci].disk.schedule(self.now, len as u64);
                        self.schedule_at(
                            fin,
                            Ev::DiskDone(DiskKind::StageFetch { ci, op, size: len }),
                        );
                    }
                    _ => {
                        // Cache hit.
                        self.schedule(
                            Dur::from_nanos(1),
                            Ev::DiskDone(DiskKind::StageFetch { ci, op, size: len }),
                        );
                    }
                }
            }
            Action::StageDiscard { .. } => {}
        }
    }

    fn client_protocol(&self, ci: usize) -> Option<WriteProtocol> {
        match &self.clients[ci].active {
            Some(ClientActive::Writing(w)) => Some(w.job.session.protocol),
            _ => None,
        }
    }

    /// Applies ingress gating: a backlogged disk throttles the NIC to disk
    /// speed (TCP backpressure steady state).
    fn update_gate(&mut self, bi: usize) {
        let node = NodeId(BENEF_BASE + bi as u64);
        let backlog = self.benefs[bi].disk.backlog(self.now);
        let b = &mut self.benefs[bi];
        let newly_gated = if b.gated {
            backlog > self.cfg.gate_off
        } else {
            backlog > self.cfg.gate_on
        };
        if newly_gated != b.gated {
            b.gated = newly_gated;
            let cap = if newly_gated {
                self.cfg.benefactor_disk.min(self.cfg.benefactor_nic)
            } else {
                self.cfg.benefactor_nic
            };
            self.net.settle(self.now);
            if self.net.set_ingress(node, cap) {
                self.reflow();
            }
        }
    }

    // ------------------------------------------------------------ clients

    fn client_start(&mut self, ci: usize) {
        if self.clients[ci].active.is_some() {
            return;
        }
        let Some(job) = self.clients[ci].queue.pop_front() else {
            return;
        };
        let sid = self.next_sid;
        self.next_sid += 1;
        let req = RequestId(sid << 32 | 0xFFFF_0000);
        let node = self.clients[ci].node;
        let msg = Msg::CreateFile {
            req,
            client: node,
            path: job.path.clone(),
            stripe_width: job.stripe_width,
            replication: job.replication,
            expected_chunks: (job.size / self.cfg.pool.chunk_size as u64).max(1) as u32,
        };
        self.clients[ci].active = Some(ClientActive::Opening { job, req });
        self.dispatch_from(node, std::iter::once((MANAGER_NODE, msg)), None);
    }

    fn client_msg(&mut self, ci: usize, msg: Msg) {
        match &self.clients[ci].active {
            Some(ClientActive::Opening { req, .. }) => {
                let open_req = *req;
                match msg {
                    Msg::CreateFileOk {
                        req,
                        file,
                        version,
                        reservation,
                        stripe,
                        prev_chunks,
                        chunk_size,
                        ..
                    } if req == open_req => {
                        let Some(ClientActive::Opening { job, .. }) =
                            self.clients[ci].active.take()
                        else {
                            unreachable!()
                        };
                        let reserved = (job.size / chunk_size as u64).max(1);
                        let grant = OpenGrant {
                            path: job.path.clone(),
                            file,
                            version,
                            reservation,
                            stripe,
                            prev_chunks,
                            chunk_size,
                            reserved_chunks: reserved,
                        };
                        let sid = self.next_sid;
                        self.next_sid += 1;
                        let session = WriteSession::new(
                            sid,
                            self.clients[ci].node,
                            grant,
                            job.session.clone(),
                            self.now,
                        );
                        self.clients[ci].active =
                            Some(ClientActive::Writing(Box::new(ActiveWrite {
                                job,
                                session,
                                written: 0,
                                app_busy: false,
                                closed: false,
                                last_done: self.now,
                                lat: Percentiles::default(),
                            })));
                        self.arm_app(ci);
                    }
                    Msg::ErrorReply { req, detail, .. } if req == open_req => {
                        let Some(ClientActive::Opening { job, .. }) =
                            self.clients[ci].active.take()
                        else {
                            unreachable!()
                        };
                        self.finish_job(
                            ci,
                            JobResult {
                                client: ci,
                                path: job.path,
                                stats: WriteStats::default(),
                                ingest: Percentiles::default(),
                                failed: true,
                            },
                        );
                        let _ = detail;
                    }
                    _ => {}
                }
            }
            Some(ClientActive::Writing(_)) => {
                self.with_session(ci, |s, now| s.handle(MANAGER_NODE, msg, now));
            }
            None => {}
        }
    }

    /// Runs `f` against the client's session, drives the resulting actions
    /// through the uniform dispatcher, re-arms the app, and finalizes the
    /// job if the session ended.
    fn with_session(&mut self, ci: usize, f: impl FnOnce(&mut WriteSession, Time)) {
        let Some(ClientActive::Writing(w)) = &mut self.clients[ci].active else {
            return;
        };
        f(&mut w.session, self.now);
        self.drive(NodeRef::Client(ci));
        self.arm_app(ci);
        self.maybe_finish(ci);
    }

    /// Schedules the next application write if the session can take it.
    fn arm_app(&mut self, ci: usize) {
        let Some(ClientActive::Writing(w)) = &mut self.clients[ci].active else {
            return;
        };
        if w.app_busy || w.closed {
            return;
        }
        let remaining = w.job.size - w.written;
        if remaining == 0 {
            // All data written: the app calls close().
            w.closed = true;
            let Some(ClientActive::Writing(_)) = &self.clients[ci].active else {
                unreachable!()
            };
            self.with_session(ci, |s, now| s.close(now));
            return;
        }
        let block = (self.cfg.app_block as u64).min(remaining);
        if w.session.writable() < block {
            return; // blocked; re-armed when the session drains
        }
        w.app_busy = true;
        // The write call's cost: FUSE crossing + copy (+ FsCH hashing).
        let mut cost = self.cfg.fuse_per_call + Dur::for_bytes(block, self.cfg.memcpy_rate);
        if w.job.session.dedup {
            cost += Dur::for_bytes(block, self.cfg.hash_rate);
        }
        if w.job.session.negotiate {
            // Signature build + delta scan over the block (the payloads are
            // virtual, so this is a pure cost model; the byte savings of the
            // wire path are exercised by the net suite and `dedup` bench).
            cost += Dur::for_bytes(block, self.cfg.delta_scan_rate);
        }
        let chunk_idx = (w.written / self.cfg.pool.chunk_size as u64) as usize;
        let tag = match &w.job.tags {
            Some(tags) => tags[chunk_idx.min(tags.len() - 1)],
            None => {
                // Fresh content: globally unique so no accidental dedup.
                self.next_fresh_tag += 1;
                mix64(self.next_fresh_tag ^ 0xF4E5_0000_0000_0000)
            }
        };
        self.schedule(
            cost,
            Ev::AppWrite {
                ci,
                n: block as u32,
                tag,
            },
        );
    }

    fn app_write(&mut self, ci: usize, n: u32, tag: u64) {
        {
            let Some(ClientActive::Writing(w)) = &mut self.clients[ci].active else {
                return;
            };
            w.app_busy = false;
            w.written += n as u64;
            // Gap since the previous completed call — this includes any
            // time the app spent *blocked* on a full session, which is
            // exactly the stall a checkpointing application feels.
            let lat = self.now.since(w.last_done);
            w.last_done = self.now;
            w.lat.record(lat);
            self.metrics.note_ingest(lat);
        }
        self.with_session(ci, move |s, now| {
            s.write(Payload::Virtual { size: n, tag }, now);
        });
    }

    fn maybe_finish(&mut self, ci: usize) {
        let done = {
            let Some(ClientActive::Writing(w)) = &self.clients[ci].active else {
                return;
            };
            match w.session.state() {
                SessionState::Done => Some(false),
                SessionState::Failed(_) => Some(true),
                _ => None,
            }
        };
        if let Some(failed) = done {
            let Some(ClientActive::Writing(w)) = self.clients[ci].active.take() else {
                unreachable!()
            };
            self.finish_job(
                ci,
                JobResult {
                    client: ci,
                    path: w.job.path.clone(),
                    stats: w.session.stats(),
                    ingest: w.lat,
                    failed,
                },
            );
        }
    }

    fn finish_job(&mut self, ci: usize, result: JobResult) {
        self.results.push(result);
        self.jobs_outstanding -= 1;
        if !self.clients[ci].queue.is_empty() {
            let start = self.clients[ci].queue[0].start.max(self.now);
            self.schedule_at(start, Ev::ClientStart { ci });
        }
    }

    // ------------------------------------------------------------ disk

    fn disk_done(&mut self, kind: DiskKind) {
        match kind {
            DiskKind::BenefStore { bi, op, bytes } => {
                if !self.benefs[bi].online {
                    return; // in-flight write lost with the node
                }
                self.metrics.persisted(self.now, bytes);
                self.benefs[bi]
                    .sm
                    .handle_completion(Completion::Stored { op }, self.now);
                self.drive(NodeRef::Benef(bi));
                self.update_gate(bi);
            }
            DiskKind::BenefLoad {
                bi,
                op,
                chunk,
                size,
            } => {
                if !self.benefs[bi].online {
                    return;
                }
                self.benefs[bi].sm.handle_completion(
                    Completion::Loaded {
                        op,
                        chunk,
                        payload: Payload::Virtual { size, tag: 0 },
                    },
                    self.now,
                );
                self.drive(NodeRef::Benef(bi));
                self.update_gate(bi);
            }
            DiskKind::StageAppend { ci, op } => {
                self.with_session(ci, |s, now| {
                    s.handle_completion(Completion::StageAppended { op }, now);
                });
            }
            DiskKind::StageFetch { ci, op, size } => {
                self.with_session(ci, move |s, now| {
                    s.handle_completion(
                        Completion::StageFetched {
                            op,
                            payload: Payload::Virtual { size, tag: 0 },
                        },
                        now,
                    );
                });
            }
        }
    }

    // ------------------------------------------------------------ churn

    fn apply_churn(&mut self, bi: usize, kind: ChurnKind) {
        match kind {
            ChurnKind::Leave => self.set_benef_offline(bi),
            ChurnKind::Crash => {
                self.set_benef_offline(bi);
                // The process and its chunks are gone: a fresh state
                // machine replaces the old one, and whatever the disk was
                // still writing is lost (stale `DiskDone`s for the old
                // machine are tolerated as unknown ops).
                let id = NodeId(BENEF_BASE + bi as u64);
                self.benefs[bi].sm =
                    Benefactor::new(id, self.cfg.benefactor_space, self.bcfg.clone());
                self.benefs[bi].disk.busy_until = self.now;
            }
            ChurnKind::Return => {
                if !self.benefs[bi].online {
                    self.benefs[bi].online = true;
                    // The stale heartbeat deadline is long past, so the
                    // next wakeup fires immediately and the manager
                    // re-adopts the node.
                    self.schedule_next_timeout(NodeRef::Benef(bi));
                }
            }
        }
    }

    /// Takes benefactor `bi` off the network: from here until a `Return`,
    /// its inbound traffic, ticks, disk completions, and outbound actions
    /// are all dropped. Client puts already delivered but unacked fail
    /// back to their sessions (the TCP connections reset).
    fn set_benef_offline(&mut self, bi: usize) {
        if !self.benefs[bi].online {
            return;
        }
        self.benefs[bi].online = false;
        let id = NodeId(BENEF_BASE + bi as u64);
        if let Some(pending) = self.unacked.remove(&id) {
            for (req, ci) in pending {
                self.with_session(ci, move |s, now| {
                    s.handle_completion(Completion::SendFailed { req }, now);
                });
            }
        }
    }
}
