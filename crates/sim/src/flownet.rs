//! Fluid-flow network model with two-priority max-min fair sharing.
//!
//! Bulk transfers (chunk payloads) are modelled as *flows*: fluid streams
//! with a remaining byte count whose instantaneous rates are the max-min
//! fair allocation under three kinds of capacity:
//!
//! - per-node **egress** (the sender's NIC),
//! - per-node **ingress** (the receiver's NIC — dynamically reducible to
//!   model TCP backpressure from a storage-bound receiver),
//! - an optional **fabric** cap (shared switch backplane, the limit the
//!   paper hits in Figure 8).
//!
//! Foreground flows (fresh client writes) are allocated first; background
//! flows (replication) strictly share the leftovers, implementing the
//! paper's "creation of new files has priority over replication".
//!
//! Rates are recomputed with the progressive-filling algorithm whenever the
//! flow set or a capacity changes; between changes every flow progresses
//! linearly, so the next completion time is exact.

use std::collections::HashMap;

use stdchk_proto::ids::NodeId;
use stdchk_util::{Dur, Time};

/// Identifies a flow within the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

/// A fluid transfer in progress.
#[derive(Clone, Debug)]
pub struct Flow<P> {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Bytes still to move.
    pub remaining: f64,
    /// Current allocated rate (bytes/sec).
    pub rate: f64,
    /// True for background (replication) traffic.
    pub background: bool,
    /// Caller payload returned at completion.
    pub payload: P,
}

/// Per-node NIC capacities.
#[derive(Clone, Copy, Debug)]
pub struct NicCaps {
    /// Egress bytes/sec.
    pub egress: f64,
    /// Ingress bytes/sec (current, possibly gated).
    pub ingress: f64,
}

/// The flow network. Generic over the per-flow payload `P`.
#[derive(Debug)]
pub struct FlowNet<P> {
    flows: HashMap<u64, Flow<P>>,
    next_id: u64,
    caps: HashMap<NodeId, NicCaps>,
    fabric: Option<f64>,
    last_settle: Time,
}

impl<P> FlowNet<P> {
    /// Creates an empty network with an optional fabric capacity.
    pub fn new(fabric: Option<f64>) -> FlowNet<P> {
        FlowNet {
            flows: HashMap::new(),
            next_id: 1,
            caps: HashMap::new(),
            fabric,
            last_settle: Time::ZERO,
        }
    }

    /// Registers a node's NIC capacities.
    pub fn set_node(&mut self, node: NodeId, egress: f64, ingress: f64) {
        assert!(egress > 0.0 && ingress > 0.0, "capacities must be positive");
        self.caps.insert(node, NicCaps { egress, ingress });
    }

    /// Adjusts a node's ingress capacity (backpressure gating). Returns true
    /// if the value changed.
    pub fn set_ingress(&mut self, node: NodeId, ingress: f64) -> bool {
        let caps = self.caps.get_mut(&node).expect("unknown node");
        if (caps.ingress - ingress).abs() < 1e-6 {
            return false;
        }
        caps.ingress = ingress;
        true
    }

    /// Number of active flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are active.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Advances all flows to `now` at their current rates. Must be called
    /// before any mutation.
    pub fn settle(&mut self, now: Time) {
        let dt = now.since(self.last_settle).as_secs_f64();
        self.last_settle = now;
        if dt <= 0.0 {
            return;
        }
        for f in self.flows.values_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
    }

    /// Adds a flow of `bytes` from `src` to `dst`. Caller must `settle`
    /// first and `recompute` after.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint was never registered.
    pub fn add(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        background: bool,
        payload: P,
    ) -> FlowId {
        assert!(self.caps.contains_key(&src), "unknown src {src}");
        assert!(self.caps.contains_key(&dst), "unknown dst {dst}");
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                remaining: bytes.max(1) as f64,
                rate: 0.0,
                background,
                payload,
            },
        );
        FlowId(id)
    }

    /// Removes and returns every finished flow (remaining ≈ 0), in id order.
    pub fn take_finished(&mut self) -> Vec<Flow<P>> {
        let mut ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= 0.5)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| self.flows.remove(&id).expect("present"))
            .collect()
    }

    /// Recomputes all flow rates: progressive filling for foreground flows,
    /// then background flows over the leftovers.
    pub fn recompute(&mut self) {
        // Residual capacities.
        let mut egress: HashMap<NodeId, f64> =
            self.caps.iter().map(|(n, c)| (*n, c.egress)).collect();
        let mut ingress: HashMap<NodeId, f64> =
            self.caps.iter().map(|(n, c)| (*n, c.ingress)).collect();
        let mut fabric = self.fabric;
        for pass_background in [false, true] {
            let mut unfixed: Vec<u64> = self
                .flows
                .iter()
                .filter(|(_, f)| f.background == pass_background)
                .map(|(id, _)| *id)
                .collect();
            unfixed.sort_unstable();
            let mut level = 0.0f64;
            while !unfixed.is_empty() {
                // Count unfixed flows per resource.
                let mut n_eg: HashMap<NodeId, usize> = HashMap::new();
                let mut n_in: HashMap<NodeId, usize> = HashMap::new();
                for id in &unfixed {
                    let f = &self.flows[id];
                    *n_eg.entry(f.src).or_insert(0) += 1;
                    *n_in.entry(f.dst).or_insert(0) += 1;
                }
                // Smallest per-flow headroom across touched resources.
                let mut delta = f64::INFINITY;
                for (n, cnt) in &n_eg {
                    delta = delta.min((egress[n]).max(0.0) / *cnt as f64);
                }
                for (n, cnt) in &n_in {
                    delta = delta.min((ingress[n]).max(0.0) / *cnt as f64);
                }
                if let Some(fab) = fabric {
                    delta = delta.min(fab.max(0.0) / unfixed.len() as f64);
                }
                if !delta.is_finite() {
                    break;
                }
                level += delta;
                // Charge the increment to every resource.
                for (n, cnt) in &n_eg {
                    *egress.get_mut(n).expect("known") -= delta * *cnt as f64;
                }
                for (n, cnt) in &n_in {
                    *ingress.get_mut(n).expect("known") -= delta * *cnt as f64;
                }
                if let Some(fab) = fabric.as_mut() {
                    *fab -= delta * unfixed.len() as f64;
                }
                // Fix flows whose bottleneck saturated.
                let saturated = |f: &Flow<P>| {
                    egress[&f.src] <= 1e-6
                        || ingress[&f.dst] <= 1e-6
                        || fabric.map(|x| x <= 1e-6).unwrap_or(false)
                };
                let mut progressed = false;
                unfixed.retain(|id| {
                    let fixed = saturated(&self.flows[id]);
                    if fixed {
                        self.flows.get_mut(id).expect("present").rate = level;
                        progressed = true;
                    }
                    !fixed
                });
                if !progressed {
                    // Numerical corner: fix everything at the current level.
                    for id in unfixed.drain(..) {
                        self.flows.get_mut(&id).expect("present").rate = level;
                    }
                }
            }
        }
    }

    /// Time until the earliest flow completes at current rates.
    pub fn next_completion(&self) -> Option<Dur> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0)
            .map(|f| Dur::from_secs_f64(f.remaining / f.rate))
            .min()
    }

    /// Read-only view of the flows (tests and debugging).
    pub fn flows(&self) -> impl Iterator<Item = &Flow<P>> {
        self.flows.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    fn net() -> FlowNet<u32> {
        let mut n = FlowNet::new(None);
        n.set_node(NodeId(1), 100.0 * MB, 100.0 * MB);
        n.set_node(NodeId(2), 100.0 * MB, 100.0 * MB);
        n.set_node(NodeId(3), 100.0 * MB, 100.0 * MB);
        n
    }

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        let mut n = net();
        n.add(NodeId(1), NodeId(2), 100_000_000, false, 0);
        n.recompute();
        let f: Vec<_> = n.flows().collect();
        assert!((f[0].rate - 100.0 * MB).abs() < 1.0);
        let t = n.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_sender_nic_fairly() {
        let mut n = net();
        n.add(NodeId(1), NodeId(2), 1_000_000, false, 0);
        n.add(NodeId(1), NodeId(3), 1_000_000, false, 1);
        n.recompute();
        for f in n.flows() {
            assert!((f.rate - 50.0 * MB).abs() < 1.0, "rate {}", f.rate);
        }
    }

    #[test]
    fn asymmetric_bottlenecks_use_max_min() {
        let mut n = net();
        // Receiver 3 is slow (20 MB/s); flows 1→2 and 1→3 share node 1's
        // 100 MB/s egress. Max-min: flow to 3 gets 20, flow to 2 gets 80.
        n.set_node(NodeId(3), 100.0 * MB, 20.0 * MB);
        n.add(NodeId(1), NodeId(2), 1_000_000, false, 0);
        n.add(NodeId(1), NodeId(3), 1_000_000, false, 1);
        n.recompute();
        let mut rates: Vec<(NodeId, f64)> = n.flows().map(|f| (f.dst, f.rate)).collect();
        rates.sort_by_key(|(d, _)| *d);
        assert!(
            (rates[0].1 - 80.0 * MB).abs() < 1.0,
            "fast flow {}",
            rates[0].1
        );
        assert!(
            (rates[1].1 - 20.0 * MB).abs() < 1.0,
            "slow flow {}",
            rates[1].1
        );
    }

    #[test]
    fn background_yields_to_foreground() {
        let mut n = net();
        n.add(NodeId(1), NodeId(2), 1_000_000, false, 0);
        n.add(NodeId(3), NodeId(2), 1_000_000, true, 1);
        n.recompute();
        for f in n.flows() {
            if f.background {
                assert!(f.rate < 1.0, "background must starve here: {}", f.rate);
            } else {
                assert!((f.rate - 100.0 * MB).abs() < 1.0);
            }
        }
    }

    #[test]
    fn fabric_cap_limits_aggregate() {
        let mut n: FlowNet<u32> = FlowNet::new(Some(90.0 * MB));
        for i in 1..=6 {
            n.set_node(NodeId(i), 100.0 * MB, 100.0 * MB);
        }
        // Three disjoint flows, each could do 100; fabric caps sum at 90.
        n.add(NodeId(1), NodeId(2), 1_000_000, false, 0);
        n.add(NodeId(3), NodeId(4), 1_000_000, false, 1);
        n.add(NodeId(5), NodeId(6), 1_000_000, false, 2);
        n.recompute();
        let total: f64 = n.flows().map(|f| f.rate).sum();
        assert!((total - 90.0 * MB).abs() < 10.0, "total {total}");
    }

    #[test]
    fn settle_progresses_and_completes() {
        let mut n = net();
        n.add(NodeId(1), NodeId(2), 50_000_000, false, 7);
        n.recompute();
        n.settle(Time::from_secs_f64(0.5));
        let done = n.take_finished();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].payload, 7);
        assert!(n.is_empty());
    }

    #[test]
    fn conservation_under_churn() {
        // Rates never exceed capacities regardless of add/remove order.
        let mut n = net();
        let mut ids = Vec::new();
        for i in 0..10u32 {
            let dst = NodeId(2 + (i % 2) as u64);
            ids.push(n.add(NodeId(1), dst, 10_000_000, i % 3 == 0, i));
            n.recompute();
            let mut eg: f64 = 0.0;
            for f in n.flows() {
                eg += f.rate;
            }
            assert!(eg <= 100.0 * MB + 1.0, "egress overcommitted: {eg}");
        }
    }

    #[test]
    fn ingress_gating_reallocates() {
        let mut n = net();
        n.add(NodeId(1), NodeId(2), 1_000_000, false, 0);
        n.recompute();
        assert!(n.set_ingress(NodeId(2), 20.0 * MB));
        n.recompute();
        let f: Vec<_> = n.flows().collect();
        assert!((f[0].rate - 20.0 * MB).abs() < 1.0);
        // Setting the same value reports no change.
        assert!(!n.set_ingress(NodeId(2), 20.0 * MB));
    }
}
