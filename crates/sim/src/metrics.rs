//! Simulation metrics: persisted-byte accounting and time series.

use std::collections::BTreeMap;

use stdchk_util::Time;

/// Collects persisted-byte counts bucketed by whole seconds of sim time —
/// the series Figure 8 plots.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    per_second: BTreeMap<u64, u64>,
    total: u64,
}

impl Metrics {
    /// Records `bytes` hitting a benefactor disk at `now`.
    pub fn persisted(&mut self, now: Time, bytes: u64) {
        let sec = now.as_nanos() / 1_000_000_000;
        *self.per_second.entry(sec).or_insert(0) += bytes;
        self.total += bytes;
    }

    /// Total persisted bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The series as `(second, bytes)` pairs, gaps filled with zeros.
    pub fn series(&self) -> Vec<(u64, u64)> {
        let Some((&first, _)) = self.per_second.iter().next() else {
            return Vec::new();
        };
        let (&last, _) = self.per_second.iter().next_back().expect("non-empty");
        (first..=last)
            .map(|s| (s, self.per_second.get(&s).copied().unwrap_or(0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stdchk_util::Dur;

    #[test]
    fn buckets_by_second_and_fills_gaps() {
        let mut m = Metrics::default();
        m.persisted(Time::from_secs(1), 100);
        m.persisted(Time::from_secs(1) + Dur::from_millis(400), 50);
        m.persisted(Time::from_secs(3), 10);
        assert_eq!(m.total(), 160);
        assert_eq!(m.series(), vec![(1, 150), (2, 0), (3, 10)]);
    }

    #[test]
    fn empty_series_is_empty() {
        assert!(Metrics::default().series().is_empty());
    }
}
