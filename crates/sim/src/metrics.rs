//! Simulation metrics: persisted-byte accounting, latency percentiles,
//! repair-backlog gauges, and per-scenario summary lines.

use std::collections::BTreeMap;

use stdchk_util::{Dur, Time};

/// Latency percentile accumulator (nearest-rank over recorded samples).
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<Dur>,
}

impl Percentiles {
    /// Records one sample.
    pub fn record(&mut self, d: Dur) {
        self.samples.push(d);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Nearest-rank percentile (`p` in percent, e.g. `99.0`). Zero when no
    /// samples were recorded.
    pub fn percentile(&self, p: f64) -> Dur {
        if self.samples.is_empty() {
            return Dur::ZERO;
        }
        let mut v = self.samples.clone();
        v.sort_unstable();
        let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
        v[rank.clamp(1, v.len()) - 1]
    }

    /// Median sample.
    pub fn p50(&self) -> Dur {
        self.percentile(50.0)
    }

    /// 99th-percentile sample.
    pub fn p99(&self) -> Dur {
        self.percentile(99.0)
    }

    /// Largest sample.
    pub fn max(&self) -> Dur {
        self.samples.iter().copied().max().unwrap_or(Dur::ZERO)
    }
}

/// Collects persisted-byte counts bucketed by whole seconds of sim time
/// (the series Figure 8 plots), ingest write-call latencies, and a
/// repair-backlog gauge sampled on manager ticks.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    per_second: BTreeMap<u64, u64>,
    total: u64,
    ingest: Percentiles,
    backlog: Vec<(u64, usize)>,
}

impl Metrics {
    /// Records `bytes` hitting a benefactor disk at `now`.
    pub fn persisted(&mut self, now: Time, bytes: u64) {
        let sec = now.as_nanos() / 1_000_000_000;
        *self.per_second.entry(sec).or_insert(0) += bytes;
        self.total += bytes;
    }

    /// Records one application write-call latency (queueing included).
    pub fn note_ingest(&mut self, d: Dur) {
        self.ingest.record(d);
    }

    /// Samples the manager's repair backlog at `now`.
    pub fn note_backlog(&mut self, now: Time, backlog: usize) {
        let sec = now.as_nanos() / 1_000_000_000;
        self.backlog.push((sec, backlog));
    }

    /// Total persisted bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fleet-wide ingest latency percentiles.
    pub fn ingest(&self) -> &Percentiles {
        &self.ingest
    }

    /// The repair-backlog gauge as `(second, queued repairs)` samples in
    /// observation order.
    pub fn backlog_series(&self) -> &[(u64, usize)] {
        &self.backlog
    }

    /// Largest observed repair backlog.
    pub fn backlog_peak(&self) -> usize {
        self.backlog.iter().map(|(_, b)| *b).max().unwrap_or(0)
    }

    /// The last whole second at which repair work was still queued —
    /// `None` when the backlog was never non-zero. The distance from the
    /// failure instant to this is the time-to-re-replication.
    pub fn backlog_cleared_at(&self) -> Option<u64> {
        self.backlog
            .iter()
            .rev()
            .find(|(_, b)| *b > 0)
            .map(|(s, _)| *s)
    }

    /// One-line per-scenario summary for test and bench logs.
    pub fn summary(&self, scenario: &str) -> String {
        format!(
            "scenario={scenario} persisted={}B ingest_p50={:.1}ms ingest_p99={:.1}ms \
             repair_backlog_peak={}",
            self.total,
            self.ingest.p50().as_secs_f64() * 1e3,
            self.ingest.p99().as_secs_f64() * 1e3,
            self.backlog_peak(),
        )
    }

    /// The series as `(second, bytes)` pairs, gaps filled with zeros.
    pub fn series(&self) -> Vec<(u64, u64)> {
        let Some((&first, _)) = self.per_second.iter().next() else {
            return Vec::new();
        };
        let (&last, _) = self.per_second.iter().next_back().expect("non-empty");
        (first..=last)
            .map(|s| (s, self.per_second.get(&s).copied().unwrap_or(0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_second_and_fills_gaps() {
        let mut m = Metrics::default();
        m.persisted(Time::from_secs(1), 100);
        m.persisted(Time::from_secs(1) + Dur::from_millis(400), 50);
        m.persisted(Time::from_secs(3), 10);
        assert_eq!(m.total(), 160);
        assert_eq!(m.series(), vec![(1, 150), (2, 0), (3, 10)]);
    }

    #[test]
    fn empty_series_is_empty() {
        assert!(Metrics::default().series().is_empty());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut p = Percentiles::default();
        for ms in 1..=100u64 {
            p.record(Dur::from_millis(ms));
        }
        assert_eq!(p.p50(), Dur::from_millis(50));
        assert_eq!(p.p99(), Dur::from_millis(99));
        assert_eq!(p.percentile(100.0), Dur::from_millis(100));
        assert_eq!(p.max(), Dur::from_millis(100));
        assert_eq!(Percentiles::default().p99(), Dur::ZERO);
    }

    #[test]
    fn backlog_gauge_tracks_clearing() {
        let mut m = Metrics::default();
        m.note_backlog(Time::from_secs(1), 0);
        m.note_backlog(Time::from_secs(2), 7);
        m.note_backlog(Time::from_secs(4), 3);
        m.note_backlog(Time::from_secs(6), 0);
        assert_eq!(m.backlog_peak(), 7);
        assert_eq!(m.backlog_cleared_at(), Some(4));
        let line = m.summary("demo");
        assert!(line.contains("scenario=demo"), "{line}");
        assert!(line.contains("repair_backlog_peak=7"), "{line}");
    }
}
