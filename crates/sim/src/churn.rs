//! Seeded churn-trace generation: join/leave/crash schedules for the
//! chaos scenario suite.
//!
//! Traces are plain event lists (`(time, benefactor, kind)`) produced by a
//! deterministic splitmix-style generator, so every scenario replays
//! bit-identically from its seed. Three shapes cover the paper's desktop
//! fleet arguments:
//!
//! * [`correlated_departure`] — a fraction of the fleet leaves in two
//!   staggered waves (power event / lab shutdown; the acceptance scenario),
//! * [`diurnal`] — nodes leave in the evening and return in the morning
//!   (the scavenged-desktop day/night cycle),
//! * [`steady`] — every node alternates exponentially-distributed online
//!   sessions and offline gaps (background churn).

use stdchk_util::{mix64, Dur, Time};

use crate::cluster::ChurnKind;

/// One scheduled churn transition.
#[derive(Clone, Copy, Debug)]
pub struct ChurnEvent {
    /// When the transition happens.
    pub at: Time,
    /// Benefactor index.
    pub benefactor: usize,
    /// What happens to it.
    pub kind: ChurnKind,
}

/// Deterministic splitmix-style generator for trace construction.
#[derive(Clone, Debug)]
pub struct TraceRng {
    state: u64,
}

impl TraceRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TraceRng {
        TraceRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp(&mut self, mean: Dur) -> Dur {
        let u = self.unit().max(1e-12);
        Dur::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Fisher–Yates sample of `k` distinct indices out of `[0, n)`.
    pub fn sample(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut pool: Vec<usize> = (0..n).collect();
        let k = k.min(n);
        for i in 0..k {
            let j = i + self.below(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// A correlated mass departure: `frac` of the `fleet` goes down in two
/// staggered waves starting at `first_wave` (±1 s of per-node jitter),
/// `crash_frac` of the victims crash (losing their stored chunks) while
/// the rest leave with data intact. Nobody returns — the repair path has
/// to rebuild redundancy from the survivors.
pub fn correlated_departure(
    fleet: usize,
    frac: f64,
    crash_frac: f64,
    first_wave: Time,
    stagger: Dur,
    seed: u64,
) -> Vec<ChurnEvent> {
    let mut rng = TraceRng::new(seed);
    let victims = ((fleet as f64 * frac).round() as usize).min(fleet);
    let picked = rng.sample(fleet, victims);
    let mut trace = Vec::new();
    for (i, benefactor) in picked.into_iter().enumerate() {
        let wave = if i % 2 == 0 {
            first_wave
        } else {
            first_wave + stagger
        };
        let jitter = Dur::from_millis(rng.below(2000) as u64);
        let kind = if rng.unit() < crash_frac {
            ChurnKind::Crash
        } else {
            ChurnKind::Leave
        };
        trace.push(ChurnEvent {
            at: wave + jitter,
            benefactor,
            kind,
        });
    }
    trace.sort_by_key(|e| e.at);
    trace
}

/// A day/night cycle: `night_frac` of the fleet leaves around `dusk` and
/// returns around `dawn`, with per-node jitter. Data stays intact (these
/// are powered-off desktops, not disk failures).
pub fn diurnal(
    fleet: usize,
    night_frac: f64,
    dusk: Time,
    dawn: Time,
    seed: u64,
) -> Vec<ChurnEvent> {
    assert!(dawn > dusk, "dawn must follow dusk");
    let mut rng = TraceRng::new(seed);
    let sleepers = ((fleet as f64 * night_frac).round() as usize).min(fleet);
    let picked = rng.sample(fleet, sleepers);
    let mut trace = Vec::new();
    for benefactor in picked {
        let leave_jitter = Dur::from_millis(rng.below(5000) as u64);
        let return_jitter = Dur::from_millis(rng.below(5000) as u64);
        trace.push(ChurnEvent {
            at: dusk + leave_jitter,
            benefactor,
            kind: ChurnKind::Leave,
        });
        trace.push(ChurnEvent {
            at: dawn + return_jitter,
            benefactor,
            kind: ChurnKind::Return,
        });
    }
    trace.sort_by_key(|e| e.at);
    trace
}

/// Steady background churn over `span`: each node alternates online
/// sessions (mean `mean_session`) and offline gaps (mean `mean_offline`,
/// floored at `min_offline` so a crashed node's heartbeat lease expires
/// before it returns — a node that crashes and rejoins inside the lease
/// would present phantom replicas no detector could see). `crash_frac` of
/// departures wipe the node's chunks.
pub fn steady(
    fleet: usize,
    mean_session: Dur,
    mean_offline: Dur,
    min_offline: Dur,
    crash_frac: f64,
    span: Dur,
    seed: u64,
) -> Vec<ChurnEvent> {
    let mut rng = TraceRng::new(seed);
    let end = Time::ZERO + span;
    let mut trace = Vec::new();
    for benefactor in 0..fleet {
        let mut at = Time::ZERO + rng.exp(mean_session);
        while at < end {
            let kind = if rng.unit() < crash_frac {
                ChurnKind::Crash
            } else {
                ChurnKind::Leave
            };
            trace.push(ChurnEvent {
                at,
                benefactor,
                kind,
            });
            let back = at + rng.exp(mean_offline).max(min_offline);
            if back >= end {
                break;
            }
            trace.push(ChurnEvent {
                at: back,
                benefactor,
                kind: ChurnKind::Return,
            });
            at = back + rng.exp(mean_session);
        }
    }
    trace.sort_by_key(|e| e.at);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = correlated_departure(20, 0.3, 0.5, Time::from_secs(10), Dur::from_secs(20), 7);
        let b = correlated_departure(20, 0.3, 0.5, Time::from_secs(10), Dur::from_secs(20), 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.at, x.benefactor), (y.at, y.benefactor));
        }
        let c = correlated_departure(20, 0.3, 0.5, Time::from_secs(10), Dur::from_secs(20), 8);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.benefactor != y.benefactor || x.at != y.at),
            "different seeds should pick different victims"
        );
    }

    #[test]
    fn correlated_departure_hits_the_requested_fraction() {
        let trace = correlated_departure(30, 0.3, 0.0, Time::from_secs(5), Dur::from_secs(15), 42);
        assert_eq!(trace.len(), 9);
        let mut victims: Vec<usize> = trace.iter().map(|e| e.benefactor).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 9, "victims must be distinct");
        assert!(trace.iter().all(|e| matches!(e.kind, ChurnKind::Leave)));
        // Two waves: some events near t=5, some near t=20.
        assert!(trace.iter().any(|e| e.at < Time::from_secs(8)));
        assert!(trace.iter().any(|e| e.at >= Time::from_secs(20)));
    }

    #[test]
    fn diurnal_returns_everyone_it_removes() {
        let trace = diurnal(16, 0.5, Time::from_secs(10), Time::from_secs(60), 3);
        let leaves = trace
            .iter()
            .filter(|e| matches!(e.kind, ChurnKind::Leave))
            .count();
        let returns = trace
            .iter()
            .filter(|e| matches!(e.kind, ChurnKind::Return))
            .count();
        assert_eq!(leaves, returns);
        assert_eq!(leaves, 8);
    }

    #[test]
    fn steady_respects_offline_floor() {
        let min_off = Dur::from_secs(8);
        let trace = steady(
            10,
            Dur::from_secs(20),
            Dur::from_secs(2),
            min_off,
            0.5,
            Dur::from_secs(120),
            11,
        );
        assert!(!trace.is_empty());
        // Every Return follows its node's departure by at least the floor.
        for w in 0..trace.len() {
            if !matches!(trace[w].kind, ChurnKind::Return) {
                continue;
            }
            let node = trace[w].benefactor;
            let depart = trace[..w]
                .iter()
                .rev()
                .find(|e| e.benefactor == node)
                .expect("return without departure");
            assert!(trace[w].at.since(depart.at) >= min_off);
        }
    }
}
