//! Analytic platform baselines (paper §V.A, Table 1, and the baseline
//! series of Figures 2/3).
//!
//! These closed-form models use the same constants as the cluster simulator
//! and are calibrated against the paper's measured platform: local disk
//! sustained writes at 86.2 MB/s, a dedicated NFS server at 24.8 MB/s, and
//! a FUSE crossing of ≈32 µs per call.

use stdchk_util::{Dur, Time};

use crate::SimConfig;

/// Time to write `size` bytes straight to the local disk ("Local I/O").
pub fn local_io_time(cfg: &SimConfig, size: u64) -> Dur {
    Dur::for_bytes(size, cfg.client_disk)
}

/// Time to write `size` bytes through FUSE onto the local disk
/// ("FUSE to local I/O"): the disk-bound path plus one user-space crossing
/// per call. The copy overlaps the disk and does not add latency.
pub fn fuse_local_time(cfg: &SimConfig, size: u64) -> Dur {
    local_io_time(cfg, size) + per_call_overhead(cfg, size)
}

/// Time for `/stdchk/null`: the FUSE path alone (crossing + copy), no
/// backing store.
pub fn null_fs_time(cfg: &SimConfig, size: u64) -> Dur {
    per_call_overhead(cfg, size) + Dur::for_bytes(size, cfg.memcpy_rate)
}

/// Time to write `size` bytes to a dedicated NFS server at `nfs_rate`
/// (paper measured 24.8 MB/s).
pub fn nfs_time(size: u64, nfs_rate: f64) -> Dur {
    Dur::for_bytes(size, nfs_rate)
}

fn per_call_overhead(cfg: &SimConfig, size: u64) -> Dur {
    let calls = size.div_ceil(cfg.app_block as u64).max(1);
    cfg.fuse_per_call * calls
}

/// Convenience: throughput for a duration, B/s.
pub fn rate_of(size: u64, d: Dur) -> f64 {
    size as f64 / d.as_secs_f64().max(1e-12)
}

/// Calibration audit used by tests and the Table 1 harness: returns
/// `(local, fuse_local, null)` times for a 1 GB write under `cfg` — the
/// paper measured 11.80 s, 12.00 s and 1.04 s.
pub fn table1_times(cfg: &SimConfig) -> (Dur, Dur, Dur) {
    const GB: u64 = 1_000_000_000;
    (
        local_io_time(cfg, GB),
        fuse_local_time(cfg, GB),
        null_fs_time(cfg, GB),
    )
}

/// The observed-time triple as seconds, for printing.
pub fn table1_seconds(cfg: &SimConfig) -> (f64, f64, f64) {
    let (a, b, c) = table1_times(cfg);
    (a.as_secs_f64(), b.as_secs_f64(), c.as_secs_f64())
}

/// Sanity helper: `Time` is unused here but kept for API symmetry with the
/// cluster simulator (which timestamps everything).
pub fn _anchor(_t: Time) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_calibration_is_close_to_paper() {
        let cfg = SimConfig::gige(4, 1);
        let (local, fuse, null) = table1_seconds(&cfg);
        // Paper: 11.80 s local, 12.00 s FUSE→local, 1.04 s null.
        assert!((local - 11.8).abs() < 0.8, "local {local}");
        assert!((fuse - 12.0).abs() < 0.9, "fuse {fuse}");
        assert!((null - 1.04).abs() < 0.2, "null {null}");
        // Orderings the paper reports.
        assert!(fuse > local, "FUSE adds overhead");
        assert!(null < local / 5.0, "null is much faster than disk");
        let overhead = (fuse - local) / local;
        assert!(
            overhead < 0.05,
            "FUSE overhead should be a few %: {overhead}"
        );
    }

    #[test]
    fn nfs_is_the_slowest_baseline() {
        let cfg = SimConfig::gige(4, 1);
        let size = 1 << 30;
        assert!(nfs_time(size, 24.8e6) > local_io_time(&cfg, size));
    }
}
