//! Discrete-event simulator for the stdchk evaluation.
//!
//! Reproducing the paper's evaluation requires its testbed: 28 LAN machines
//! with GigE NICs and 86.2 MB/s disks, plus a 10 GbE client. This crate
//! substitutes that hardware with a calibrated, deterministic model — while
//! running the *actual* protocol implementation (the sans-IO state machines
//! from `stdchk-core`) on every node:
//!
//! - [`SimCluster`] — the event-driven cluster: virtual time, fluid-flow
//!   networking with max-min fairness and background-traffic priority, FIFO
//!   disks with ingress gating, the FUSE write-path cost model, and virtual
//!   payloads so multi-gigabyte workloads allocate nothing.
//! - [`flownet`] — the network model, usable on its own.
//! - [`baselines`] — closed-form local-I/O / FUSE / null-FS / NFS baselines
//!   (Table 1 and the baseline series of Figures 2–3).
//!
//! # Example
//!
//! ```
//! use stdchk_core::session::write::{SessionConfig, WriteProtocol};
//! use stdchk_sim::{SimCluster, SimConfig, WriteJob};
//! use stdchk_util::Dur;
//!
//! let mut sim = SimCluster::new(SimConfig::gige(4, 1));
//! let session = SessionConfig {
//!     protocol: WriteProtocol::SlidingWindow { buffer: 64 << 20 },
//!     ..SessionConfig::default()
//! };
//! sim.submit(0, WriteJob::new("/app/ck.n0", 256 << 20, session));
//! let report = sim.run(Dur::from_secs(1));
//! assert_eq!(report.results.len(), 1);
//! let oab = report.mean_oab();
//! assert!(oab > 80e6, "sliding window should near GigE speed: {oab}");
//! ```

#![forbid(unsafe_code)]

pub mod baselines;
pub mod churn;
pub mod cluster;
pub mod flownet;
pub mod metrics;
pub mod scenarios;

pub use churn::{correlated_departure, diurnal, steady, ChurnEvent, TraceRng};
pub use cluster::{ChurnKind, JobResult, SimCluster, SimConfig, SimReport, WriteJob};
pub use flownet::{Flow, FlowId, FlowNet};
pub use metrics::{Metrics, Percentiles};
