//! Canned chaos scenarios shared by the scenario test suite and the churn
//! bench, so both exercise and report exactly the same setup.
//!
//! The flagship scenario, [`churn_departure`], is the acceptance run for
//! rate-limited repair: a fleet pre-populated with replication-3 checkpoint
//! data loses 30% of its benefactors in two correlated waves while a victim
//! writer is mid-checkpoint. With the repair scheduler on, rebuild traffic
//! is paced under the per-source and fleet budgets and the victim's ingest
//! latency stays near calm; with the scheduler off (`repair_scheduler:
//! false`, the pre-scheduler FIFO behaviour) the rebuild storm floods the
//! survivors' disks, their ingress gates collapse to disk speed, and the
//! victim's tail latency explodes.

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_proto::chunkmap::FileVersionView;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId, VersionId};
use stdchk_proto::msg::Msg;
use stdchk_util::{Dur, Time};

use crate::churn::correlated_departure;
use crate::cluster::{SimCluster, SimConfig, WriteJob, BENEF_BASE, CLIENT_BASE};

/// Fleet size of the departure scenario.
pub const CHURN_FLEET: usize = 10;
/// Fraction of the fleet that departs.
pub const CHURN_FRAC: f64 = 0.3;
/// Seed of the departure trace.
pub const CHURN_SEED: u64 = 0xC0FFEE;
/// First departure wave (the second follows [`CHURN_STAGGER`] later).
pub const CHURN_WAVE_AT: Time = Time::from_secs(55);
/// Gap between the two waves — wide enough that repair finishes between
/// them, so replication-3 data structurally survives waves of ≤2 nodes.
pub const CHURN_STAGGER: Dur = Dur::from_secs(25);
/// When the victim checkpoint starts: just before the first wave's
/// heartbeat leases expire, so the write rides through detection and the
/// whole rebuild storm.
pub const VICTIM_START: Time = Time::from_secs(61);
/// Pre-populated checkpoint files (each [`BASE_FILE_MB`] MB, replication 3).
pub const BASE_FILES: usize = 12;
/// Size of each pre-populated file, in MB.
pub const BASE_FILE_MB: u64 = 96;
/// Size of the victim's checkpoint, in MB.
pub const VICTIM_MB: u64 = 256;

const MB: u64 = 1_000_000;

/// Everything the churn A/B comparison needs from one run.
#[derive(Clone, Debug)]
pub struct ChurnOutcome {
    /// Victim writer's median per-write-call latency.
    pub victim_p50: Dur,
    /// Victim writer's 99th-percentile per-write-call latency.
    pub victim_p99: Dur,
    /// Whether the victim's session failed.
    pub victim_failed: bool,
    /// Committed base-file versions that lost every live replica.
    pub lost_versions: usize,
    /// Committed base-file versions audited.
    pub audited_versions: usize,
    /// Largest repair backlog observed on a manager tick.
    pub backlog_peak: usize,
    /// Last whole second at which repair work was still queued.
    pub repair_cleared_at: Option<u64>,
    /// Victim writer's worst per-write-call latency.
    pub victim_max: Dur,
    /// When the victim's session finished.
    pub victim_done: Option<Time>,
    /// Total replication copies the manager dispatched.
    pub replication_copies: u64,
    /// One-line metrics summary for logs.
    pub summary: String,
    /// Virtual end time of the run.
    pub end: Time,
}

fn sw(buffer: u64) -> SessionConfig {
    SessionConfig {
        protocol: WriteProtocol::SlidingWindow { buffer },
        ..SessionConfig::default()
    }
}

/// Benefactor knobs for chaos runs: returning nodes re-advertise their
/// whole inventory on the next GC report instead of sitting out the
/// default 10-minute grace, and stranded replication puts retry within the
/// scenario horizon.
pub fn chaos_bcfg(pool: &PoolConfig) -> BenefactorConfig {
    BenefactorConfig {
        heartbeat_every: pool.heartbeat_every,
        gc_grace: Dur::ZERO,
        gc_min_interval: Dur::from_secs(1),
        put_timeout: Dur::from_secs(15),
        reoffer_every: Dur::from_secs(10),
        stash_ttl: Dur::from_secs(3600),
    }
}

/// Fetches the manager's view of one committed version.
pub fn version_view(
    sim: &mut SimCluster,
    path: &str,
    version: VersionId,
) -> Option<FileVersionView> {
    let now = sim.now();
    let from = NodeId(CLIENT_BASE);
    let sends = sim.manager_mut().handle_msg(
        from,
        Msg::GetFile {
            req: RequestId(u64::MAX),
            path: path.to_string(),
            version: Some(version),
        },
        now,
    );
    sends.into_iter().find_map(|s| match s.msg {
        Msg::FileViewReply { view, .. } => Some(view),
        _ => None,
    })
}

/// Ground-truth live replica counts for one committed version: per chunk,
/// how many manager-known locations are online *and actually hold it* (a
/// location pointing at a crashed-empty or offline node does not count).
pub fn live_replicas(
    sim: &mut SimCluster,
    path: &str,
    version: VersionId,
) -> Option<Vec<(ChunkId, usize)>> {
    let view = version_view(sim, path, version)?;
    Some(
        view.locations
            .iter()
            .map(|(chunk, nodes)| {
                let live = nodes
                    .iter()
                    .filter(|n| {
                        let v = n.as_u64();
                        if !(BENEF_BASE..CLIENT_BASE).contains(&v) {
                            return false;
                        }
                        let bi = (v - BENEF_BASE) as usize;
                        bi < sim.benefactor_count()
                            && sim.benefactor_online(bi)
                            && sim.benefactor_has(bi, *chunk)
                    })
                    .count();
                (*chunk, live)
            })
            .collect(),
    )
}

/// Audits one committed version against ground truth: readable means every
/// distinct chunk has at least one live replica (see [`live_replicas`]).
pub fn version_readable(sim: &mut SimCluster, path: &str, version: VersionId) -> bool {
    live_replicas(sim, path, version).is_some_and(|counts| counts.iter().all(|(_, live)| *live > 0))
}

/// Lists the committed versions of `path`.
pub fn committed_versions(sim: &mut SimCluster, path: &str) -> Vec<VersionId> {
    let now = sim.now();
    let from = NodeId(CLIENT_BASE);
    let sends = sim.manager_mut().handle_msg(
        from,
        Msg::ListVersions {
            req: RequestId(u64::MAX),
            path: path.to_string(),
        },
        now,
    );
    sends
        .into_iter()
        .find_map(|s| match s.msg {
            Msg::VersionListReply { versions, .. } => {
                Some(versions.into_iter().map(|v| v.version).collect())
            }
            _ => None,
        })
        .unwrap_or_default()
}

/// The 30%-fleet correlated-departure scenario.
///
/// * `scheduler_on` — prioritized, rate-limited repair vs unthrottled FIFO.
/// * `with_trace` — run the departure trace, or stay calm (the baseline).
///
/// Client 0 pre-populates [`BASE_FILES`] replication-3 checkpoints; the
/// departure waves hit at [`CHURN_WAVE_AT`] and [`CHURN_STAGGER`] later
/// (±2 s jitter); client 1 writes a [`VICTIM_MB`] MB checkpoint starting
/// at [`VICTIM_START`] — just before the first wave's leases expire — so
/// its ingest tail rides through detection and the rebuild storm.
pub fn churn_departure(scheduler_on: bool, with_trace: bool) -> ChurnOutcome {
    let mut cfg = SimConfig::gige(CHURN_FLEET, 2);
    cfg.pool.repair_scheduler = scheduler_on;
    cfg.benefactor_cfg = Some(chaos_bcfg(&cfg.pool));
    let mut sim = SimCluster::new(cfg);
    for f in 0..BASE_FILES {
        let mut job = WriteJob::new(format!("/ckpt/base{f}.n0"), BASE_FILE_MB * MB, sw(64 << 20));
        job.replication = 3;
        sim.submit(0, job);
    }
    let victim_path = "/ckpt/victim.n0";
    // A modest write buffer: big enough to stream at NIC speed when calm,
    // small enough that a survivor disk stalling under rebuild writes
    // shows up as application-visible blocking (the latency a real
    // checkpointing app with bounded dirty memory would see).
    let mut victim = WriteJob::new(victim_path, VICTIM_MB * MB, sw(8 << 20));
    victim.start = VICTIM_START;
    sim.submit(1, victim);
    if with_trace {
        let trace = correlated_departure(
            CHURN_FLEET,
            CHURN_FRAC,
            0.5,
            CHURN_WAVE_AT,
            CHURN_STAGGER,
            CHURN_SEED,
        );
        sim.schedule_trace(&trace);
    }
    let report = sim.run(Dur::from_secs(45));
    let v = report
        .results
        .iter()
        .find(|r| r.path == victim_path)
        .expect("victim result");
    let (victim_p50, victim_p99, victim_failed) = (v.ingest.p50(), v.ingest.p99(), v.failed);
    let victim_max = v.ingest.max();
    let victim_done = v.stats.done_at;
    assert!(
        report
            .results
            .iter()
            .filter(|r| r.path != victim_path)
            .all(|r| !r.failed),
        "pre-population must succeed"
    );
    let mut lost = 0;
    let mut audited = 0;
    for f in 0..BASE_FILES {
        let path = format!("/ckpt/base{f}.n0");
        for version in committed_versions(&mut sim, &path) {
            audited += 1;
            if !version_readable(&mut sim, &path, version) {
                lost += 1;
            }
        }
    }
    sim.manager().check_invariants();
    let label = match (scheduler_on, with_trace) {
        (_, false) => "calm",
        (true, true) => "churn+sched",
        (false, true) => "churn+fifo",
    };
    ChurnOutcome {
        victim_p50,
        victim_p99,
        victim_failed,
        lost_versions: lost,
        audited_versions: audited,
        backlog_peak: report.metrics.backlog_peak(),
        repair_cleared_at: report.metrics.backlog_cleared_at(),
        victim_max,
        victim_done,
        replication_copies: report.manager_stats.replication_copies,
        summary: report.metrics.summary(label),
        end: report.end,
    }
}
