//! A user-space file-system facade over a stdchk pool.
//!
//! The paper mounts stdchk under `/stdchk` through FUSE so applications and
//! checkpointing libraries need no modification. A kernel FUSE mount is not
//! available in every environment (and was not essential to the system —
//! the paper measures its cost as ≈32 µs per call), so this crate provides
//! the same *call surface* as a library: open/write/close with session
//! semantics, reads, `readdir`/`getattr` backed by a metadata cache ("most
//! readdir and getattr system calls can be answered without contacting the
//! manager", §IV.E), deletion, retention policies, and the checkpoint
//! naming convention of §IV.D.
//!
//! See [`StdchkFs`] for the entry point and [`naming::CheckpointName`] for
//! `A.Ni.Tj` handling.
//!
//! # The call surface
//!
//! | POSIX-ish call | Facade method | Notes |
//! |---|---|---|
//! | `open(O_CREAT)` + `write` + `close` | [`StdchkFs::create`] → `write_all` → `finish` | session semantics: the image appears atomically at `finish` |
//! | `open(O_RDONLY)` + `read` | [`StdchkFs::open`] / [`StdchkFs::open_version`] | striped reads with replica failover |
//! | `stat` | [`StdchkFs::getattr`] | served from the attr cache within its TTL |
//! | `readdir` | [`StdchkFs::readdir`] | served from the listing cache within its TTL |
//! | `unlink` | [`StdchkFs::unlink`] | drops every version; chunks are GC'd |
//! | — | [`StdchkFs::checkpoint`] / [`StdchkFs::restart_latest`] | `A.Ni.Tj`-aware write/read of the newest timestep |
//!
//! # Example: a checkpoint round-trip through the facade
//!
//! Runs a real in-process pool (manager + one donor on loopback), writes
//! a checkpoint through the facade, and restarts from it:
//!
//! ```
//! use std::io::Write;
//! use std::sync::Arc;
//! use stdchk_fs::{MountOptions, StdchkFs};
//! use stdchk_net::store::MemStore;
//! use stdchk_net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mgr = ManagerServer::spawn("127.0.0.1:0", Default::default())?;
//! let _donor = BenefactorServer::spawn(BenefactorNetConfig {
//!     manager_addr: mgr.addr().to_string(),
//!     listen: "127.0.0.1:0".into(),
//!     total_space: 1 << 30,
//!     cfg: Default::default(),
//!     store: Arc::new(MemStore::new()),
//! })?;
//! while mgr.online_benefactors() < 1 {
//!     std::thread::sleep(std::time::Duration::from_millis(5));
//! }
//!
//! let fs = StdchkFs::mount(Grid::connect(&mgr.addr().to_string())?, MountOptions::default());
//! // `solver.n0.t1` — timesteps of `solver.n0` become versions of one file.
//! let name = stdchk_fs::naming::CheckpointName::new("solver", 0, 1);
//! let mut ck = fs.checkpoint("/app", &name)?;
//! ck.write_all(b"checkpoint image bytes")?;
//! ck.finish()?; // atomic commit: the image is now visible
//!
//! assert_eq!(fs.getattr("/app/solver.n0")?.size, 22);
//! let (_version, image) = fs.restart_latest("/app", "solver", 0)?;
//! assert_eq!(image, b"checkpoint image bytes");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod naming;

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use naming::CheckpointName;
use stdchk_net::{Grid, GridError, ReadHandle, WriteHandle, WriteOptions};
use stdchk_proto::msg::{DirEntry, FileAttr};
use stdchk_proto::policy::RetentionPolicy;
use stdchk_proto::VersionId;

/// Mount-time options.
#[derive(Clone, Debug)]
pub struct MountOptions {
    /// Defaults applied to every write (protocol, striping, replication).
    pub write: WriteOptions,
    /// How long cached attributes and listings stay valid.
    pub attr_ttl: Duration,
}

impl Default for MountOptions {
    fn default() -> Self {
        MountOptions {
            write: WriteOptions::default(),
            attr_ttl: Duration::from_millis(500),
        }
    }
}

#[derive(Debug)]
struct CacheSlot<T> {
    at: Instant,
    value: T,
}

/// The mounted file-system facade.
///
/// All paths are absolute within the pool namespace (`/app/ck.n0.t3`).
#[derive(Debug)]
pub struct StdchkFs {
    grid: Grid,
    opts: MountOptions,
    attrs: Mutex<HashMap<String, CacheSlot<FileAttr>>>,
    listings: Mutex<HashMap<String, CacheSlot<Vec<DirEntry>>>>,
}

impl StdchkFs {
    /// Mounts the facade over a connected [`Grid`].
    pub fn mount(grid: Grid, opts: MountOptions) -> StdchkFs {
        StdchkFs {
            grid,
            opts,
            attrs: Mutex::new(HashMap::new()),
            listings: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying pool connection.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Opens `path` for writing with the mount's default options. Data is
    /// committed — and becomes visible — when the handle's `finish()` runs
    /// (session semantics).
    ///
    /// # Errors
    ///
    /// Propagates pool errors (e.g. `NoSpace`).
    pub fn create(&self, path: &str) -> Result<WriteHandle, GridError> {
        self.invalidate(path);
        self.grid.create(path, self.opts.write.clone())
    }

    /// Opens `path` for writing with explicit options.
    ///
    /// # Errors
    ///
    /// See [`StdchkFs::create`].
    pub fn create_with(&self, path: &str, opts: WriteOptions) -> Result<WriteHandle, GridError> {
        self.invalidate(path);
        self.grid.create(path, opts)
    }

    /// Opens the latest committed version of `path` for reading.
    ///
    /// # Errors
    ///
    /// `NotFound` if nothing is committed.
    pub fn open(&self, path: &str) -> Result<ReadHandle, GridError> {
        self.grid.open(path, None)
    }

    /// Opens a specific version.
    ///
    /// # Errors
    ///
    /// See [`StdchkFs::open`].
    pub fn open_version(&self, path: &str, version: VersionId) -> Result<ReadHandle, GridError> {
        self.grid.open(path, Some(version))
    }

    /// Stats a path, serving from the attribute cache within the TTL.
    ///
    /// # Errors
    ///
    /// `NotFound` for absent paths.
    pub fn getattr(&self, path: &str) -> Result<FileAttr, GridError> {
        if let Some(slot) = self.attrs.lock().get(path) {
            if slot.at.elapsed() < self.opts.attr_ttl {
                return Ok(slot.value.clone());
            }
        }
        let attr = self.grid.stat(path)?;
        self.attrs.lock().insert(
            path.to_string(),
            CacheSlot {
                at: Instant::now(),
                value: attr.clone(),
            },
        );
        Ok(attr)
    }

    /// Lists a directory, cached within the TTL.
    ///
    /// # Errors
    ///
    /// `NotFound` for absent directories.
    pub fn readdir(&self, path: &str) -> Result<Vec<DirEntry>, GridError> {
        if let Some(slot) = self.listings.lock().get(path) {
            if slot.at.elapsed() < self.opts.attr_ttl {
                return Ok(slot.value.clone());
            }
        }
        let entries = self.grid.list(path)?;
        self.listings.lock().insert(
            path.to_string(),
            CacheSlot {
                at: Instant::now(),
                value: entries.clone(),
            },
        );
        Ok(entries)
    }

    /// Deletes a file (all versions).
    ///
    /// # Errors
    ///
    /// `NotFound` for absent paths.
    pub fn unlink(&self, path: &str) -> Result<(), GridError> {
        self.invalidate(path);
        self.grid.delete(path)
    }

    /// Sets the retention policy of a directory (paper §IV.D: no
    /// intervention / automated replace / automated purge).
    ///
    /// # Errors
    ///
    /// Propagates pool errors.
    pub fn set_policy(&self, dir: &str, policy: RetentionPolicy) -> Result<(), GridError> {
        self.grid.set_policy(dir, policy)
    }

    /// Lists the retained versions of a file.
    ///
    /// # Errors
    ///
    /// `NotFound` for absent paths.
    pub fn versions(&self, path: &str) -> Result<Vec<stdchk_proto::msg::VersionInfo>, GridError> {
        self.grid.versions(path)
    }

    // ---------------------------------------------------------- checkpoints

    /// Opens a checkpoint image for writing under the naming convention:
    /// `dir/A.Ni` receives timestep `Tj` as a new version. Incremental
    /// checkpointing (FsCH dedup against `Tj-1`) applies if enabled in the
    /// mount's write options.
    ///
    /// # Errors
    ///
    /// See [`StdchkFs::create`].
    pub fn checkpoint(&self, dir: &str, name: &CheckpointName) -> Result<WriteHandle, GridError> {
        let path = format!("{}/{}", dir.trim_end_matches('/'), name.logical());
        self.create(&path)
    }

    /// Opens the newest restartable checkpoint of `A.Ni` in `dir`, falling
    /// back to older versions if the newest has lost chunks (a benefactor
    /// crash between write and re-replication).
    ///
    /// # Errors
    ///
    /// `NotFound` if no version can be read at all.
    pub fn restart_latest(
        &self,
        dir: &str,
        app: &str,
        node: u32,
    ) -> Result<(VersionId, Vec<u8>), GridError> {
        let path = format!(
            "{}/{}",
            dir.trim_end_matches('/'),
            CheckpointName::new(app, node, 0).logical()
        );
        let mut versions = self.grid.versions(&path)?;
        versions.reverse(); // newest first
        let mut last_err = GridError::Remote {
            code: stdchk_proto::ErrorCode::NotFound,
            detail: format!("{path}: no readable version"),
        };
        for v in versions {
            match self
                .grid
                .open(&path, Some(v.version))
                .and_then(|r| r.read_all())
            {
                Ok(data) => return Ok((v.version, data)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn invalidate(&self, path: &str) {
        self.attrs.lock().remove(path);
        // Invalidate the parent listing too.
        if let Some(idx) = path.rfind('/') {
            let parent = if idx == 0 { "/" } else { &path[..idx] };
            self.listings.lock().remove(parent);
        }
    }
}
