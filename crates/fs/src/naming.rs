//! The checkpoint naming convention (paper §IV.D).
//!
//! Files are named `A.Ni.Tj`: application `A`, process on node `i`,
//! checkpoint timestep `j`. stdchk treats all timesteps of `A.Ni` as
//! *versions of one logical file*, which is what makes automated
//! replace/purge policies and incremental checkpointing line up with the
//! application's mental model.

use std::fmt;

/// A parsed checkpoint name.
///
/// # Examples
///
/// ```
/// use stdchk_fs::naming::CheckpointName;
///
/// let n = CheckpointName::parse("bms.n4.t12").unwrap();
/// assert_eq!(n.app, "bms");
/// assert_eq!(n.node, 4);
/// assert_eq!(n.timestep, 12);
/// assert_eq!(n.logical(), "bms.n4");
/// assert_eq!(n.to_string(), "bms.n4.t12");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CheckpointName {
    /// Application name (may contain dots).
    pub app: String,
    /// Node index the process runs on.
    pub node: u32,
    /// Checkpoint timestep.
    pub timestep: u64,
}

impl CheckpointName {
    /// Builds a name.
    pub fn new(app: impl Into<String>, node: u32, timestep: u64) -> CheckpointName {
        CheckpointName {
            app: app.into(),
            node,
            timestep,
        }
    }

    /// Parses `A.Ni.Tj` (e.g. `bms.n4.t12`). Returns `None` for names that
    /// do not follow the convention.
    pub fn parse(name: &str) -> Option<CheckpointName> {
        let (rest, t) = name.rsplit_once('.')?;
        let timestep = t.strip_prefix('t')?.parse().ok()?;
        let (app, n) = rest.rsplit_once('.')?;
        let node = n.strip_prefix('n')?.parse().ok()?;
        if app.is_empty() {
            return None;
        }
        Some(CheckpointName {
            app: app.to_string(),
            node,
            timestep,
        })
    }

    /// The logical file name grouping all timesteps: `A.Ni`.
    pub fn logical(&self) -> String {
        format!("{}.n{}", self.app, self.node)
    }
}

impl fmt::Display for CheckpointName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.n{}.t{}", self.app, self.node, self.timestep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in ["a.n0.t0", "bms.n4.t12", "my.app.name.n100.t999"] {
            let n = CheckpointName::parse(s).expect(s);
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn dotted_app_names_parse() {
        let n = CheckpointName::parse("proj.v2.sim.n3.t7").unwrap();
        assert_eq!(n.app, "proj.v2.sim");
        assert_eq!(n.logical(), "proj.v2.sim.n3");
    }

    #[test]
    fn invalid_names_rejected() {
        for s in ["", "plain", "a.n1", "a.t1", "a.nx.t1", "a.n1.tx", ".n1.t1"] {
            assert!(CheckpointName::parse(s).is_none(), "{s} should not parse");
        }
    }
}
