//! Tests of the file-system facade over a live loopback pool.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_fs::naming::CheckpointName;
use stdchk_fs::{MountOptions, StdchkFs};
use stdchk_net::store::MemStore;
use stdchk_net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer};
use stdchk_proto::policy::RetentionPolicy;

struct Fixture {
    mgr: ManagerServer,
    _benefactors: Vec<BenefactorServer>,
}

fn pool(n: usize) -> Fixture {
    let mut cfg = PoolConfig::fast_for_tests();
    cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn("127.0.0.1:0", cfg).expect("manager");
    let benefactors = (0..n)
        .map(|_| {
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 128 << 20,
                cfg: BenefactorConfig::fast_for_tests(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < n {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(10));
    }
    Fixture {
        mgr,
        _benefactors: benefactors,
    }
}

fn mount(f: &Fixture) -> StdchkFs {
    let grid = Grid::connect(&f.mgr.addr().to_string()).expect("connect");
    StdchkFs::mount(grid, MountOptions::default())
}

#[test]
fn checkpoint_timesteps_become_versions() {
    let f = pool(2);
    let fs = mount(&f);
    for t in 0..3u64 {
        let name = CheckpointName::new("bms", 4, t);
        let mut w = fs.checkpoint("/jobs", &name).expect("checkpoint");
        w.write_all(format!("image at t{t}").as_bytes())
            .expect("write");
        w.finish().expect("finish");
    }
    // All timesteps are versions of the logical file.
    let versions = fs.versions("/jobs/bms.n4").expect("versions");
    assert_eq!(versions.len(), 3);
    // Restart reads the newest.
    let (_, data) = fs.restart_latest("/jobs", "bms", 4).expect("restart");
    assert_eq!(data, b"image at t2");
}

#[test]
fn getattr_and_readdir_are_cached() {
    let f = pool(2);
    let fs = mount(&f);
    let mut w = fs.create("/cache/x.n0").expect("create");
    w.write_all(b"payload").expect("write");
    w.finish().expect("finish");

    let before = f.mgr.stats().transactions;
    for _ in 0..50 {
        fs.getattr("/cache/x.n0").expect("getattr");
        fs.readdir("/cache").expect("readdir");
    }
    let after = f.mgr.stats().transactions;
    // 100 calls served from cache: at most a couple of manager round trips.
    assert!(
        after - before <= 4,
        "metadata cache ineffective: {} transactions",
        after - before
    );
}

#[test]
fn automated_replace_policy_applies_through_facade() {
    let f = pool(2);
    let fs = mount(&f);
    fs.set_policy("/replace", RetentionPolicy::REPLACE)
        .expect("policy");
    for t in 0..4u64 {
        let name = CheckpointName::new("app", 0, t);
        let mut w = fs.checkpoint("/replace", &name).expect("checkpoint");
        w.write_all(format!("v{t}").as_bytes()).expect("write");
        w.finish().expect("finish");
    }
    let versions = fs.versions("/replace/app.n0").expect("versions");
    assert_eq!(versions.len(), 1, "replace keeps only the newest image");
    let (_, data) = fs.restart_latest("/replace", "app", 0).expect("restart");
    assert_eq!(data, b"v3");
    f.mgr.check_invariants();
}

#[test]
fn unlink_invalidates_cache() {
    let f = pool(2);
    let fs = mount(&f);
    let mut w = fs.create("/u/f.n0").expect("create");
    w.write_all(b"z").expect("write");
    w.finish().expect("finish");
    assert!(fs.getattr("/u/f.n0").is_ok());
    fs.unlink("/u/f.n0").expect("unlink");
    // Fresh stat must not come from the cache.
    assert!(fs.grid().stat("/u/f.n0").is_err());
}

/// Like [`pool`], but returns handles to the blob stores so tests can lose
/// chunks behind the benefactors' backs.
fn pool_with_stores(n: usize) -> (Fixture, Vec<Arc<MemStore>>) {
    let mut cfg = PoolConfig::fast_for_tests();
    cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn("127.0.0.1:0", cfg).expect("manager");
    let stores: Vec<Arc<MemStore>> = (0..n).map(|_| Arc::new(MemStore::new())).collect();
    let benefactors = stores
        .iter()
        .map(|store| {
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 128 << 20,
                cfg: BenefactorConfig::fast_for_tests(),
                store: Arc::clone(store) as Arc<dyn stdchk_net::store::ChunkStore>,
            })
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < n {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(10));
    }
    (
        Fixture {
            mgr,
            _benefactors: benefactors,
        },
        stores,
    )
}

#[test]
fn restart_latest_falls_back_to_older_readable_version() {
    use stdchk_net::store::ChunkStore;

    let (f, stores) = pool_with_stores(2);
    let fs = mount(&f);
    // Version 1 (t0).
    let mut w = fs
        .checkpoint("/fb", &CheckpointName::new("sim", 2, 0))
        .expect("ckpt t0");
    w.write_all(b"good old image").expect("write");
    w.finish().expect("finish t0");
    let v1_chunks: Vec<_> = stores.iter().flat_map(|s| s.ids().expect("ids")).collect();
    // Version 2 (t1), different content.
    let mut w = fs
        .checkpoint("/fb", &CheckpointName::new("sim", 2, 1))
        .expect("ckpt t1");
    w.write_all(b"fresh but doomed image").expect("write");
    w.finish().expect("finish t1");
    // A "crash" loses every chunk unique to version 2 from the donated
    // disks (the benefactors' indices still advertise them).
    for s in &stores {
        for id in s.ids().expect("ids") {
            if !v1_chunks.contains(&id) {
                s.delete(id).expect("delete");
            }
        }
    }
    // Restart must skip the unreadable newest version and return t0's data.
    let (version, data) = fs.restart_latest("/fb", "sim", 2).expect("fallback");
    assert_eq!(data, b"good old image");
    let versions = fs.versions("/fb/sim.n2").expect("versions");
    assert_eq!(
        versions.first().expect("v1").version,
        version,
        "fell back to the oldest"
    );
}

#[test]
fn create_invalidates_attr_and_listing_caches() {
    let f = pool(2);
    let fs = mount(&f);
    let mut w = fs.create("/inv/a.n0").expect("create");
    w.write_all(b"v1").expect("write");
    w.finish().expect("finish");

    // Warm both caches.
    let before = fs.getattr("/inv/a.n0").expect("getattr");
    assert_eq!(before.versions, 1);
    assert_eq!(fs.readdir("/inv").expect("readdir").len(), 1);

    // A new version through the facade must invalidate the cached attr:
    // the fresh stat shows two versions immediately, not after the TTL.
    let mut w = fs.create("/inv/a.n0").expect("create v2");
    w.write_all(b"version two").expect("write");
    w.finish().expect("finish");
    let after = fs.getattr("/inv/a.n0").expect("getattr");
    assert_eq!(after.versions, 2, "stale attr served from cache");
    assert_eq!(after.size, b"version two".len() as u64);

    // Creating a sibling invalidates the parent listing too.
    let mut w = fs.create("/inv/b.n0").expect("create sibling");
    w.write_all(b"x").expect("write");
    w.finish().expect("finish");
    let names: Vec<String> = fs
        .readdir("/inv")
        .expect("readdir")
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(
        names.contains(&"b.n0".to_string()),
        "stale listing: {names:?}"
    );
}

#[test]
fn unlink_invalidates_attr_and_listing_caches() {
    let f = pool(2);
    let fs = mount(&f);
    for p in ["/rm/keep.n0", "/rm/gone.n0"] {
        let mut w = fs.create(p).expect("create");
        w.write_all(b"data").expect("write");
        w.finish().expect("finish");
    }
    // Warm the caches.
    assert!(fs.getattr("/rm/gone.n0").is_ok());
    assert_eq!(fs.readdir("/rm").expect("readdir").len(), 2);

    fs.unlink("/rm/gone.n0").expect("unlink");
    // Both the cached attr and the cached parent listing must be gone.
    assert!(
        fs.getattr("/rm/gone.n0").is_err(),
        "stale attr after unlink"
    );
    let names: Vec<String> = fs
        .readdir("/rm")
        .expect("readdir")
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(
        names,
        vec!["keep.n0".to_string()],
        "stale listing after unlink"
    );
}
