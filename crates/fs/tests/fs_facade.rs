//! Tests of the file-system facade over a live loopback pool.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_fs::naming::CheckpointName;
use stdchk_fs::{MountOptions, StdchkFs};
use stdchk_net::store::MemStore;
use stdchk_net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer};
use stdchk_proto::policy::RetentionPolicy;

struct Fixture {
    mgr: ManagerServer,
    _benefactors: Vec<BenefactorServer>,
}

fn pool(n: usize) -> Fixture {
    let mut cfg = PoolConfig::fast_for_tests();
    cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn("127.0.0.1:0", cfg).expect("manager");
    let benefactors = (0..n)
        .map(|_| {
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 128 << 20,
                cfg: BenefactorConfig::fast_for_tests(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while mgr.online_benefactors() < n {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(10));
    }
    Fixture {
        mgr,
        _benefactors: benefactors,
    }
}

fn mount(f: &Fixture) -> StdchkFs {
    let grid = Grid::connect(&f.mgr.addr().to_string()).expect("connect");
    StdchkFs::mount(grid, MountOptions::default())
}

#[test]
fn checkpoint_timesteps_become_versions() {
    let f = pool(2);
    let fs = mount(&f);
    for t in 0..3u64 {
        let name = CheckpointName::new("bms", 4, t);
        let mut w = fs.checkpoint("/jobs", &name).expect("checkpoint");
        w.write_all(format!("image at t{t}").as_bytes()).expect("write");
        w.finish().expect("finish");
    }
    // All timesteps are versions of the logical file.
    let versions = fs.versions("/jobs/bms.n4").expect("versions");
    assert_eq!(versions.len(), 3);
    // Restart reads the newest.
    let (_, data) = fs.restart_latest("/jobs", "bms", 4).expect("restart");
    assert_eq!(data, b"image at t2");
}

#[test]
fn getattr_and_readdir_are_cached() {
    let f = pool(2);
    let fs = mount(&f);
    let mut w = fs.create("/cache/x.n0").expect("create");
    w.write_all(b"payload").expect("write");
    w.finish().expect("finish");

    let before = f.mgr.stats().transactions;
    for _ in 0..50 {
        fs.getattr("/cache/x.n0").expect("getattr");
        fs.readdir("/cache").expect("readdir");
    }
    let after = f.mgr.stats().transactions;
    // 100 calls served from cache: at most a couple of manager round trips.
    assert!(
        after - before <= 4,
        "metadata cache ineffective: {} transactions",
        after - before
    );
}

#[test]
fn automated_replace_policy_applies_through_facade() {
    let f = pool(2);
    let fs = mount(&f);
    fs.set_policy("/replace", RetentionPolicy::REPLACE)
        .expect("policy");
    for t in 0..4u64 {
        let name = CheckpointName::new("app", 0, t);
        let mut w = fs.checkpoint("/replace", &name).expect("checkpoint");
        w.write_all(format!("v{t}").as_bytes()).expect("write");
        w.finish().expect("finish");
    }
    let versions = fs.versions("/replace/app.n0").expect("versions");
    assert_eq!(versions.len(), 1, "replace keeps only the newest image");
    let (_, data) = fs.restart_latest("/replace", "app", 0).expect("restart");
    assert_eq!(data, b"v3");
    f.mgr.check_invariants();
}

#[test]
fn unlink_invalidates_cache() {
    let f = pool(2);
    let fs = mount(&f);
    let mut w = fs.create("/u/f.n0").expect("create");
    w.write_all(b"z").expect("write");
    w.finish().expect("finish");
    assert!(fs.getattr("/u/f.n0").is_ok());
    fs.unlink("/u/f.n0").expect("unlink");
    // Fresh stat must not come from the cache.
    assert!(fs.grid().stat("/u/f.n0").is_err());
}
