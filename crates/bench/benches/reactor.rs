//! Transport benchmark: the epoll reactor vs the legacy
//! thread-per-connection backend under concurrent checkpoint sessions.
//!
//! For each backend and each session count (64 / 256 / 512 at full
//! scale), an in-process pool (manager + 3 MemStore benefactors) serves
//! that many *simultaneous* write sessions — each its own `Grid` with its
//! own manager and benefactor connections, exactly the shape of a desktop
//! grid pool checkpointing at once. The client side is identical in both
//! arms (one shared `GridRuntime` + a single nonblocking driver thread),
//! so the measured difference is the server transport.
//!
//! Reported per configuration:
//!
//! - **io wall-clock**: first write byte → last commit acknowledged;
//! - **aggregate MB/s** over that window;
//! - **setup wall-clock** (connect + create): dominated by serial RPC
//!   latency, reported for completeness;
//! - **peak process threads**, the scalability story: the reactor stays
//!   O(workers) while thread-per-connection grows with sessions.
//!
//! Writes `BENCH_reactor.json` at the workspace root (override with
//! `STDCHK_BENCH_OUT`). `--smoke` / `STDCHK_BENCH_SMOKE=1` shrinks the
//! session counts so CI keeps the harness alive in seconds.

use std::fs;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_net::store::MemStore;
use stdchk_net::{
    Backend, BenefactorNetConfig, BenefactorServer, Grid, GridRuntime, ManagerServer, ServerOpts,
    WriteOptions,
};
use stdchk_util::bytesize::to_mbps;
use stdchk_util::mix64;

/// Bytes written per session (two 64 KiB chunks).
const FILE_BYTES: usize = 128 << 10;
const CHUNK: u32 = 64 << 10;

struct RunResult {
    backend: &'static str,
    sessions: usize,
    setup_secs: f64,
    io_secs: f64,
    agg_mb_per_s: f64,
    peak_threads: usize,
}

fn process_threads() -> usize {
    fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| mix64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)) as u8)
        .collect()
}

fn pool_cfg() -> PoolConfig {
    let mut cfg = PoolConfig::fast_for_tests();
    cfg.chunk_size = CHUNK;
    // Sessions are held open concurrently for the whole run.
    cfg.reservation_ttl = stdchk_util::Dur::from_secs(600);
    cfg
}

fn benef_cfg() -> BenefactorConfig {
    let mut cfg = BenefactorConfig::fast_for_tests();
    cfg.gc_grace = stdchk_util::Dur::from_secs(600);
    cfg
}

fn run_one(backend: Backend, sessions: usize) -> RunResult {
    let name = match backend {
        Backend::Reactor => "reactor",
        Backend::Threaded => "threaded",
    };
    let opts = ServerOpts {
        backend,
        workers: 4,
        idle_timeout: Some(Duration::from_secs(120)),
        ..ServerOpts::default()
    };
    let mgr = ManagerServer::spawn_with("127.0.0.1:0", pool_cfg(), opts).expect("manager");
    let benefactors: Vec<BenefactorServer> = (0..3)
        .map(|_| {
            BenefactorServer::spawn_with(
                BenefactorNetConfig {
                    manager_addr: mgr.addr().to_string(),
                    listen: "127.0.0.1:0".into(),
                    total_space: 8 << 30,
                    cfg: benef_cfg(),
                    store: Arc::new(MemStore::new()),
                },
                opts,
            )
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < 3 {
        assert!(Instant::now() < deadline, "pool never came online");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Client side is the reactor runtime in BOTH arms: the variable under
    // test is the server transport.
    let rt = GridRuntime::with_workers(2).expect("runtime");
    let addr = mgr.addr().to_string();
    let data = payload(FILE_BYTES, sessions as u64);
    let write_opts = WriteOptions {
        session: SessionConfig {
            protocol: WriteProtocol::SlidingWindow { buffer: 1 << 20 },
            ..SessionConfig::default()
        },
        ..WriteOptions::default()
    };

    let setup_start = Instant::now();
    let grids: Vec<Grid> = (0..sessions)
        .map(|_| Grid::connect_on(&rt, &addr).expect("connect"))
        .collect();
    let mut handles: Vec<(stdchk_net::WriteHandle, usize)> = grids
        .iter()
        .enumerate()
        .map(|(i, g)| {
            (
                g.create(&format!("/bench/s{i}.n0"), write_opts.clone())
                    .expect("create"),
                0usize,
            )
        })
        .collect();
    let setup_secs = setup_start.elapsed().as_secs_f64();

    // One driver thread pumps every session with nonblocking writes.
    let io_start = Instant::now();
    let hard_deadline = Instant::now() + Duration::from_secs(600);
    let mut peak_threads = process_threads();
    loop {
        let mut progress = false;
        let mut all_written = true;
        for (handle, off) in handles.iter_mut() {
            if *off < data.len() {
                all_written = false;
                let upto = (*off + (16 << 10)).min(data.len());
                match handle.poll_write(&data[*off..upto]) {
                    Ok(0) => {}
                    Ok(n) => {
                        *off += n;
                        progress = true;
                        if *off == data.len() {
                            handle.start_close();
                        }
                    }
                    Err(e) => panic!("[{name}/{sessions}] write failed: {e}"),
                }
            }
        }
        peak_threads = peak_threads.max(process_threads());
        if all_written {
            break;
        }
        assert!(
            Instant::now() < hard_deadline,
            "[{name}/{sessions}] writes stalled"
        );
        if !progress {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let mut remaining: Vec<_> = handles.into_iter().map(|(h, _)| h).collect();
    while !remaining.is_empty() {
        assert!(
            Instant::now() < hard_deadline,
            "[{name}/{sessions}] commits stalled"
        );
        let mut still = Vec::with_capacity(remaining.len());
        for mut handle in remaining {
            match handle.try_finish() {
                Some(Ok(_)) => {}
                Some(Err(e)) => panic!("[{name}/{sessions}] session failed: {e}"),
                None => still.push(handle),
            }
        }
        remaining = still;
        peak_threads = peak_threads.max(process_threads());
        if !remaining.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let io_secs = io_start.elapsed().as_secs_f64();
    let agg_mb_per_s = to_mbps((sessions * FILE_BYTES) as f64 / io_secs);

    drop(grids);
    drop(rt);
    for b in &benefactors {
        b.shutdown();
    }
    mgr.shutdown();

    println!(
        "{name:>8} x{sessions:<4} setup {setup_secs:6.2}s  io {io_secs:6.2}s  \
         {agg_mb_per_s:7.1} MB/s  peak threads {peak_threads}"
    );
    RunResult {
        backend: name,
        sessions,
        setup_secs,
        io_secs,
        agg_mb_per_s,
        peak_threads,
    }
}

fn write_json(results: &[RunResult], headline: Option<f64>) {
    let out_path = std::env::var("STDCHK_BENCH_OUT").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
        format!("{}/../../BENCH_reactor.json", env!("CARGO_MANIFEST_DIR"))
    });
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"reactor\",\n");
    body.push_str(&format!("  \"file_bytes\": {FILE_BYTES},\n"));
    body.push_str(&format!("  \"chunk_bytes\": {CHUNK},\n"));
    body.push_str(
        "  \"pool\": {\"benefactors\": 3, \"server_workers\": 4, \"client_workers\": 2},\n",
    );
    body.push_str(&format!(
        "  \"io_speedup_reactor_vs_threaded_at_max_sessions\": {},\n",
        headline
            .map(|h| format!("{h:.2}"))
            .unwrap_or_else(|| "null".into())
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"backend\": \"{}\", \"sessions\": {}, \"setup_secs\": {:.3}, \
             \"io_secs\": {:.3}, \"agg_mb_per_s\": {:.1}, \"peak_threads\": {}}}{}\n",
            r.backend,
            r.sessions,
            r.setup_secs,
            r.io_secs,
            r.agg_mb_per_s,
            r.peak_threads,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    let mut f = fs::File::create(&out_path).expect("create BENCH_reactor.json");
    f.write_all(body.as_bytes())
        .expect("write BENCH_reactor.json");
    println!("\nwrote {out_path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test")
        || std::env::var("STDCHK_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    let session_counts: Vec<usize> = if smoke { vec![16] } else { vec![64, 256, 512] };
    println!(
        "transport bench: {} KiB/session over {:?} concurrent sessions{}",
        FILE_BYTES >> 10,
        session_counts,
        if smoke { " (smoke scale)" } else { "" }
    );
    let mut results = Vec::new();
    for &sessions in &session_counts {
        for backend in [Backend::Threaded, Backend::Reactor] {
            results.push(run_one(backend, sessions));
        }
    }
    let max_sessions = *session_counts.iter().max().unwrap();
    let headline = {
        let io = |b: &str| {
            results
                .iter()
                .find(|r| r.backend == b && r.sessions == max_sessions)
                .map(|r| r.io_secs)
        };
        match (io("threaded"), io("reactor")) {
            (Some(t), Some(r)) if r > 0.0 => Some(t / r),
            _ => None,
        }
    };
    // Smoke runs keep the harness alive in CI; never let their throwaway
    // numbers clobber the committed full-scale result.
    if !smoke || std::env::var("STDCHK_BENCH_OUT").is_ok() {
        write_json(&results, headline);
    } else {
        println!("\nsmoke scale: skipping BENCH_reactor.json (set STDCHK_BENCH_OUT to force)");
    }
}
