//! Figure 6 — Sliding-window write on the 10 Gbps testbed (§V.D): one fat
//! client (10 GbE, SATA), benefactors on 1 GbE.
//!
//! Paper: OAB and ASB keep scaling with stripe width (no client-NIC
//! saturation): up to 325 MB/s OAB and 225 MB/s ASB with four benefactors.

use stdchk_bench::{banner, full_scale, run_sim_write, session_for, MB};
use stdchk_core::session::write::WriteProtocol;
use stdchk_sim::SimConfig;

fn main() {
    let size = if full_scale() { 1000 * MB } else { 512 * MB };
    banner(
        "Figure 6",
        "OAB/ASB of SW on the 10 GbE client vs stripe width",
        &format!("{} MB files, 512 MB buffer", size / MB),
    );
    println!("{:<8} {:>10} {:>10}  (MB/s)", "stripe", "OAB", "ASB");
    let mut oabs = Vec::new();
    for stripe in [1usize, 2, 3, 4] {
        let (oab, asb) = run_sim_write(
            SimConfig::ten_gige(stripe),
            stripe as u32,
            size,
            session_for(WriteProtocol::SlidingWindow { buffer: 512 << 20 }),
        );
        println!("{stripe:<8} {oab:>10.1} {asb:>10.1}");
        oabs.push(oab);
    }
    println!("\npaper anchors: OAB 325 MB/s and ASB 225 MB/s at stripe 4, near-linear scaling");
    assert!(
        oabs[3] > 2.5 * oabs[0],
        "10 GbE client must keep scaling: {oabs:?}"
    );
    assert!(oabs[3] > 250.0, "4-benefactor OAB too low: {}", oabs[3]);
}
