//! Table 4 — CbCH no-overlap parameter sweep: window size m ∈ {20, 32, 64,
//! 128, 256} bytes × boundary bits k ∈ {8, 10, 12, 14} on the BLCR 5-min
//! trace: similarity, throughput, and average / min / max chunk sizes.
//!
//! Paper shapes: larger k → larger and more variable chunks; larger m →
//! lower similarity (for k ≥ 10); throughput roughly of the same order
//! across the sweep. Paper absolute chunk sizes are dominated by the
//! content structure of real BLCR images; synthetic content yields the
//! analytic m·2^k expectation instead (documented in EXPERIMENTS.md).

use stdchk_bench::{banner, full_scale, run_heuristic};
use stdchk_chunker::CbChunker;
use stdchk_workloads::{TraceConfig, TraceKind};

fn main() {
    let (img, count) = if full_scale() {
        (32 << 20, 8)
    } else {
        (8 << 20, 4)
    };
    banner(
        "Table 4",
        "CbCH no-overlap sweep on the BLCR 5-min trace",
        &format!("{} images of {} MiB", count, img >> 20),
    );
    println!(
        "{:>3} {:>5} | {:>7} {:>9} {:>10} {:>10} {:>10}",
        "k", "m", "sim %", "MB/s", "avg KB", "min KB", "max KB"
    );
    let trace = TraceConfig {
        image_size: img,
        count,
        kind: TraceKind::blcr_5min(),
        seed: 11,
    };
    let mut sim_by_m_at_k12: Vec<f64> = Vec::new();
    let mut avg_by_k_at_m32: Vec<f64> = Vec::new();
    for k in [8u32, 10, 12, 14] {
        for m in [20usize, 32, 64, 128, 256] {
            let c = CbChunker::no_overlap(m, k).with_max_chunk(16 << 20);
            let run = run_heuristic(&c, trace);
            println!(
                "{:>3} {:>5} | {:>7.1} {:>9.1} {:>10.1} {:>10.1} {:>10.1}",
                k,
                m,
                run.similarity * 100.0,
                run.throughput_mbps,
                run.avg_chunk / 1e3,
                run.min_chunk / 1e3,
                run.max_chunk / 1e3
            );
            if k == 12 {
                sim_by_m_at_k12.push(run.similarity);
            }
            if m == 32 {
                avg_by_k_at_m32.push(run.avg_chunk);
            }
        }
    }
    println!("\npaper shapes: chunk size grows with k; similarity drops as m grows;");
    println!("(absolute sizes differ: synthetic content gives the analytic m·2^k)");
    assert!(
        sim_by_m_at_k12[0] > sim_by_m_at_k12[4],
        "similarity must drop with window size: {sim_by_m_at_k12:?}"
    );
    assert!(
        avg_by_k_at_m32.windows(2).all(|w| w[0] < w[1] * 1.2),
        "avg chunk should grow with k: {avg_by_k_at_m32:?}"
    );
}
