//! Zero-copy data path benchmark: vectored/`sendfile` transmit vs the
//! copying baseline, on the real TCP stack over loopback.
//!
//! Two identical single-benefactor pools run side by side, differing only
//! in `STDCHK_ZEROCOPY` (captured at spawn/dial time by each pool and its
//! clients):
//!
//! - **ingest**: each round writes one fresh file per arm through the
//!   client (round-unique content, so dedup ships every byte); the
//!   client-side difference is writev of shared payload segments vs
//!   flattening every `PutChunk` into a contiguous buffer;
//! - **saturated read**: a raw pipelined data-plane client (windowed
//!   `GetChunk`, identical in both arms) drains the first file straight
//!   off one benefactor. All data chunks are force-sealed beforehand
//!   (a roller put rotates the active segment), so the zero-copy arm
//!   serves every payload with `sendfile` — the copying arm preads and
//!   flattens. The server's transport counters are recorded as proof:
//!   the zero-copy arm must report **zero** copied payload bytes.
//!
//! Rounds alternate arm order and the headline is the median of paired
//! per-round ratios (like `store.rs`), so drift cancels. Writes
//! `BENCH_zerocopy.json` at the workspace root (override with
//! `STDCHK_BENCH_OUT`). `--smoke` / `STDCHK_BENCH_SMOKE=1` shrinks the
//! file and round count so CI finishes in seconds.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_net::store::{ChunkStore, SegmentStore, SegmentStoreConfig};
use stdchk_net::{
    BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, ServerOpts, WriteOptions,
};
use stdchk_proto::frame::{read_frame, write_frame};
use stdchk_proto::ids::{ChunkId, RequestId};
use stdchk_proto::msg::Msg;
use stdchk_util::bytesize::to_mbps;
use stdchk_util::mix64;

const CHUNK: u32 = 4 << 20;
const SEGMENT_BYTES: u64 = 16 << 20;
/// Saturated-read request window (in-flight `GetChunk`s).
const READ_WINDOW: usize = 16;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| mix64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)) as u8)
        .collect()
}

struct Arm {
    name: &'static str,
    /// `STDCHK_ZEROCOPY` value this arm's servers and clients capture.
    env: &'static str,
    mgr: ManagerServer,
    benef: BenefactorServer,
    store: Arc<SegmentStore>,
    grid: Grid,
    dir: std::path::PathBuf,
    ingest_secs: Vec<f64>,
    read_secs: Vec<f64>,
}

impl Arm {
    /// Re-asserts this arm's env before any operation that may lazily
    /// dial a connection (dial-side `ConnOpts` read it at connect time).
    fn enter(&self) {
        std::env::set_var("STDCHK_ZEROCOPY", self.env);
    }
}

fn spawn_arm(name: &'static str, env: &'static str) -> Arm {
    std::env::set_var("STDCHK_ZEROCOPY", env);
    let dir = std::env::temp_dir().join(format!("stdchk-bench-zc-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = CHUNK;
    pool_cfg.reservation_ttl = stdchk_util::Dur::from_secs(600);
    let mut benef_cfg = BenefactorConfig::fast_for_tests();
    benef_cfg.gc_grace = stdchk_util::Dur::from_secs(600);
    let opts = ServerOpts {
        workers: 4,
        idle_timeout: Some(Duration::from_secs(300)),
        ..ServerOpts::default()
    };
    let mgr = ManagerServer::spawn_with("127.0.0.1:0", pool_cfg, opts).expect("manager");
    let store = Arc::new(
        SegmentStore::open_with(
            &dir,
            SegmentStoreConfig {
                segment_bytes: SEGMENT_BYTES,
                ..Default::default()
            },
        )
        .expect("store"),
    );
    let benef = BenefactorServer::spawn_with(
        BenefactorNetConfig {
            manager_addr: mgr.addr().to_string(),
            listen: "127.0.0.1:0".into(),
            total_space: 8 << 30,
            cfg: benef_cfg,
            store: Arc::clone(&store) as Arc<dyn ChunkStore>,
        },
        opts,
    )
    .expect("benefactor");
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < 1 {
        assert!(Instant::now() < deadline, "pool never came online");
        std::thread::sleep(Duration::from_millis(10));
    }
    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    Arm {
        name,
        env,
        mgr,
        benef,
        store,
        grid,
        dir,
        ingest_secs: Vec::new(),
        read_secs: Vec::new(),
    }
}

/// Writes one round-unique file through the client; returns seconds.
fn ingest_round(arm: &Arm, round: usize, data: &[u8]) -> f64 {
    arm.enter();
    let write_opts = WriteOptions {
        session: SessionConfig {
            protocol: WriteProtocol::SlidingWindow { buffer: 8 << 20 },
            ..SessionConfig::default()
        },
        ..WriteOptions::default()
    };
    let start = Instant::now();
    let mut w = arm
        .grid
        .create(&format!("/bench/zc-r{round}.n0"), write_opts)
        .expect("create");
    w.write_all(data).expect("write");
    w.finish().expect("finish");
    start.elapsed().as_secs_f64()
}

/// Drains `chunks` off the benefactor's data plane with a windowed
/// pipeline of `GetChunk`s; returns seconds for the full sweep.
///
/// The drain parses only the 4-byte frame-length headers and skips body
/// bytes through a fixed scratch buffer — no per-frame allocation or
/// decode. The client thus costs exactly one socket copy per byte in
/// BOTH arms (this is a single-core box: client and server timeshare
/// the CPU), so the measured difference is the server's transmit path.
/// `verify_read` separately decodes a full sweep for correctness.
fn read_round(arm: &Arm, chunks: &[(ChunkId, u32)]) -> f64 {
    arm.enter();
    let mut stream = TcpStream::connect(arm.benef.addr()).expect("dial benefactor");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut scratch = vec![0u8; 1 << 20];
    let start = Instant::now();
    let mut next = 0usize; // requests sent
    let mut done = 0usize; // replies fully drained
    let mut hdr = [0u8; 4];
    let mut hdr_have = 0usize;
    let mut body_left = 0usize; // bytes remaining of the current frame
    while done < chunks.len() {
        while next < chunks.len() && next - done < READ_WINDOW {
            write_frame(
                &mut stream,
                &Msg::GetChunk {
                    req: RequestId(next as u64 + 1),
                    chunk: chunks[next].0,
                },
            )
            .expect("request");
            next += 1;
        }
        let n = stream.read(&mut scratch).expect("read");
        assert!(n > 0, "benefactor closed mid-read");
        let mut i = 0usize;
        while i < n {
            if body_left == 0 {
                let take = (4 - hdr_have).min(n - i);
                hdr[hdr_have..hdr_have + take].copy_from_slice(&scratch[i..i + take]);
                hdr_have += take;
                i += take;
                if hdr_have == 4 {
                    body_left = u32::from_le_bytes(hdr) as usize;
                    hdr_have = 0;
                }
            } else {
                let take = body_left.min(n - i);
                body_left -= take;
                i += take;
                if body_left == 0 {
                    done += 1;
                }
            }
        }
    }
    start.elapsed().as_secs_f64()
}

/// Full byte-exact verification of one sweep (outside any timing).
fn verify_read(arm: &Arm, chunks: &[(ChunkId, u32)], data: &[u8]) {
    arm.enter();
    let mut stream = TcpStream::connect(arm.benef.addr()).expect("dial benefactor");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut off = 0usize;
    for (i, (chunk, size)) in chunks.iter().enumerate() {
        write_frame(
            &mut stream,
            &Msg::GetChunk {
                req: RequestId(i as u64 + 1),
                chunk: *chunk,
            },
        )
        .expect("request");
        let Msg::GetChunkOk { data: got, .. } =
            read_frame(&mut stream).expect("reply").expect("conn open")
        else {
            panic!("unexpected reply");
        };
        assert_eq!(
            &got[..],
            &data[off..off + *size as usize],
            "[{}] chunk {i} corrupted",
            arm.name
        );
        off += *size as usize;
    }
    assert_eq!(off, data.len());
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test")
        || std::env::var("STDCHK_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    let file_bytes: usize = if smoke { 8 << 20 } else { 64 << 20 };
    let rounds: usize = if smoke { 2 } else { 7 };
    println!(
        "zero-copy bench: {} MiB file, {} MiB chunks, {rounds} paired rounds{}",
        file_bytes >> 20,
        CHUNK >> 20,
        if smoke { " (smoke scale)" } else { "" }
    );

    let mut zc = spawn_arm("zerocopy", "on");
    let mut copy = spawn_arm("copy", "off");

    // --- Ingest rounds: one fresh file per arm per round, order
    // alternating. Round-unique content defeats cross-round dedup.
    for round in 0..rounds {
        let data = payload(file_bytes, 1000 + round as u64);
        let (first, second): (&Arm, &Arm) = if round % 2 == 0 {
            (&copy, &zc)
        } else {
            (&zc, &copy)
        };
        let t1 = ingest_round(first, round, &data);
        let t2 = ingest_round(second, round, &data);
        let (tc, tz) = if round % 2 == 0 { (t1, t2) } else { (t2, t1) };
        copy.ingest_secs.push(tc);
        zc.ingest_secs.push(tz);
        println!(
            "  ingest r{round}: copy {:7.1} MB/s   zerocopy {:7.1} MB/s",
            to_mbps(file_bytes as f64 / tc),
            to_mbps(file_bytes as f64 / tz),
        );
    }

    // --- Seal everything: one oversized roller put rotates the active
    // segment, so every data chunk is in a sealed segment and the
    // zero-copy arm serves exclusively via sendfile.
    for arm in [&zc, &copy] {
        let roller = vec![0u8; SEGMENT_BYTES as usize];
        arm.store
            .put(ChunkId::for_content(b"zc-bench-roller"), &roller)
            .expect("roller put");
    }

    // Reads sweep round 0's file; its chunk ids are content-derived.
    let read_data = payload(file_bytes, 1000);
    let chunks: Vec<(ChunkId, u32)> = read_data
        .chunks(CHUNK as usize)
        .map(|c| (ChunkId::for_content(c), c.len() as u32))
        .collect();
    verify_read(&zc, &chunks, &read_data);
    verify_read(&copy, &chunks, &read_data);

    let zc_before = zc.benef.transport_stats().expect("reactor stats");
    let copy_before = copy.benef.transport_stats().expect("reactor stats");

    // --- Saturated-read rounds, order alternating.
    for round in 0..rounds {
        let (first, second): (&Arm, &Arm) = if round % 2 == 0 {
            (&zc, &copy)
        } else {
            (&copy, &zc)
        };
        let t1 = read_round(first, &chunks);
        let t2 = read_round(second, &chunks);
        let (tz, tc) = if round % 2 == 0 { (t1, t2) } else { (t2, t1) };
        zc.read_secs.push(tz);
        copy.read_secs.push(tc);
        println!(
            "  read   r{round}: copy {:7.1} MB/s   zerocopy {:7.1} MB/s",
            to_mbps(file_bytes as f64 / tc),
            to_mbps(file_bytes as f64 / tz),
        );
    }

    let zc_stats = zc.benef.transport_stats().expect("reactor stats");
    let copy_stats = copy.benef.transport_stats().expect("reactor stats");
    let zc_read_copied = zc_stats.copied_payload_tx - zc_before.copied_payload_tx;
    let copy_read_copied = copy_stats.copied_payload_tx - copy_before.copied_payload_tx;
    println!(
        "  counters over reads: zerocopy arm copied {zc_read_copied} B \
         (zero-copy {} B); copy arm copied {copy_read_copied} B",
        zc_stats.zerocopy_payload_tx - zc_before.zerocopy_payload_tx,
    );
    assert_eq!(
        zc_read_copied, 0,
        "sealed-segment reads must not copy a single payload byte"
    );
    assert!(
        copy_read_copied > 0,
        "baseline arm must exercise the copying path"
    );

    // Median of paired per-round ratios: robust to drift and outliers.
    let ratio_of = |copy_secs: &[f64], zc_secs: &[f64]| {
        let mut ratios: Vec<f64> = copy_secs.iter().zip(zc_secs).map(|(c, z)| c / z).collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    let read_speedup = ratio_of(&copy.read_secs, &zc.read_secs);
    let ingest_speedup = ratio_of(&copy.ingest_secs, &zc.ingest_secs);
    let read_mbps = |a: &Arm| to_mbps(file_bytes as f64 / median(&a.read_secs));
    let ingest_mbps = |a: &Arm| to_mbps(file_bytes as f64 / median(&a.ingest_secs));
    println!(
        "\nsaturated read: zerocopy {:.1} MB/s vs copy {:.1} MB/s — {read_speedup:.2}x\n\
         ingest:         zerocopy {:.1} MB/s vs copy {:.1} MB/s — {ingest_speedup:.2}x",
        read_mbps(&zc),
        read_mbps(&copy),
        ingest_mbps(&zc),
        ingest_mbps(&copy),
    );

    // Smoke runs keep the harness alive in CI; never let their throwaway
    // numbers clobber the committed full-scale result.
    if !smoke || std::env::var("STDCHK_BENCH_OUT").is_ok() {
        let out_path = std::env::var("STDCHK_BENCH_OUT").unwrap_or_else(|_| {
            format!("{}/../../BENCH_zerocopy.json", env!("CARGO_MANIFEST_DIR"))
        });
        let arm_json = |a: &Arm, read_copied: u64, zc_bytes: u64| {
            format!(
                "    {{\"arm\": \"{}\", \"ingest_mb_per_s\": {:.1}, \"read_mb_per_s\": {:.1}, \
                 \"read_copied_payload_bytes\": {}, \"read_zerocopy_payload_bytes\": {}}}",
                a.name,
                ingest_mbps(a),
                read_mbps(a),
                read_copied,
                zc_bytes,
            )
        };
        let body = format!(
            "{{\n  \"bench\": \"zerocopy\",\n  \"file_bytes\": {file_bytes},\n  \
             \"chunk_bytes\": {CHUNK},\n  \"segment_bytes\": {SEGMENT_BYTES},\n  \
             \"rounds\": {rounds},\n  \
             \"read_speedup_zerocopy_vs_copy\": {read_speedup:.2},\n  \
             \"ingest_speedup_zerocopy_vs_copy\": {ingest_speedup:.2},\n  \"results\": [\n{},\n{}\n  ]\n}}\n",
            arm_json(
                &zc,
                zc_read_copied,
                zc_stats.zerocopy_payload_tx - zc_before.zerocopy_payload_tx
            ),
            arm_json(
                &copy,
                copy_read_copied,
                copy_stats.zerocopy_payload_tx - copy_before.zerocopy_payload_tx
            ),
        );
        let mut f = std::fs::File::create(&out_path).expect("create BENCH_zerocopy.json");
        f.write_all(body.as_bytes())
            .expect("write BENCH_zerocopy.json");
        println!("wrote {out_path}");
    } else {
        println!("smoke scale: skipping BENCH_zerocopy.json (set STDCHK_BENCH_OUT to force)");
    }

    for arm in [zc, copy] {
        arm.benef.shutdown();
        arm.mgr.shutdown();
        let dir = arm.dir.clone();
        drop(arm);
        std::fs::remove_dir_all(&dir).ok();
    }
}
