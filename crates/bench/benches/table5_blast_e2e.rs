//! Table 5 — BLAST end-to-end: total execution time, checkpointing time and
//! data volume, checkpointing to the local disk vs to stdchk (SW + FsCH).
//!
//! Paper: −1.3 % total execution time, −27 % checkpointing time, −69 % data
//! (3.55 TB → 1.14 TB). The application model alternates compute intervals
//! with checkpoint writes; stdchk runs SW with FsCH dedup over a BLCR-like
//! trace whose cross-version similarity matches the paper's 69 % reduction.

use stdchk_bench::{banner, compare, full_scale, MB};
use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::baselines::local_io_time;
use stdchk_sim::{SimCluster, SimConfig, WriteJob};
use stdchk_util::Dur;
use stdchk_workloads::{AppRun, VirtualTrace};

fn main() {
    let scale = if full_scale() { 4 } else { 16 };
    let run = AppRun::blast_like(scale);
    banner(
        "Table 5",
        "BLAST end-to-end: local disk vs stdchk (SW + FsCH)",
        &format!(
            "{} checkpoints of {} MB, {}s compute intervals (paper: ~13k × 280 MB)",
            run.checkpoints,
            run.image_size / MB,
            run.compute_per_interval.as_secs_f64()
        ),
    );
    let cfg = SimConfig::gige(4, 1);

    // Baseline: checkpoint to the local disk.
    let local_ckpt = local_io_time(&cfg, run.image_size).as_secs_f64() * run.checkpoints as f64;
    let local_total = run.total_compute().as_secs_f64() + local_ckpt;
    let local_data = run.total_bytes() as f64;

    // stdchk: SW + FsCH over the similarity-bearing trace.
    let chunks = (run.image_size / (1 << 20)) as usize;
    let mut trace = VirtualTrace::new(chunks, run.similarity, 17);
    let mut sim = SimCluster::new(cfg);
    for _ in 0..run.checkpoints {
        let mut job = WriteJob::new(
            "/blast/run.n0",
            run.image_size,
            SessionConfig {
                protocol: WriteProtocol::SlidingWindow { buffer: 256 << 20 },
                dedup: true,
                ..SessionConfig::default()
            },
        );
        job.tags = Some(trace.next_tags());
        sim.submit(0, job);
    }
    let report = sim.run(Dur::from_secs(1));
    let stdchk_ckpt: f64 = report
        .results
        .iter()
        .map(|r| {
            r.stats
                .app_close_at
                .expect("closed")
                .since(r.stats.open_at)
                .as_secs_f64()
        })
        .sum();
    let stdchk_total = run.total_compute().as_secs_f64() + stdchk_ckpt;
    let stdchk_data: u64 = report.results.iter().map(|r| r.stats.bytes_stored).sum();

    println!(
        "{:<26} {:>14} {:>14} {:>12}",
        "", "local disk", "stdchk", "improvement"
    );
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>11.1}%",
        "total execution time (s)",
        local_total,
        stdchk_total,
        (local_total - stdchk_total) / local_total * 100.0
    );
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>11.1}%",
        "checkpointing time (s)",
        local_ckpt,
        stdchk_ckpt,
        (local_ckpt - stdchk_ckpt) / local_ckpt * 100.0
    );
    println!(
        "{:<26} {:>14.2} {:>14.2} {:>11.1}%",
        "data size (GB)",
        local_data / 1e9,
        stdchk_data as f64 / 1e9,
        (local_data - stdchk_data as f64) / local_data * 100.0
    );
    println!();
    compare(
        "paper total-time improvement",
        1.3,
        (local_total - stdchk_total) / local_total * 100.0,
        "%",
    );
    compare(
        "paper checkpoint-time improvement",
        27.0,
        (local_ckpt - stdchk_ckpt) / local_ckpt * 100.0,
        "%",
    );
    compare(
        "paper data reduction",
        69.0,
        (local_data - stdchk_data as f64) / local_data * 100.0,
        "%",
    );
    let data_red = (local_data - stdchk_data as f64) / local_data;
    assert!(
        (0.55..0.8).contains(&data_red),
        "data reduction should be ≈69%: {data_red}"
    );
    assert!(
        stdchk_ckpt < local_ckpt,
        "stdchk must speed up checkpointing"
    );
}
