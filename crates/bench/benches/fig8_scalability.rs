//! Figure 8 — Aggregate throughput under heavy load: 7 clients each write
//! 100 × 100 MB onto a 20-benefactor pool, client starts staggered by 10 s.
//!
//! Paper: a sustained ≈280 MB/s plateau, "limited by the networking
//! configuration of our testbed" — modelled here as a 300 MB/s switch
//! fabric. Also ≈2800 manager transactions (4 per write).

use stdchk_bench::{banner, full_scale, MB};
use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::{SimCluster, SimConfig, WriteJob};
use stdchk_util::{Dur, Time};

fn main() {
    let files_per_client = if full_scale() { 100 } else { 30 };
    banner(
        "Figure 8",
        "aggregate stdchk throughput over time under 7-client load",
        &format!("7 clients × {files_per_client} × 100 MB, 20 benefactors, 300 MB/s fabric"),
    );
    let mut cfg = SimConfig::gige(20, 7);
    cfg.fabric = Some(300e6);
    let mut sim = SimCluster::new(cfg);
    for c in 0..7 {
        for f in 0..files_per_client {
            let mut job = WriteJob::new(
                format!("/load/c{c}-f{f}.n0"),
                100 * MB,
                SessionConfig {
                    protocol: WriteProtocol::SlidingWindow { buffer: 64 << 20 },
                    ..SessionConfig::default()
                },
            );
            job.stripe_width = 4;
            job.start = Time::from_secs(10 * c as u64);
            sim.submit(c, job);
        }
    }
    let report = sim.run(Dur::from_secs(2));
    // Print a decimated time series (every 10 s) like the paper's plot.
    println!("{:>6} {:>12}", "t (s)", "MB/s");
    let series = &report.persisted_series;
    for (t, bytes) in series.iter().step_by(10) {
        println!("{:>6} {:>12.1}", t, *bytes as f64 / MB as f64);
    }
    // Sustained throughput: mean over the middle half of the run.
    let mid = &series[series.len() / 4..series.len() * 3 / 4];
    let sustained = mid.iter().map(|(_, b)| *b as f64).sum::<f64>() / mid.len() as f64 / MB as f64;
    let total_gb = report.persisted_series.iter().map(|(_, b)| b).sum::<u64>() as f64 / 1e9;
    println!("\nsustained (middle half): {sustained:.1} MB/s — paper: ≈280 MB/s");
    println!(
        "total data {total_gb:.1} GB; manager transactions {} (paper: ~70 GB, ~2800 txns at full scale)",
        report.manager_stats.transactions
    );
    assert!(
        (230.0..330.0).contains(&sustained),
        "sustained throughput should press the 300 MB/s fabric: {sustained}"
    );
}
