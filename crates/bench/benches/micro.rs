//! Criterion micro-benchmarks of the hot paths: SHA-256 hashing, rolling
//! window hashes, chunking heuristics, the wire codec, and manager
//! metadata operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use stdchk_chunker::{CbChunker, CbRollingChunker, Chunker, FsChunker};
use stdchk_core::{Manager, PoolConfig};
use stdchk_proto::codec::Wire;
use stdchk_proto::ids::{ChunkId, NodeId, RequestId};
use stdchk_proto::msg::Msg;
use stdchk_util::mix64;
use stdchk_util::rolling::{RollingHash, WindowHash};
use stdchk_util::sha256::Sha256;
use stdchk_util::Time;

fn data(len: usize) -> Vec<u8> {
    (0..len).map(|i| mix64(i as u64) as u8).collect()
}

fn bench_hashing(c: &mut Criterion) {
    let buf = data(1 << 20);
    let mut g = c.benchmark_group("hashing");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("sha256_1mib", |b| b.iter(|| Sha256::digest(&buf)));
    g.bench_function("rolling_slide_1mib", |b| {
        b.iter(|| {
            let mut rh = RollingHash::new(20);
            for &x in &buf[..20] {
                rh.push(x);
            }
            let mut acc = 0u64;
            for i in 0..buf.len() - 21 {
                rh.slide(buf[i], buf[i + 20]);
                acc ^= rh.value();
            }
            acc
        })
    });
    g.bench_function("window_hash_per_byte_1mib", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            // The paper-faithful overlap cost: full window hash per offset.
            for w in buf.windows(20).step_by(64) {
                acc ^= WindowHash::hash(w);
            }
            acc
        })
    });
    g.finish();
}

fn bench_chunkers(c: &mut Criterion) {
    let buf = data(4 << 20);
    let mut g = c.benchmark_group("chunking");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("fsch_1mib_chunks", |b| {
        b.iter(|| FsChunker::new(1 << 20).split(&buf))
    });
    g.bench_function("cbch_no_overlap_m32_k10", |b| {
        b.iter(|| {
            CbChunker::no_overlap(32, 10)
                .with_max_chunk(8 << 20)
                .split(&buf)
        })
    });
    g.bench_function("cbch_rolling_m32_k10", |b| {
        b.iter(|| {
            CbRollingChunker::new(32, 10)
                .with_max_chunk(8 << 20)
                .split(&buf)
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let msg = Msg::PutChunk {
        req: RequestId(9),
        chunk: ChunkId::test_id(1),
        size: 1 << 20,
        data: bytes::Bytes::from(data(1 << 20)),
        background: false,
    };
    let encoded = msg.to_wire_bytes();
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_put_chunk_1mib", |b| b.iter(|| msg.to_wire_bytes()));
    g.bench_function("decode_put_chunk_1mib", |b| {
        b.iter(|| Msg::from_wire_bytes(&encoded).expect("decode"))
    });
    g.finish();
}

fn bench_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("manager");
    g.sample_size(10);
    g.bench_function("create_commit_cycle", |b| {
        b.iter_batched(
            || {
                let mut mgr = Manager::new(PoolConfig::default());
                for i in 1..=8u64 {
                    mgr.handle_msg(
                        NodeId(i),
                        Msg::Heartbeat {
                            node: NodeId(i),
                            free_space: 1 << 40,
                            total_space: 1 << 40,
                            addr: String::new(),
                        },
                        Time::ZERO,
                    );
                }
                mgr
            },
            |mut mgr| {
                for f in 0..32u64 {
                    let out = mgr.handle_msg(
                        NodeId(100),
                        Msg::CreateFile {
                            req: RequestId(f * 2 + 1),
                            client: NodeId(100),
                            path: format!("/bench/f{f}"),
                            stripe_width: 4,
                            replication: 1,
                            expected_chunks: 8,
                        },
                        Time::ZERO,
                    );
                    let (res, stripe) = match &out[0].msg {
                        Msg::CreateFileOk {
                            reservation,
                            stripe,
                            ..
                        } => (*reservation, stripe.clone()),
                        other => panic!("unexpected {other:?}"),
                    };
                    let id = ChunkId::test_id(f);
                    mgr.handle_msg(
                        NodeId(100),
                        Msg::CommitChunkMap {
                            req: RequestId(f * 2 + 2),
                            reservation: res,
                            entries: vec![stdchk_proto::ChunkEntry { id, size: 1 << 20 }],
                            placements: vec![(id, vec![stripe[0]])],
                            pessimistic: false,
                            dedup: Default::default(),
                        },
                        Time::ZERO,
                    );
                }
                mgr
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_chunkers,
    bench_codec,
    bench_manager
);
criterion_main!(benches);
