//! Figure 5 — Sliding-window ASB vs stripe width across buffer sizes.
//!
//! Paper shape: like Figure 4, slightly lower (the data must also land on
//! benefactor disks): saturation at two benefactors, ~80-110 MB/s plateau.

use stdchk_bench::{banner, full_scale, run_sim_write, session_for, MB};
use stdchk_core::session::write::WriteProtocol;
use stdchk_sim::SimConfig;

fn main() {
    let size = if full_scale() { 1000 * MB } else { 256 * MB };
    banner(
        "Figure 5",
        "SW ASB vs stripe width across buffer sizes",
        &format!("{} MB files on the simulated GigE testbed", size / MB),
    );
    let buffers = [32u64, 64, 128, 256, 512];
    print!("{:<8}", "stripe");
    for b in buffers {
        print!(" {b:>6}MB");
    }
    println!("   (ASB, MB/s)");
    let mut at_stripe2 = 0.0;
    for stripe in [1usize, 2, 4, 8] {
        print!("{stripe:<8}");
        for buffer in buffers {
            let (_, asb) = run_sim_write(
                SimConfig::gige(stripe, 1),
                stripe as u32,
                size,
                session_for(WriteProtocol::SlidingWindow {
                    buffer: buffer << 20,
                }),
            );
            if stripe == 2 && buffer == 128 {
                at_stripe2 = asb;
            }
            print!(" {asb:>8.1}");
        }
        println!();
    }
    println!("\npaper anchor: ASB saturates with two benefactors (~80-110 MB/s)");
    assert!(at_stripe2 > 70.0, "stripe-2 ASB too low: {at_stripe2}");
}
