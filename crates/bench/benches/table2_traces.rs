//! Table 2 — Characteristics of the collected checkpoint traces.
//!
//! The paper's traces (BMS application-level; BLAST under BLCR at 5/15-min
//! intervals; BLAST under Xen) are proprietary; this harness prints the
//! synthetic equivalents actually generated for Tables 3/4 and the scaling
//! applied.

use stdchk_bench::{banner, full_scale};
use stdchk_workloads::{TraceConfig, TraceGenerator, TraceKind};

fn main() {
    let scale = if full_scale() { 1 } else { 16 };
    banner(
        "Table 2",
        "checkpoint trace characteristics (paper vs generated)",
        &format!("sizes and counts divided by {scale}"),
    );
    // (label, checkpointing type, interval min, paper count, paper MB, kind)
    let rows: Vec<(&str, &str, &str, usize, f64, TraceKind)> = vec![
        (
            "BMS",
            "Application",
            "1",
            100,
            2.7,
            TraceKind::ApplicationLevel,
        ),
        (
            "BLAST",
            "Library (BLCR)",
            "5",
            902,
            279.6,
            TraceKind::blcr_5min(),
        ),
        (
            "BLAST",
            "Library (BLCR)",
            "15",
            654,
            308.1,
            TraceKind::blcr_15min(),
        ),
        ("BLAST", "VM (Xen)", "5", 100, 1024.8, TraceKind::xen()),
        ("BLAST", "VM (Xen)", "15", 300, 1024.8, TraceKind::xen()),
    ];
    println!(
        "{:<8} {:<16} {:>9} | {:>8} {:>10} | {:>8} {:>10}",
        "app", "type", "interval", "paper #", "paper MB", "gen #", "gen MB"
    );
    for (app, kind_label, interval, count, mb, kind) in rows {
        let cfg = TraceConfig {
            image_size: ((mb * 1e6) as usize / scale).max(64 << 10),
            count: (count / scale).max(4),
            kind,
            seed: 42,
        };
        let gen = TraceGenerator::new(cfg);
        let images: Vec<_> = gen.images().collect();
        let avg_mb = images.iter().map(|i| i.len() as f64).sum::<f64>() / images.len() as f64 / 1e6;
        println!(
            "{:<8} {:<16} {:>6}min | {:>8} {:>10.1} | {:>8} {:>10.1}",
            app,
            kind_label,
            interval,
            count,
            mb,
            images.len(),
            avg_mb
        );
    }
    println!("\n(the generated traces drive Tables 3 and 4; similarity structure is");
    println!(" parametric — aligned/shifted/fresh fractions per TraceKind)");
}
