//! Ablation — optimistic vs pessimistic write semantics (paper §IV.A,
//! "tunable write semantics"): the write-throughput vs data-durability
//! trade-off, measured as session-completion latency at replication 2.

use stdchk_bench::{banner, MB};
use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::{SimCluster, SimConfig, WriteJob};
use stdchk_util::Dur;

fn run(pessimistic: bool, replication: u32) -> (f64, f64) {
    let mut sim = SimCluster::new(SimConfig::gige(6, 1));
    let mut job = WriteJob::new(
        "/sem/f.n0",
        256 * MB,
        SessionConfig {
            protocol: WriteProtocol::SlidingWindow { buffer: 64 << 20 },
            pessimistic,
            ..SessionConfig::default()
        },
    );
    job.replication = replication;
    sim.submit(0, job);
    let report = sim.run(Dur::from_secs(60));
    let s = &report.results[0].stats;
    (
        s.app_close_at
            .expect("closed")
            .since(s.open_at)
            .as_secs_f64(),
        s.done_at.expect("done").since(s.open_at).as_secs_f64(),
    )
}

fn main() {
    banner(
        "Ablation: write semantics",
        "optimistic vs pessimistic close at replication 2 (256 MB writes)",
        "simulated GigE testbed, 6 benefactors",
    );
    println!(
        "{:<28} {:>14} {:>18}",
        "configuration", "app close (s)", "fully durable (s)"
    );
    let (close_opt, done_opt) = run(false, 2);
    println!(
        "{:<28} {:>14.2} {:>18.2}",
        "optimistic, repl 2", close_opt, done_opt
    );
    let (close_pes, done_pes) = run(true, 2);
    println!(
        "{:<28} {:>14.2} {:>18.2}",
        "pessimistic, repl 2", close_pes, done_pes
    );
    let (close_r1, done_r1) = run(false, 1);
    println!(
        "{:<28} {:>14.2} {:>18.2}",
        "no replication", close_r1, done_r1
    );
    println!("\noptimistic clients return at first-copy safety and let background");
    println!("replication finish; pessimistic clients pay the full durability cost");
    assert!(
        done_pes > done_opt,
        "pessimistic completion must be later: {done_opt} vs {done_pes}"
    );
    assert!(
        (close_opt - close_r1).abs() / close_r1 < 0.3,
        "optimistic close should barely feel replication: {close_r1} vs {close_opt}"
    );
}
