//! Figure 2 — Observed application bandwidth (OAB) vs stripe width for the
//! three write protocols, against the local-I/O, FUSE and NFS baselines.
//!
//! Paper shape: CLW ≈ FUSE ≈ local I/O (~85 MB/s, disk-bound); IW and SW
//! reach ~110 MB/s once two benefactors saturate the client's GigE NIC;
//! NFS trails at 24.8 MB/s.

use stdchk_bench::{banner, full_scale, protocols, run_sim_write, session_for, MB};
use stdchk_sim::baselines::{fuse_local_time, local_io_time, nfs_time, rate_of};
use stdchk_sim::SimConfig;
use stdchk_util::bytesize::to_mbps;

fn main() {
    let size = 1000 * MB;
    let _ = full_scale();
    banner(
        "Figure 2",
        "OAB vs stripe width (1 GB writes in the paper)",
        &format!(
            "{} MB files on the simulated GigE testbed (paper scale)",
            size / MB
        ),
    );
    let stripes = [1usize, 2, 4, 8];
    println!(
        "{:<8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}  (MB/s)",
        "stripe", "CLW", "IW", "SW", "FUSE", "LocalIO", "NFS"
    );
    let cfg0 = SimConfig::gige(8, 1);
    let fuse = rate_of(size, fuse_local_time(&cfg0, size));
    let local = rate_of(size, local_io_time(&cfg0, size));
    let nfs = rate_of(size, nfs_time(size, 24.8e6));
    let mut sw_results = Vec::new();
    for stripe in stripes {
        let mut row = Vec::new();
        for (_, protocol) in protocols() {
            let (oab, _) = run_sim_write(
                SimConfig::gige(stripe, 1),
                stripe as u32,
                size,
                session_for(protocol),
            );
            row.push(oab);
        }
        sw_results.push(row[2]);
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1}",
            stripe,
            row[0],
            row[1],
            row[2],
            to_mbps(fuse),
            to_mbps(local),
            to_mbps(nfs)
        );
    }
    println!(
        "\npaper anchors: SW/IW ≈ 110 MB/s at stripe ≥ 2; CLW ≈ FUSE ≈ 85 MB/s; NFS 24.8 MB/s"
    );
    assert!(
        sw_results[1] > sw_results[0],
        "SW must improve from stripe 1 to 2"
    );
    assert!(
        (sw_results[3] - sw_results[1]).abs() / sw_results[1] < 0.2,
        "SW saturates by stripe 2 (paper: two benefactors saturate a client)"
    );
}
