//! Fleet-churn benchmark: what does rate-limited, prioritized repair buy a
//! foreground writer when 30% of the fleet departs — and what does the
//! departure cost in durability and rebuild time?
//!
//! Runs the acceptance scenario from `stdchk_sim::scenarios` three times on
//! the simulated GigE fleet (the real manager/benefactor/session state
//! machines over calibrated virtual hardware, so the run is deterministic
//! and takes seconds):
//!
//! * **calm** — no churn; the victim writer's baseline ingest tail.
//! * **churn+sched** — two correlated departure waves with the repair
//!   scheduler on (per-source + fleet token buckets, fewest-replicas-first
//!   priority).
//! * **churn+fifo** — the same waves with `repair_scheduler: false`
//!   (the pre-scheduler FIFO behaviour, equivalent to deploying with
//!   `STDCHK_REPAIR_SCHED=off`): the rebuild storm floods survivor disks
//!   and the victim's tail latency explodes.
//!
//! The headline numbers are each churn arm's victim ingest p99 as a
//! multiple of calm, committed-version loss (must be zero in both arms —
//! the waves are survivable by construction), and the time from first
//! departure until the repair backlog drains. Writes `BENCH_churn.json`
//! at the workspace root (override with `STDCHK_BENCH_OUT`).
//!
//! `--smoke` / `STDCHK_BENCH_SMOKE=1` is accepted for CI parity; the
//! scenario is already smoke-sized, so it changes nothing.

use std::fs;
use std::io::Write as _;

use stdchk_sim::scenarios::{
    churn_departure, ChurnOutcome, BASE_FILES, BASE_FILE_MB, CHURN_FLEET, CHURN_FRAC, CHURN_SEED,
    CHURN_STAGGER, CHURN_WAVE_AT, VICTIM_MB,
};

struct Arm {
    name: &'static str,
    repair_scheduler: bool,
    outcome: ChurnOutcome,
    p99_vs_calm: f64,
    re_replication_secs: Option<u64>,
}

fn write_json(calm: &ChurnOutcome, arms: &[Arm]) {
    let out_path = std::env::var("STDCHK_BENCH_OUT").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
        format!("{}/../../BENCH_churn.json", env!("CARGO_MANIFEST_DIR"))
    });
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"churn\",\n");
    body.push_str(&format!(
        "  \"scenario\": {{\"fleet\": {CHURN_FLEET}, \"departing_frac\": {CHURN_FRAC}, \
         \"waves\": 2, \"first_wave_secs\": {}, \"stagger_secs\": {}, \
         \"base_files\": {BASE_FILES}, \"base_file_mb\": {BASE_FILE_MB}, \
         \"base_replication\": 3, \"victim_mb\": {VICTIM_MB}, \"seed\": {CHURN_SEED}}},\n",
        CHURN_WAVE_AT.as_secs_f64() as u64,
        CHURN_STAGGER.as_secs_f64() as u64,
    ));
    body.push_str(&format!(
        "  \"calm_ingest_p99_secs\": {:.6},\n",
        calm.victim_p99.as_secs_f64()
    ));
    body.push_str("  \"arms\": [\n");
    for (i, a) in arms.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"arm\": \"{}\", \"repair_scheduler\": {}, \
             \"victim_ingest_p99_secs\": {:.6}, \"p99_vs_calm\": {:.3}, \
             \"lost_versions\": {}, \"audited_versions\": {}, \
             \"re_replication_secs\": {}, \"repair_backlog_peak\": {}, \
             \"replication_copies\": {}}}{}\n",
            a.name,
            a.repair_scheduler,
            a.outcome.victim_p99.as_secs_f64(),
            a.p99_vs_calm,
            a.outcome.lost_versions,
            a.outcome.audited_versions,
            a.re_replication_secs
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".into()),
            a.outcome.backlog_peak,
            a.outcome.replication_copies,
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    let mut f = fs::File::create(&out_path).expect("create BENCH_churn.json");
    f.write_all(body.as_bytes())
        .expect("write BENCH_churn.json");
    println!("\nwrote {out_path}");
}

fn main() {
    // Smoke mode exists for CI-harness parity with the other benches; the
    // simulated scenario already runs in seconds at full scale.
    let _smoke = std::env::args().any(|a| a == "--smoke" || a == "--test")
        || std::env::var("STDCHK_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    println!(
        "churn bench: {CHURN_FLEET}-node fleet, {:.0}% departing in 2 waves \
         (t={}s, +{}s), {BASE_FILES}x{BASE_FILE_MB} MB base @ repl 3, \
         {VICTIM_MB} MB victim checkpoint",
        CHURN_FRAC * 100.0,
        CHURN_WAVE_AT.as_secs_f64() as u64,
        CHURN_STAGGER.as_secs_f64() as u64,
    );

    let calm = churn_departure(true, false);
    println!("{}", calm.summary);
    let mut arms = Vec::new();
    for (name, scheduler_on) in [("churn+sched", true), ("churn+fifo", false)] {
        let outcome = churn_departure(scheduler_on, true);
        println!("{}", outcome.summary);
        let p99_vs_calm =
            outcome.victim_p99.as_secs_f64() / calm.victim_p99.as_secs_f64().max(1e-9);
        let re_replication_secs = outcome
            .repair_cleared_at
            .map(|t| t.saturating_sub(CHURN_WAVE_AT.as_secs_f64() as u64));
        arms.push(Arm {
            name,
            repair_scheduler: scheduler_on,
            outcome,
            p99_vs_calm,
            re_replication_secs,
        });
    }

    for a in &arms {
        println!(
            "{:>12}  victim p99 {:8.4}s ({:5.2}x calm)  lost {}/{}  \
             re-replication {}s  backlog peak {}  copies {}",
            a.name,
            a.outcome.victim_p99.as_secs_f64(),
            a.p99_vs_calm,
            a.outcome.lost_versions,
            a.outcome.audited_versions,
            a.re_replication_secs
                .map(|s| s.to_string())
                .unwrap_or_else(|| "?".into()),
            a.outcome.backlog_peak,
            a.outcome.replication_copies,
        );
        assert_eq!(
            a.outcome.lost_versions, 0,
            "{}: the staggered waves are survivable by construction",
            a.name
        );
    }
    write_json(&calm, &arms);
}
