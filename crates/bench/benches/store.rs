//! Storage-engine benchmark: `SegmentStore` (append-only segment log with
//! group commit) vs `DiskStore` (one file per chunk) on the benefactor's
//! ingest hot path.
//!
//! Measures, on a scratch directory under the system temp dir:
//!
//! - **put**: sustained 64 KiB-chunk ingest from several writer threads
//!   (the shape striped checkpoint bursts have on a benefactor);
//! - **get**: random-order readback of the stored chunks;
//! - **recovery**: reopening a populated store and listing `entries()` —
//!   what a benefactor restart pays before it can rejoin the pool.
//!
//! Besides the usual criterion stdout report, the harness writes
//! `BENCH_store.json` at the workspace root (override the path with
//! `STDCHK_BENCH_OUT`) recording every measurement plus the headline
//! `put_speedup_segment_vs_disk` ratio.
//!
//! `--smoke` (or `STDCHK_BENCH_SMOKE=1`) shrinks sizes so CI can keep the
//! harness compiling *and running* in seconds.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{BenchResult, Criterion, Throughput};

use stdchk_net::store::{ChunkStore, DiskStore, SegmentStore};
use stdchk_proto::ids::ChunkId;
use stdchk_util::bytesize::to_mbps;
use stdchk_util::mix64;

const CHUNK: usize = 64 << 10;

/// Workload shape, scaled down under `--smoke`.
#[derive(Clone, Copy)]
struct Scale {
    chunks: usize,
    threads: usize,
    samples: usize,
}

/// Unique scratch directories under one removable root.
struct Scratch {
    root: PathBuf,
    seq: AtomicU64,
}

impl Scratch {
    fn new() -> Scratch {
        let root = std::env::temp_dir().join(format!("stdchk-bench-store-{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        fs::create_dir_all(&root).expect("scratch dir");
        Scratch {
            root,
            seq: AtomicU64::new(0),
        }
    }

    fn dir(&self) -> PathBuf {
        self.root
            .join(format!("d{}", self.seq.fetch_add(1, Ordering::Relaxed)))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

/// Deterministic distinct 64 KiB chunks.
fn chunks(n: usize) -> Arc<Vec<(ChunkId, Vec<u8>)>> {
    Arc::new(
        (0..n)
            .map(|i| {
                let mut data = vec![0u8; CHUNK];
                // One mixed word per 64 bytes: distinct content, cheap setup.
                for (j, w) in data.chunks_mut(64).enumerate() {
                    w[..8].copy_from_slice(&mix64((i as u64) << 20 | j as u64).to_le_bytes());
                }
                (ChunkId::for_content(&data), data)
            })
            .collect(),
    )
}

/// Chunks handed to the store per `put_batch` call — the burst shape the
/// benefactor driver produces: `NodeHost` drains queued `Store` actions in
/// batches and `BenefEffects` coalesces each batch into one `put_batch`.
const PUT_BATCH: usize = 32;

/// Ingests every chunk from `threads` writer threads (round-robin split),
/// each offering driver-shaped bursts of [`PUT_BATCH`] chunks — the
/// concurrency and batching group commit exists to exploit.
fn parallel_put(store: &Arc<dyn ChunkStore>, data: &Arc<Vec<(ChunkId, Vec<u8>)>>, threads: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(store);
            let data = Arc::clone(data);
            s.spawn(move || {
                let mine: Vec<_> = data.iter().skip(t).step_by(threads).collect();
                for burst in mine.chunks(PUT_BATCH) {
                    let batch: Vec<(ChunkId, &[u8])> =
                        burst.iter().map(|(id, d)| (*id, &d[..])).collect();
                    store.put_batch(&batch).expect("bench put");
                }
            });
        }
    });
}

/// Flushes system-wide dirty pages (untimed, between samples) so every put
/// sample measures absorbing a burst from the same clean state instead of
/// inheriting the previous sample's writeback backlog.
fn quiesce_writeback() {
    std::process::Command::new("sync").status().ok();
}

fn median_dur(v: &mut [std::time::Duration]) -> std::time::Duration {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Put throughput, measured with *paired interleaved* samples: each round
/// times both engines back to back from the same quiesced state
/// (alternating which goes first), so machine-wide I/O noise — shared
/// disks, writeback cycles, noisy neighbours — hits both symmetrically.
/// The headline speedup is the **median of per-round ratios**: adjacent
/// measurements share the same I/O weather, so their ratio isolates the
/// engine difference even when absolute throughput swings between rounds.
///
/// Returns the median `disk_time / segment_time` ratio.
fn bench_put(_c: &mut Criterion, scratch: &Scratch, scale: Scale) -> f64 {
    let data = chunks(scale.chunks);
    let total = (scale.chunks * CHUNK) as u64;
    let time_disk = |scratch: &Scratch| {
        quiesce_writeback();
        let store = Arc::new(DiskStore::open(scratch.dir()).expect("open")) as Arc<dyn ChunkStore>;
        let t = std::time::Instant::now();
        parallel_put(&store, &data, scale.threads);
        t.elapsed()
    };
    let time_seg = |scratch: &Scratch| {
        quiesce_writeback();
        let store =
            Arc::new(SegmentStore::open(scratch.dir()).expect("open")) as Arc<dyn ChunkStore>;
        let t = std::time::Instant::now();
        parallel_put(&store, &data, scale.threads);
        t.elapsed()
    };
    let mut disk_times = Vec::with_capacity(scale.samples);
    let mut seg_times = Vec::with_capacity(scale.samples);
    let mut ratios = Vec::with_capacity(scale.samples);
    for round in 0..scale.samples {
        let (d, s) = if round % 2 == 0 {
            let d = time_disk(scratch);
            (d, time_seg(scratch))
        } else {
            let s = time_seg(scratch);
            (time_disk(scratch), s)
        };
        ratios.push(d.as_secs_f64() / s.as_secs_f64());
        disk_times.push(d);
        seg_times.push(s);
    }
    let tput = Some(Throughput::Bytes(total));
    criterion::record(
        "store_put",
        "disk_store_64k",
        median_dur(&mut disk_times),
        tput,
    );
    criterion::record(
        "store_put",
        "segment_store_64k",
        median_dur(&mut seg_times),
        tput,
    );
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

fn bench_get(c: &mut Criterion, scratch: &Scratch, scale: Scale) {
    let data = chunks(scale.chunks);
    let total = (scale.chunks * CHUNK) as u64;
    // Shuffled read order (deterministic), defeating pure sequential luck.
    let mut order: Vec<usize> = (0..scale.chunks).collect();
    order.sort_by_key(|&i| mix64(i as u64 ^ 0xBEEF));
    let populate = |store: &dyn ChunkStore| {
        for (id, payload) in data.iter() {
            store.put(*id, payload).expect("bench put");
        }
    };
    let mut g = c.benchmark_group("store_get");
    g.sample_size(scale.samples);
    g.throughput(Throughput::Bytes(total));
    let disk = DiskStore::open(scratch.dir()).expect("open");
    populate(&disk);
    g.bench_function("disk_store_64k", |b| {
        b.iter(|| {
            for &i in &order {
                criterion::black_box(disk.get(data[i].0).expect("get").expect("present"));
            }
        })
    });
    let seg = SegmentStore::open(scratch.dir()).expect("open");
    populate(&seg);
    g.bench_function("segment_store_64k", |b| {
        b.iter(|| {
            for &i in &order {
                criterion::black_box(seg.get(data[i].0).expect("get").expect("present"));
            }
        })
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion, scratch: &Scratch, scale: Scale) {
    let data = chunks(scale.chunks);
    let mut g = c.benchmark_group("store_recovery");
    g.sample_size(scale.samples);
    g.throughput(Throughput::Elements(scale.chunks as u64));

    let disk_dir = scratch.dir();
    {
        let store = DiskStore::open(&disk_dir).expect("open");
        for (id, payload) in data.iter() {
            store.put(*id, payload).expect("put");
        }
    }
    g.bench_function("disk_store_reopen", |b| {
        b.iter(|| {
            let store = DiskStore::open(&disk_dir).expect("reopen");
            assert_eq!(store.entries().expect("entries").len(), scale.chunks);
        })
    });

    let seg_dir = scratch.dir();
    {
        let store = SegmentStore::open(&seg_dir).expect("open");
        for (id, payload) in data.iter() {
            store.put(*id, payload).expect("put");
        }
    }
    g.bench_function("segment_store_reopen", |b| {
        b.iter(|| {
            let store = SegmentStore::open(&seg_dir).expect("reopen");
            assert_eq!(store.entries().expect("entries").len(), scale.chunks);
        })
    });
    g.finish();
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(results: &[BenchResult], scale: Scale, speedup: f64) {
    let out_path = std::env::var("STDCHK_BENCH_OUT").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
        format!("{}/../../BENCH_store.json", env!("CARGO_MANIFEST_DIR"))
    });
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"store\",\n");
    body.push_str(&format!("  \"chunk_bytes\": {CHUNK},\n"));
    body.push_str(&format!("  \"chunks\": {},\n", scale.chunks));
    body.push_str(&format!("  \"put_threads\": {},\n", scale.threads));
    body.push_str(&format!("  \"put_batch\": {PUT_BATCH},\n"));
    body.push_str(&format!(
        "  \"put_speedup_segment_vs_disk\": {speedup:.2},\n"
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mbps = r
            .bytes_per_sec()
            .map(|b| format!("{:.1}", to_mbps(b)))
            .unwrap_or_else(|| "null".into());
        body.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {}, \"mb_per_s\": {}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.id),
            r.median_ns,
            mbps,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");

    let mut f = fs::File::create(&out_path).expect("create BENCH_store.json");
    f.write_all(body.as_bytes())
        .expect("write BENCH_store.json");
    println!("\nwrote {out_path} (put speedup segment vs disk: {speedup:.2}x)");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test")
        || std::env::var("STDCHK_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    let mut scale = if smoke {
        Scale {
            chunks: 32,
            threads: 2,
            samples: 3,
        }
    } else {
        // One writer thread is the paper's shape: during a striped
        // checkpoint write each benefactor ingests a single client's chunk
        // stream over one data connection.
        Scale {
            chunks: 512,
            threads: 1,
            samples: 12,
        }
    };
    // Optional overrides for exploring other workload shapes.
    if let Ok(Ok(n)) = std::env::var("STDCHK_BENCH_CHUNKS").map(|v| v.parse()) {
        scale.chunks = n;
    }
    if let Ok(Ok(n)) = std::env::var("STDCHK_BENCH_THREADS").map(|v| v.parse()) {
        scale.threads = n;
    }
    println!(
        "store engine bench: {} chunks x {} KiB, {} put threads{}",
        scale.chunks,
        CHUNK >> 10,
        scale.threads,
        if smoke { " (smoke scale)" } else { "" }
    );
    let scratch = Scratch::new();
    let mut c = Criterion::default();
    let put_speedup = bench_put(&mut c, &scratch, scale);
    bench_get(&mut c, &scratch, scale);
    bench_recovery(&mut c, &scratch, scale);
    // Smoke runs exist to keep the harness alive in CI; never let their
    // throwaway numbers clobber the committed paper-scale result (an
    // explicit STDCHK_BENCH_OUT still gets whatever was measured).
    if !smoke || std::env::var("STDCHK_BENCH_OUT").is_ok() {
        write_json(&criterion::take_results(), scale, put_speedup);
    } else {
        println!("\nsmoke scale: skipping BENCH_store.json (set STDCHK_BENCH_OUT to force)");
    }
}
