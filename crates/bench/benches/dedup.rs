//! Wire-level dedup benchmark: what does have/want negotiation plus delta
//! transfer save on a trace of successive checkpoint images?
//!
//! Setup: an in-memory pool (manager + two benefactors) and one client
//! replaying a synthetic checkpoint trace — an initial image followed by
//! successors that each dirty ~30% of their chunks in place (a byte-level
//! edit inside the chunk, the incremental-checkpoint shape the paper's
//! similarity tables measure). Every version is a full application-level
//! rewrite of the same path; only the transport decides how much of it
//! actually travels.
//!
//! Measured per arm (**dedup** = negotiation + delta on, vs **full** =
//! `STDCHK_DEDUP=off`, every byte ships): payload bytes on the wire
//! (full + delta transfers), reused bytes committed by reference, and the
//! wall-clock time to commit the whole trace. The headline is the wire
//! ratio dedup/full — on a ~70%-similar trace it must land well under
//! 0.5×, while commit wall stays within a few percent of the full arm.
//!
//! Writes `BENCH_dedup.json` at the workspace root (override with
//! `STDCHK_BENCH_OUT`). `--smoke` / `STDCHK_BENCH_SMOKE=1` shrinks the
//! trace so CI keeps the harness alive in seconds.

use std::fs;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_net::store::MemStore;
use stdchk_net::{
    Backend, BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, ServerOpts, WriteOptions,
};
use stdchk_util::mix64;

const CHUNK: usize = 64 << 10;

struct Scale {
    chunks: usize,
    versions: usize,
    dirty_per_version: usize,
}

struct RunResult {
    dedup: bool,
    versions: usize,
    logical_bytes: u64,
    wire_bytes: u64,
    reused_bytes: u64,
    delta_bytes: u64,
    full_bytes: u64,
    offered: u64,
    wanted: u64,
    commit_wall_secs: f64,
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| mix64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)) as u8)
        .collect()
}

/// The checkpoint trace: version `v` dirties `dirty` evenly spaced chunks
/// of the previous image with an in-place byte edit (near-miss chunks, so
/// the delta path has something to bite on).
fn versions(scale: &Scale) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(scale.versions);
    let mut img = payload(scale.chunks * CHUNK, 42);
    out.push(img.clone());
    for v in 1..scale.versions {
        let stride = (scale.chunks / scale.dirty_per_version).max(1);
        for d in 0..scale.dirty_per_version {
            let chunk = (d * stride + v) % scale.chunks;
            let off = chunk * CHUNK + (mix64(v as u64 ^ d as u64) as usize % CHUNK);
            img[off] ^= 0x5a;
        }
        out.push(img.clone());
    }
    out
}

fn run_one(dedup: bool, scale: &Scale) -> RunResult {
    let name = if dedup { "dedup" } else { "full" };
    // `Grid::create` samples this per session; each arm owns its own pool
    // and grid, so flipping it between arms is race-free.
    std::env::set_var("STDCHK_DEDUP", if dedup { "on" } else { "off" });
    let opts = ServerOpts {
        backend: Backend::Reactor,
        workers: 2,
        idle_timeout: Some(Duration::from_secs(120)),
        io_lane: true,
    };
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = CHUNK as u32;
    let mgr = ManagerServer::spawn_with("127.0.0.1:0", pool_cfg, opts).expect("manager");
    let benefactors: Vec<BenefactorServer> = (0..2)
        .map(|_| {
            BenefactorServer::spawn_with(
                BenefactorNetConfig {
                    manager_addr: mgr.addr().to_string(),
                    listen: "127.0.0.1:0".into(),
                    total_space: 4 << 30,
                    cfg: BenefactorConfig::fast_for_tests(),
                    store: Arc::new(MemStore::new()),
                },
                opts,
            )
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < 2 {
        assert!(Instant::now() < deadline, "pool never came online");
        std::thread::sleep(Duration::from_millis(10));
    }

    let grid = Grid::connect(&mgr.addr().to_string()).expect("connect");
    let trace = versions(scale);
    let mut result = RunResult {
        dedup,
        versions: trace.len(),
        logical_bytes: 0,
        wire_bytes: 0,
        reused_bytes: 0,
        delta_bytes: 0,
        full_bytes: 0,
        offered: 0,
        wanted: 0,
        commit_wall_secs: 0.0,
    };
    let start = Instant::now();
    for img in &trace {
        let mut w = grid
            .create("/bench/ckpt.img", WriteOptions::default())
            .expect("create");
        w.write_all(img).expect("write");
        let stats = w.finish().expect("finish");
        result.logical_bytes += stats.bytes_written;
        result.reused_bytes += stats.wire_reused_bytes;
        result.delta_bytes += stats.wire_delta_bytes;
        result.full_bytes += stats.wire_full_bytes;
        result.offered += stats.offered_chunks;
        result.wanted += stats.wanted_chunks;
    }
    result.commit_wall_secs = start.elapsed().as_secs_f64();
    result.wire_bytes = result.delta_bytes + result.full_bytes;

    drop(grid);
    for b in &benefactors {
        b.shutdown();
    }
    mgr.shutdown();

    println!(
        "{name:>6}  {} versions ({} MiB logical) in {:5.2}s  wire {:7.3} MiB  \
         (reused {:7.3} MiB, delta {:7.3} MiB, full {:7.3} MiB)  offered {} wanted {}",
        result.versions,
        result.logical_bytes >> 20,
        result.commit_wall_secs,
        result.wire_bytes as f64 / (1 << 20) as f64,
        result.reused_bytes as f64 / (1 << 20) as f64,
        result.delta_bytes as f64 / (1 << 20) as f64,
        result.full_bytes as f64 / (1 << 20) as f64,
        result.offered,
        result.wanted,
    );
    result
}

fn write_json(
    scale: &Scale,
    results: &[RunResult],
    wire_ratio: Option<f64>,
    wall_ratio: Option<f64>,
) {
    let out_path = std::env::var("STDCHK_BENCH_OUT").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
        format!("{}/../../BENCH_dedup.json", env!("CARGO_MANIFEST_DIR"))
    });
    let similarity = 1.0 - scale.dirty_per_version as f64 / scale.chunks as f64;
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"dedup\",\n");
    body.push_str(&format!(
        "  \"trace\": {{\"versions\": {}, \"chunks_per_version\": {}, \
         \"chunk_size\": {}, \"dirty_chunks_per_version\": {}, \
         \"chunk_similarity\": {:.3}}},\n",
        scale.versions, scale.chunks, CHUNK, scale.dirty_per_version, similarity
    ));
    body.push_str("  \"pool\": {\"benefactors\": 2, \"server_workers\": 2},\n");
    body.push_str(&format!(
        "  \"wire_bytes_dedup_over_full\": {},\n",
        wire_ratio
            .map(|h| format!("{h:.4}"))
            .unwrap_or_else(|| "null".into())
    ));
    body.push_str(&format!(
        "  \"commit_wall_dedup_over_full\": {},\n",
        wall_ratio
            .map(|h| format!("{h:.3}"))
            .unwrap_or_else(|| "null".into())
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"dedup\": {}, \"versions\": {}, \"logical_bytes\": {}, \
             \"wire_bytes\": {}, \"reused_bytes\": {}, \"delta_bytes\": {}, \
             \"full_bytes\": {}, \"offered_chunks\": {}, \"wanted_chunks\": {}, \
             \"commit_wall_secs\": {:.3}}}{}\n",
            r.dedup,
            r.versions,
            r.logical_bytes,
            r.wire_bytes,
            r.reused_bytes,
            r.delta_bytes,
            r.full_bytes,
            r.offered,
            r.wanted,
            r.commit_wall_secs,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    let mut f = fs::File::create(&out_path).expect("create BENCH_dedup.json");
    f.write_all(body.as_bytes())
        .expect("write BENCH_dedup.json");
    println!("\nwrote {out_path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test")
        || std::env::var("STDCHK_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    let scale = if smoke {
        Scale {
            chunks: 16,
            versions: 3,
            dirty_per_version: 5,
        }
    } else {
        Scale {
            chunks: 64,
            versions: 8,
            dirty_per_version: 19,
        }
    };
    println!(
        "dedup bench: {} versions x {} chunks x {} KiB, {} dirty chunks/version \
         (~{:.0}% similar){}",
        scale.versions,
        scale.chunks,
        CHUNK >> 10,
        scale.dirty_per_version,
        100.0 * (1.0 - scale.dirty_per_version as f64 / scale.chunks as f64),
        if smoke { " (smoke scale)" } else { "" }
    );
    let mut results = Vec::new();
    for dedup in [false, true] {
        results.push(run_one(dedup, &scale));
    }
    let pick = |dedup: bool| results.iter().find(|r| r.dedup == dedup);
    let wire_ratio = match (pick(false), pick(true)) {
        (Some(full), Some(dd)) if full.wire_bytes > 0 => {
            Some(dd.wire_bytes as f64 / full.wire_bytes as f64)
        }
        _ => None,
    };
    let wall_ratio = match (pick(false), pick(true)) {
        (Some(full), Some(dd)) if full.commit_wall_secs > 0.0 => {
            Some(dd.commit_wall_secs / full.commit_wall_secs)
        }
        _ => None,
    };
    if let Some(r) = wire_ratio {
        println!("\nwire bytes dedup/full: {r:.4}");
    }
    if let Some(r) = wall_ratio {
        println!("commit wall dedup/full: {r:.3}");
    }
    // Smoke runs keep the harness alive in CI; never let their throwaway
    // numbers clobber the committed full-scale result.
    if !smoke || std::env::var("STDCHK_BENCH_OUT").is_ok() {
        write_json(&scale, &results, wire_ratio, wall_ratio);
    } else {
        println!("\nsmoke scale: skipping BENCH_dedup.json (set STDCHK_BENCH_OUT to force)");
    }
}
