//! Figure 7 — Sliding-window writes with and without FsCH incremental
//! checkpointing: OAB/ASB across buffer sizes, writing successive BLCR-like
//! checkpoint images.
//!
//! Paper anchors: ~24 % reduction in storage space and network effort;
//! OAB slightly degraded by the write-path hashing, dramatically so when a
//! large buffer makes the no-FsCH path memcpy-bound.

use stdchk_bench::{banner, full_scale};
use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::{SimCluster, SimConfig, WriteJob};
use stdchk_util::bytesize::to_mbps;
use stdchk_util::Dur;
use stdchk_workloads::VirtualTrace;

fn run_series(buffer_mb: u64, dedup: bool, images: usize) -> (f64, f64, f64) {
    let image_chunks = 280usize; // 280 MB at 1 MiB chunks (paper's image)
    let mut sim = SimCluster::new(SimConfig::gige(4, 1));
    // BLCR trace at FsCH-chunk granularity: ~24% cross-version similarity.
    let mut trace = VirtualTrace::new(image_chunks, 0.24, 3);
    for _ in 0..images {
        let tags = trace.next_tags();
        let mut job = WriteJob::new(
            "/blast/img.n0",
            image_chunks as u64 * (1 << 20),
            SessionConfig {
                protocol: WriteProtocol::SlidingWindow {
                    buffer: buffer_mb << 20,
                },
                dedup,
                ..SessionConfig::default()
            },
        );
        job.tags = Some(tags);
        sim.submit(0, job);
    }
    let report = sim.run(Dur::from_secs(1));
    let written: u64 = report.results.iter().map(|r| r.stats.bytes_written).sum();
    let stored: u64 = report.results.iter().map(|r| r.stats.bytes_stored).sum();
    (
        to_mbps(report.mean_oab()),
        to_mbps(report.mean_asb()),
        1.0 - stored as f64 / written as f64,
    )
}

fn main() {
    let images = if full_scale() { 75 } else { 10 };
    banner(
        "Figure 7",
        "SW ± FsCH: OAB/ASB vs buffer size, successive BLCR images",
        &format!("{images} images of 280 MB, 4 benefactors, 1 MiB chunks (paper: 75 images)"),
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "buffer", "OAB no-FsCH", "OAB FsCH", "ASB no-FsCH", "ASB FsCH", "saved"
    );
    let mut savings = 0.0;
    for buffer in [64u64, 128, 256] {
        let (oab_plain, asb_plain, _) = run_series(buffer, false, images);
        let (oab_fsch, asb_fsch, saved) = run_series(buffer, true, images);
        savings = saved;
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9.1}%",
            format!("{buffer}MB"),
            oab_plain,
            oab_fsch,
            asb_plain,
            asb_fsch,
            saved * 100.0
        );
    }
    println!("\npaper anchors: 116 MB/s OAB / 84 MB/s ASB with FsCH; 24% space+network saved");
    assert!(
        (0.12..0.35).contains(&savings),
        "FsCH savings should be ≈24%: {savings}"
    );
}
