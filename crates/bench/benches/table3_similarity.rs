//! Table 3 — Similarity detected and throughput of the heuristics, per
//! trace: FsCH at 1 KB / 256 KB / 1 MB vs CbCH overlap / no-overlap.
//!
//! This harness runs the *real* chunking implementations (real SHA-256,
//! real window hashing) over the synthetic traces. Paper anchors:
//!
//! - BMS (application-level): 0 % similarity for every heuristic;
//! - BLAST/BLCR 5-min: FsCH ≈ 25 % / CbCH ≈ 84 % (overlap), 82 % (no-ov.);
//! - BLAST/BLCR 15-min: FsCH ≈ 7-9 % / CbCH ≈ 70-71 %;
//! - Xen: ≈ 0 % everywhere (page shuffling + per-page metadata);
//! - throughput ordering FsCH ≫ CbCH no-overlap ≫ CbCH overlap (the paper's
//!   1 MB/s overlap figure comes from re-hashing the full window at every
//!   byte — faithfully reimplemented here).

use stdchk_bench::{banner, full_scale, run_heuristic};
use stdchk_chunker::{CbChunker, Chunker, FsChunker};
use stdchk_workloads::{TraceConfig, TraceKind};

fn main() {
    let (img, count) = if full_scale() {
        (64 << 20, 12)
    } else {
        (8 << 20, 6)
    };
    banner(
        "Table 3",
        "similarity %% [throughput MB/s] per heuristic and trace",
        &format!("{} images of {} MiB per trace", count, img >> 20),
    );
    let traces: Vec<(&str, TraceKind, f64)> = vec![
        ("BMS app-level", TraceKind::ApplicationLevel, 0.0),
        ("BLCR 5-min", TraceKind::blcr_5min(), 25.0),
        ("BLCR 15-min", TraceKind::blcr_15min(), 9.0),
        ("Xen VM-level", TraceKind::xen(), 0.0),
    ];
    let heuristics: Vec<(&str, Box<dyn Chunker>)> = vec![
        ("FsCH 1KB", Box::new(FsChunker::new(1 << 10))),
        ("FsCH 256KB", Box::new(FsChunker::new(256 << 10))),
        ("FsCH 1MB", Box::new(FsChunker::new(1 << 20))),
        (
            "CbCH overlap m=20 k=14",
            Box::new(CbChunker::overlap(20, 14).with_max_chunk(8 << 20)),
        ),
        (
            "CbCH no-overlap m=20 k=14",
            Box::new(CbChunker::no_overlap(20, 14).with_max_chunk(8 << 20)),
        ),
    ];
    print!("{:<28}", "heuristic");
    for (t, _, _) in &traces {
        print!(" | {t:>22}");
    }
    println!();
    let mut fsch_1mb = 0.0;
    let mut cbch_overlap = (0.0, 0.0);
    let mut cbch_noov = 0.0;
    for (label, chunker) in &heuristics {
        print!("{label:<28}");
        for (tlabel, kind, _) in &traces {
            // The overlap variant is ~m× the work: shrink its input so the
            // harness stays minutes-fast (throughput is size-independent).
            let shrink = if label.contains("overlap") && !label.contains("no-") {
                8
            } else {
                1
            };
            let run = run_heuristic(
                chunker.as_ref(),
                TraceConfig {
                    image_size: img / shrink,
                    count,
                    kind: *kind,
                    seed: 7,
                },
            );
            print!(
                " | {:>6.1}%% [{:>8.1}]",
                run.similarity * 100.0,
                run.throughput_mbps
            );
            if *tlabel == "BLCR 5-min" {
                if *label == "FsCH 1MB" {
                    fsch_1mb = run.similarity;
                }
                if *label == "CbCH overlap m=20 k=14" {
                    cbch_overlap = (run.similarity, run.throughput_mbps);
                }
                if *label == "CbCH no-overlap m=20 k=14" {
                    cbch_noov = run.throughput_mbps;
                }
            }
        }
        println!();
    }
    println!("\npaper anchors (BLCR 5-min): FsCH 1MB 23.4%% [109 MB/s];");
    println!("CbCH overlap 84%% [1.1 MB/s]; CbCH no-overlap 82%% [26.6 MB/s]");
    assert!(
        fsch_1mb > 0.1 && fsch_1mb < 0.45,
        "FsCH 5-min similarity off: {fsch_1mb}"
    );
    assert!(
        cbch_overlap.0 > 0.6,
        "CbCH must find the shifted content: {}",
        cbch_overlap.0
    );
    assert!(
        cbch_overlap.1 < cbch_noov / 2.0,
        "overlap must be far slower than no-overlap: {} vs {}",
        cbch_overlap.1,
        cbch_noov
    );
}
