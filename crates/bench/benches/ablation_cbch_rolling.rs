//! Ablation (extension, not in the paper) — rolling-hash CbCH vs the
//! paper-faithful full-window-rehash CbCH.
//!
//! The paper dismissed overlap-mode CbCH because re-hashing the window at
//! every byte ran at ~1 MB/s, and mentions offloading hashing to a GPU as
//! future work. An O(1)-slide Rabin–Karp hash achieves the same per-byte
//! boundary coverage in a single pass: this harness quantifies the gap it
//! closes while preserving the detected similarity.

use stdchk_bench::{banner, full_scale, run_heuristic};
use stdchk_chunker::{CbChunker, CbRollingChunker, Chunker};
use stdchk_workloads::{TraceConfig, TraceKind};

fn main() {
    let (img, count) = if full_scale() {
        (16 << 20, 8)
    } else {
        (4 << 20, 5)
    };
    banner(
        "Ablation: rolling-hash CbCH",
        "paper-faithful overlap vs O(1)-slide rolling hash",
        &format!("{} BLCR-like images of {} MiB", count, img >> 20),
    );
    let trace = TraceConfig {
        image_size: img,
        count,
        kind: TraceKind::blcr_5min(),
        seed: 23,
    };
    let variants: Vec<(&str, Box<dyn Chunker>)> = vec![
        (
            "CbCH overlap (paper-faithful)",
            Box::new(CbChunker::overlap(20, 14).with_max_chunk(8 << 20)),
        ),
        (
            "CbCH no-overlap (paper)",
            Box::new(CbChunker::no_overlap(20, 14).with_max_chunk(8 << 20)),
        ),
        (
            "CbCH rolling (extension)",
            Box::new(CbRollingChunker::new(20, 14).with_max_chunk(8 << 20)),
        ),
    ];
    println!("{:<34} {:>8} {:>12}", "variant", "sim %", "MB/s");
    let mut overlap_tp = 0.0;
    let mut rolling = (0.0, 0.0);
    for (label, c) in &variants {
        let run = run_heuristic(c.as_ref(), trace);
        println!(
            "{:<34} {:>7.1}% {:>12.1}",
            label,
            run.similarity * 100.0,
            run.throughput_mbps
        );
        if label.contains("paper-faithful") {
            overlap_tp = run.throughput_mbps;
        }
        if label.contains("rolling") {
            rolling = (run.similarity, run.throughput_mbps);
        }
    }
    println!("\nthe rolling hash keeps per-byte boundary coverage at a multiple of");
    println!("the paper-faithful overlap throughput — no GPU offload required");
    assert!(
        rolling.1 > overlap_tp * 2.0,
        "rolling must be several times faster: {} vs {overlap_tp}",
        rolling.1
    );
    assert!(
        rolling.0 > 0.6,
        "rolling similarity degraded: {}",
        rolling.0
    );
}
