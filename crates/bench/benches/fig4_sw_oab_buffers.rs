//! Figure 4 — Sliding-window OAB vs stripe width for different write-buffer
//! sizes (32–512 MB).
//!
//! Paper shape: two benefactors saturate the link regardless of buffer;
//! larger buffers never hurt and help most at small stripe widths.

use stdchk_bench::{banner, full_scale, run_sim_write, session_for, MB};
use stdchk_core::session::write::WriteProtocol;
use stdchk_sim::SimConfig;

fn main() {
    let size = if full_scale() { 1000 * MB } else { 256 * MB };
    banner(
        "Figure 4",
        "SW OAB vs stripe width across buffer sizes",
        &format!("{} MB files on the simulated GigE testbed", size / MB),
    );
    let buffers = [32u64, 64, 128, 256, 512];
    print!("{:<8}", "stripe");
    for b in buffers {
        print!(" {b:>6}MB");
    }
    println!("   (OAB, MB/s)");
    let mut grid = Vec::new();
    for stripe in [1usize, 2, 4, 8] {
        print!("{stripe:<8}");
        let mut row = Vec::new();
        for buffer in buffers {
            let (oab, _) = run_sim_write(
                SimConfig::gige(stripe, 1),
                stripe as u32,
                size,
                session_for(WriteProtocol::SlidingWindow {
                    buffer: buffer << 20,
                }),
            );
            print!(" {oab:>8.1}");
            row.push(oab);
        }
        println!();
        grid.push(row);
    }
    println!("\npaper anchor: saturation at stripe 2; ~110-130 MB/s plateau");
    for row in &grid[1..] {
        assert!(
            row.last().unwrap() + 5.0 >= row[0],
            "bigger buffers must not hurt: {row:?}"
        );
    }
}
