//! Figure 3 — Achieved storage bandwidth (ASB) vs stripe width.
//!
//! Paper shape: CLW worst (~45-50 MB/s — it serializes the local dump and
//! the push), IW in between, SW best and saturating with two benefactors.

use stdchk_bench::{banner, full_scale, protocols, run_sim_write, session_for, MB};
use stdchk_sim::SimConfig;

fn main() {
    let size = 1000 * MB;
    let _ = full_scale();
    banner(
        "Figure 3",
        "ASB vs stripe width (1 GB writes in the paper)",
        &format!(
            "{} MB files on the simulated GigE testbed (paper scale)",
            size / MB
        ),
    );
    println!(
        "{:<8} {:>8} {:>8} {:>8}  (MB/s)",
        "stripe", "CLW", "IW", "SW"
    );
    let mut last = Vec::new();
    for stripe in [1usize, 2, 4, 8] {
        let mut row = Vec::new();
        for (_, protocol) in protocols() {
            let (_, asb) = run_sim_write(
                SimConfig::gige(stripe, 1),
                stripe as u32,
                size,
                session_for(protocol),
            );
            row.push(asb);
        }
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1}",
            stripe, row[0], row[1], row[2]
        );
        last = row;
    }
    println!("\npaper anchors at stripe 8: CLW ≈ 45, IW ≈ 70, SW ≈ 85 MB/s");
    assert!(
        last[0] < last[1] && last[1] <= last[2] + 5.0,
        "ASB ordering CLW < IW <= SW violated: {last:?}"
    );
}
