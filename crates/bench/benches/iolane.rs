//! Disk I/O lane benchmark: does an fsync tail on one connection stall
//! every other connection sharing the reactor worker?
//!
//! Setup: a durable manager on a **single** reactor worker with a fixed
//! fsync delay injected into its WAL flusher (`SyncDelay`, modelling a
//! slow platter / deep device queue), two benefactors, and two kinds of
//! client traffic:
//!
//! - a **writer** committing checkpoint files back to back — every
//!   `finish` write-ahead-logs a Commit record whose ack waits out the
//!   delayed group commit;
//! - a **probe**: a raw connection sending transport `Ping`s, answered
//!   by the reactor's connection layer on that same worker. Its RTT is
//!   the "unrelated connection" latency.
//!
//! Measured per arm (lane **on** vs `STDCHK_IO_LANE=off`-equivalent
//! **inline**): probe RTT p50/p99/max while the commits churn. With the
//! lane, the durable wait rides a lane thread and the RTT stays an
//! order of magnitude below the injected delay; inline, the worker eats
//! each 100 ms tail and the probe queues behind it.
//!
//! Writes `BENCH_iolane.json` at the workspace root (override with
//! `STDCHK_BENCH_OUT`). `--smoke` / `STDCHK_BENCH_SMOKE=1` shrinks the
//! delay and counts so CI keeps the harness alive in seconds.

use std::fs;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk_core::{BenefactorConfig, PoolConfig};
use stdchk_net::store::MemStore;
use stdchk_net::{
    Backend, BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, ServerOpts, WriteOptions,
};
use stdchk_proto::frame::{read_frame, write_frame};
use stdchk_proto::msg::Msg;
use stdchk_util::mix64;

struct Scale {
    delay: Duration,
    files: usize,
    pings: usize,
    ping_gap: Duration,
}

struct RunResult {
    lane: bool,
    commits: usize,
    commit_wall_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| mix64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)) as u8)
        .collect()
}

fn quantile_ms(sorted: &[Duration], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn run_one(lane: bool, scale: &Scale) -> RunResult {
    let name = if lane { "lane" } else { "inline" };
    let meta_dir =
        std::env::temp_dir().join(format!("stdchk-bench-iolane-{name}-{}", std::process::id()));
    fs::remove_dir_all(&meta_dir).ok();
    let opts = ServerOpts {
        backend: Backend::Reactor,
        // One worker: every socket shares it, so an inline fsync tail is
        // maximally visible. The lane must hide it anyway.
        workers: 1,
        idle_timeout: Some(Duration::from_secs(120)),
        io_lane: lane,
    };
    let mut pool_cfg = PoolConfig::fast_for_tests();
    pool_cfg.chunk_size = 64 << 10;
    let mgr = ManagerServer::spawn_durable_tuned(
        "127.0.0.1:0",
        pool_cfg,
        &meta_dir,
        stdchk_net::MetaLogConfig::default(),
        opts,
    )
    .expect("durable manager");
    let benefactors: Vec<BenefactorServer> = (0..2)
        .map(|_| {
            BenefactorServer::spawn_with(
                BenefactorNetConfig {
                    manager_addr: mgr.addr().to_string(),
                    listen: "127.0.0.1:0".into(),
                    total_space: 4 << 30,
                    cfg: BenefactorConfig::fast_for_tests(),
                    store: Arc::new(MemStore::new()),
                },
                opts,
            )
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < 2 {
        assert!(Instant::now() < deadline, "pool never came online");
        std::thread::sleep(Duration::from_millis(10));
    }
    mgr.meta_sync_faults()
        .expect("durable manager")
        .set_delay(scale.delay);

    let mut probe = TcpStream::connect(mgr.addr()).expect("probe connect");
    probe.set_nodelay(true).ok();
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    let addr = mgr.addr().to_string();
    let files = scale.files;
    let writer = std::thread::spawn(move || {
        let grid = Grid::connect(&addr).expect("writer connect");
        let start = Instant::now();
        for i in 0..files {
            let data = payload(64 << 10, 9000 + i as u64);
            let mut w = grid
                .create(&format!("/bench/lane{i}.n0"), WriteOptions::default())
                .expect("create");
            w.write_all(&data).expect("write");
            w.finish().expect("finish");
        }
        start.elapsed()
    });

    // Sample the probe while the commits churn.
    std::thread::sleep(Duration::from_millis(50));
    let mut rtts: Vec<Duration> = Vec::with_capacity(scale.pings);
    for nonce in 1..=scale.pings as u64 {
        let t0 = Instant::now();
        write_frame(&mut probe, &Msg::Ping { nonce }).expect("ping");
        loop {
            match read_frame(&mut probe).expect("pong").expect("conn open") {
                Msg::Pong { nonce: n } if n == nonce => break,
                _ => {}
            }
        }
        rtts.push(t0.elapsed());
        std::thread::sleep(scale.ping_gap);
    }
    let commit_wall = writer.join().expect("writer");

    drop(probe);
    for b in &benefactors {
        b.shutdown();
    }
    mgr.shutdown();
    drop(mgr);
    fs::remove_dir_all(&meta_dir).ok();

    rtts.sort_unstable();
    let result = RunResult {
        lane,
        commits: files,
        commit_wall_secs: commit_wall.as_secs_f64(),
        p50_ms: quantile_ms(&rtts, 0.50),
        p99_ms: quantile_ms(&rtts, 0.99),
        max_ms: quantile_ms(&rtts, 1.0),
    };
    println!(
        "{name:>6}  {} commits in {:5.2}s  probe RTT p50 {:7.2}ms  p99 {:7.2}ms  max {:7.2}ms",
        result.commits, result.commit_wall_secs, result.p50_ms, result.p99_ms, result.max_ms
    );
    result
}

fn write_json(scale: &Scale, results: &[RunResult], headline: Option<f64>) {
    let out_path = std::env::var("STDCHK_BENCH_OUT").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
        format!("{}/../../BENCH_iolane.json", env!("CARGO_MANIFEST_DIR"))
    });
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"iolane\",\n");
    body.push_str(&format!(
        "  \"injected_fsync_delay_ms\": {},\n",
        scale.delay.as_millis()
    ));
    body.push_str("  \"pool\": {\"benefactors\": 2, \"server_workers\": 1},\n");
    body.push_str(&format!(
        "  \"rtt_p99_inline_over_lane\": {},\n",
        headline
            .map(|h| format!("{h:.2}"))
            .unwrap_or_else(|| "null".into())
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"io_lane\": {}, \"commits\": {}, \"commit_wall_secs\": {:.3}, \
             \"probe_rtt_p50_ms\": {:.3}, \"probe_rtt_p99_ms\": {:.3}, \
             \"probe_rtt_max_ms\": {:.3}}}{}\n",
            r.lane,
            r.commits,
            r.commit_wall_secs,
            r.p50_ms,
            r.p99_ms,
            r.max_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    let mut f = fs::File::create(&out_path).expect("create BENCH_iolane.json");
    f.write_all(body.as_bytes())
        .expect("write BENCH_iolane.json");
    println!("\nwrote {out_path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test")
        || std::env::var("STDCHK_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    let scale = if smoke {
        Scale {
            delay: Duration::from_millis(25),
            files: 6,
            pings: 20,
            ping_gap: Duration::from_millis(5),
        }
    } else {
        Scale {
            delay: Duration::from_millis(100),
            files: 30,
            pings: 120,
            ping_gap: Duration::from_millis(20),
        }
    };
    println!(
        "iolane bench: {} ms injected WAL fsync delay, {} commits, {} probe pings{}",
        scale.delay.as_millis(),
        scale.files,
        scale.pings,
        if smoke { " (smoke scale)" } else { "" }
    );
    let mut results = Vec::new();
    for lane in [false, true] {
        results.push(run_one(lane, &scale));
    }
    let headline = {
        let p99 = |lane: bool| results.iter().find(|r| r.lane == lane).map(|r| r.p99_ms);
        match (p99(false), p99(true)) {
            (Some(inline), Some(lane)) if lane > 0.0 => Some(inline / lane),
            _ => None,
        }
    };
    // Smoke runs keep the harness alive in CI; never let their throwaway
    // numbers clobber the committed full-scale result.
    if !smoke || std::env::var("STDCHK_BENCH_OUT").is_ok() {
        write_json(&scale, &results, headline);
    } else {
        println!("\nsmoke scale: skipping BENCH_iolane.json (set STDCHK_BENCH_OUT to force)");
    }
}
