//! Table 1 — Time to write a 1 GB file: local I/O, FUSE→local, /stdchk/null.
//!
//! Paper: 11.80 s / 12.00 s / 1.04 s — FUSE overhead ≈2 %, per-call cost
//! ≈32 µs. Reproduced from the simulator's platform model, which uses
//! exactly these calibration constants everywhere else.

use stdchk_bench::{banner, compare};
use stdchk_sim::baselines::table1_seconds;
use stdchk_sim::SimConfig;

fn main() {
    banner(
        "Table 1",
        "time to write a 1 GB file through each local path",
        "paper-scale (1 GB, analytic platform model)",
    );
    let cfg = SimConfig::gige(4, 1);
    let (local, fuse, null) = table1_seconds(&cfg);
    compare("Local I/O", 11.80, local, "s");
    compare("FUSE to local I/O", 12.00, fuse, "s");
    compare("/stdchk/null", 1.04, null, "s");
    let overhead = (fuse - local) / local * 100.0;
    println!("\nFUSE overhead on top of local I/O: {overhead:.1}% (paper: ≈2%)");
    println!(
        "implied per-call user-space crossing: {:.0} µs (paper: ≈32 µs)",
        cfg.fuse_per_call.as_nanos() as f64 / 1e3
    );
    assert!(fuse > local && null < local, "table 1 orderings violated");
}
