//! Shared support for the paper-reproduction benchmark harness.
//!
//! Every table and figure of the ICDCS'08 evaluation has one `harness =
//! false` bench target that regenerates it and prints `paper vs measured`
//! rows. Network/storage-bound experiments run on the discrete-event
//! simulator (calibrated to the paper's testbed constants); CPU-bound
//! similarity-detection experiments run the real chunking implementations.
//!
//! Sizes are scaled down by default so `cargo bench` completes in minutes;
//! set `STDCHK_BENCH_FULL=1` for paper-scale runs. Each harness prints its
//! scale. Absolute numbers are not the reproduction target — orderings,
//! saturation points, and ratios are.

#![forbid(unsafe_code)]

use std::time::Instant;

use stdchk_chunker::{Chunker, SimilarityTracker};
use stdchk_core::session::write::{SessionConfig, WriteProtocol};
use stdchk_sim::{SimCluster, SimConfig, WriteJob};
use stdchk_util::bytesize::to_mbps;
use stdchk_util::Dur;
use stdchk_workloads::{TraceConfig, TraceGenerator};

/// Decimal megabyte (the paper's unit).
pub const MB: u64 = 1_000_000;

/// True when paper-scale sizes were requested via `STDCHK_BENCH_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("STDCHK_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Prints a harness banner.
pub fn banner(id: &str, caption: &str, scale_note: &str) {
    println!("\n==============================================================================");
    println!("{id}: {caption}");
    println!("scale: {scale_note}");
    println!("==============================================================================");
}

/// Prints one `paper vs measured` line.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    println!("{label:<44} paper {paper:>9.1} {unit:<5} | measured {measured:>9.1} {unit}");
}

/// Runs one write job on a fresh simulated pool and returns `(OAB, ASB)` in
/// MB/s.
pub fn run_sim_write(cfg: SimConfig, stripe: u32, size: u64, session: SessionConfig) -> (f64, f64) {
    let mut sim = SimCluster::new(cfg);
    let mut job = WriteJob::new("/bench/f.n0", size, session);
    job.stripe_width = stripe;
    sim.submit(0, job);
    let report = sim.run(Dur::from_secs(1));
    assert!(!report.results[0].failed, "bench job failed");
    (to_mbps(report.mean_oab()), to_mbps(report.mean_asb()))
}

/// A protocol under its paper label.
pub fn protocols() -> Vec<(&'static str, WriteProtocol)> {
    vec![
        ("CLW", WriteProtocol::CompleteLocal),
        (
            "IW",
            WriteProtocol::Incremental {
                temp_size: 32 << 20,
            },
        ),
        ("SW", WriteProtocol::SlidingWindow { buffer: 64 << 20 }),
    ]
}

/// Session config for a protocol with defaults.
pub fn session_for(protocol: WriteProtocol) -> SessionConfig {
    SessionConfig {
        protocol,
        ..SessionConfig::default()
    }
}

/// Measured outcome of running a chunking heuristic over a trace.
#[derive(Clone, Copy, Debug)]
pub struct HeuristicRun {
    /// Mean detected similarity across successive images, in `[0,1]`.
    pub similarity: f64,
    /// Heuristic throughput over the trace bytes, MB/s.
    pub throughput_mbps: f64,
    /// Mean chunk size in bytes.
    pub avg_chunk: f64,
    /// Mean per-image minimum chunk size.
    pub min_chunk: f64,
    /// Mean per-image maximum chunk size.
    pub max_chunk: f64,
}

/// Runs a real chunker over a generated trace, measuring similarity and
/// wall-clock throughput (the paper's Table 3/4 methodology).
pub fn run_heuristic(chunker: &dyn Chunker, trace: TraceConfig) -> HeuristicRun {
    let gen = TraceGenerator::new(trace);
    let mut tracker = SimilarityTracker::new();
    let mut stats = Vec::new();
    let mut bytes = 0u64;
    let start = Instant::now();
    for image in gen.images() {
        bytes += image.len() as u64;
        let chunks = chunker.split(&image);
        stats.push(stdchk_chunker::ChunkStats::of(&chunks));
        tracker.observe(&chunks);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (avg, min, max) = stdchk_chunker::ChunkStats::trace_averages(&stats);
    HeuristicRun {
        similarity: tracker.mean_ratio(),
        throughput_mbps: bytes as f64 / MB as f64 / elapsed.max(1e-9),
        avg_chunk: avg,
        min_chunk: min,
        max_chunk: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stdchk_chunker::FsChunker;
    use stdchk_workloads::TraceKind;

    #[test]
    fn heuristic_runner_produces_sane_numbers() {
        let run = run_heuristic(
            &FsChunker::new(4096),
            TraceConfig {
                image_size: 1 << 20,
                count: 3,
                kind: TraceKind::blcr_5min(),
                seed: 1,
            },
        );
        assert!(run.similarity > 0.1 && run.similarity < 0.5);
        assert!(run.throughput_mbps > 1.0);
        assert!(run.avg_chunk > 0.0);
    }

    #[test]
    fn sim_write_runner_works() {
        let (oab, asb) = run_sim_write(
            SimConfig::gige(2, 1),
            2,
            64 * MB,
            session_for(WriteProtocol::SlidingWindow { buffer: 32 << 20 }),
        );
        assert!(oab > 50.0 && asb > 30.0);
    }
}
