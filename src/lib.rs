//! # stdchk — a checkpoint storage system for desktop grid computing
//!
//! A from-scratch Rust implementation of the system described in
//! *"stdchk: A Checkpoint Storage System for Desktop Grid Computing"*
//! (Al Kiswany, Ripeanu, Vazhkudai, Gharaibeh — ICDCS 2008): scavenged
//! storage aggregated from LAN desktops into a checkpoint-optimized store
//! with striped high-throughput writes, incremental checkpointing,
//! replication with tunable write semantics, and automated checkpoint
//! lifetime management.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `stdchk-core` | sans-IO protocol state machines (manager, benefactor, write/read sessions) |
//! | [`proto`] | `stdchk-proto` | wire messages, chunk-maps, binary codec |
//! | [`chunker`] | `stdchk-chunker` | FsCH / CbCH similarity-detection heuristics |
//! | [`net`] | `stdchk-net` | real deployment: TCP servers + blocking client |
//! | [`fs`] | `stdchk-fs` | user-space file-system facade, `A.Ni.Tj` naming |
//! | [`sim`] | `stdchk-sim` | discrete-event simulator reproducing the paper's evaluation |
//! | [`workloads`] | `stdchk-workloads` | synthetic checkpoint traces (BMS/BLCR/Xen-like) |
//! | [`util`] | `stdchk-util` | SHA-256, rolling hashes, time types |
//!
//! # Quickstart
//!
//! Run `cargo run --example quickstart` for a complete in-process pool, or:
//!
//! ```no_run
//! use std::io::Write;
//! use stdchk::net::{Grid, WriteOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = Grid::connect("127.0.0.1:4402")?;
//! let mut ck = grid.create("/jobs/solver.n0", WriteOptions::default())?;
//! ck.write_all(b"...checkpoint image...")?;
//! let stats = ck.finish()?; // atomic commit: the image is now visible
//! println!("wrote {} bytes", stats.bytes_written);
//! # Ok(())
//! # }
//! ```

pub use stdchk_chunker as chunker;
pub use stdchk_core as core;
pub use stdchk_fs as fs;
pub use stdchk_net as net;
pub use stdchk_proto as proto;
pub use stdchk_sim as sim;
pub use stdchk_util as util;
pub use stdchk_workloads as workloads;
