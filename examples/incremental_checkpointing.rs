//! Incremental checkpointing: FsCH dedup between successive images.
//!
//! Writes three versions of a checkpoint where only a fraction of the image
//! changes each time (a BLCR-like process image), and shows that stdchk
//! ships and stores only the changed chunks — the paper's "reduced storage
//! space and network effort".
//!
//! Run with: `cargo run --example incremental_checkpointing`

use std::error::Error;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk::core::{BenefactorConfig, PoolConfig};
use stdchk::fs::naming::CheckpointName;
use stdchk::fs::{MountOptions, StdchkFs};
use stdchk::net::store::MemStore;
use stdchk::net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer};
use stdchk::util::bytesize::fmt_bytes;

fn main() -> Result<(), Box<dyn Error>> {
    let pool_cfg = PoolConfig {
        chunk_size: 256 << 10,
        ..PoolConfig::default()
    };
    let mgr = ManagerServer::spawn("127.0.0.1:0", pool_cfg)?;
    let _benefactors: Vec<_> = (0..3)
        .map(|_| {
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 1 << 30,
                cfg: BenefactorConfig::default(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < 3 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    }

    let grid = Grid::connect(&mgr.addr().to_string())?;
    let mut opts = MountOptions::default();
    opts.write.session.dedup = true; // enable FsCH incremental checkpointing
    let fs = StdchkFs::mount(grid, opts);

    // A 16 MiB process image; each checkpoint dirties ~20% of it.
    let mut image: Vec<u8> = (0..16 << 20).map(|i| (i % 249) as u8).collect();
    for t in 0..3u64 {
        if t > 0 {
            let start = (t as usize * 3) << 20;
            for b in &mut image[start..start + (3 << 20)] {
                *b ^= 0xa5;
            }
        }
        let name = CheckpointName::new("blast", 0, t);
        let mut w = fs.checkpoint("/jobs", &name)?;
        w.write_all(&image)?;
        let stats = w.finish()?;
        println!(
            "t{} | image {} | shipped {} | deduped {} ({:.0}%)",
            t,
            fmt_bytes(stats.bytes_written),
            fmt_bytes(stats.bytes_stored),
            fmt_bytes(stats.bytes_deduped),
            100.0 * stats.bytes_deduped as f64 / stats.bytes_written.max(1) as f64,
        );
    }

    let versions = fs.versions("/jobs/blast.n0")?;
    println!("{} versions retained, all readable:", versions.len());
    for v in &versions {
        let data = fs.open_version("/jobs/blast.n0", v.version)?.read_all()?;
        println!("  {} → {} bytes", v.version, data.len());
    }
    Ok(())
}
