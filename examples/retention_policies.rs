//! Automated, time-sensitive checkpoint management (paper §IV.D).
//!
//! Demonstrates the three retention scenarios on live directories:
//! no intervention (keep everything), automated replace (new images
//! obsolete old ones), and automated purge (images expire after an
//! interval).
//!
//! Run with: `cargo run --example retention_policies`

use std::error::Error;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk::core::{BenefactorConfig, PoolConfig};
use stdchk::fs::naming::CheckpointName;
use stdchk::fs::{MountOptions, StdchkFs};
use stdchk::net::store::MemStore;
use stdchk::net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer};
use stdchk::proto::RetentionPolicy;
use stdchk::util::Dur;

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = PoolConfig {
        policy_sweep_every: Dur::from_millis(200),
        ..PoolConfig::default()
    };
    let mgr = ManagerServer::spawn("127.0.0.1:0", cfg)?;
    let _bs: Vec<_> = (0..2)
        .map(|_| {
            BenefactorServer::spawn(BenefactorNetConfig {
                manager_addr: mgr.addr().to_string(),
                listen: "127.0.0.1:0".into(),
                total_space: 1 << 30,
                cfg: BenefactorConfig::default(),
                store: Arc::new(MemStore::new()),
            })
            .expect("benefactor")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < 2 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    }
    let fs = StdchkFs::mount(
        Grid::connect(&mgr.addr().to_string())?,
        MountOptions::default(),
    );

    // Scenario 1: debugging — keep every image.
    fs.set_policy("/debug", RetentionPolicy::NoIntervention)?;
    // Scenario 2: normal runs — a new image makes the old one obsolete.
    fs.set_policy("/prod", RetentionPolicy::REPLACE)?;
    // Scenario 3: scratch — purge anything older than two seconds.
    fs.set_policy(
        "/scratch",
        RetentionPolicy::AutomatedPurge {
            after: Dur::from_secs(2),
        },
    )?;

    for dir in ["/debug", "/prod", "/scratch"] {
        for t in 0..3u64 {
            let mut w = fs.checkpoint(dir, &CheckpointName::new("app", 0, t))?;
            w.write_all(format!("{dir} image t{t}").as_bytes())?;
            w.finish()?;
        }
    }

    println!("immediately after three checkpoints each:");
    for dir in ["/debug", "/prod", "/scratch"] {
        let v = fs.versions(&format!("{dir}/app.n0"))?;
        println!("  {dir}/app.n0 — {} version(s)", v.len());
    }
    assert_eq!(fs.versions("/debug/app.n0")?.len(), 3);
    assert_eq!(fs.versions("/prod/app.n0")?.len(), 1);

    println!("\nwaiting for the purge interval…");
    std::thread::sleep(Duration::from_secs(3));
    let scratch = fs.versions("/scratch/app.n0");
    println!(
        "  /scratch/app.n0 — {}",
        match &scratch {
            Ok(v) => format!("{} version(s)", v.len()),
            Err(_) => "purged entirely".to_string(),
        }
    );
    assert!(scratch.is_err() || scratch.unwrap().is_empty());
    println!("\nno intervention kept 3, replace kept 1, purge kept 0 — §IV.D reproduced");
    Ok(())
}
