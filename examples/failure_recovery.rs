//! Failure handling: benefactor crashes and manager recovery.
//!
//! 1. Writes a replicated checkpoint, kills the benefactor holding one
//!    replica set, and shows the read path failing over.
//! 2. Restarts the manager from empty metadata and shows committed files
//!    being recovered from benefactor-stashed chunk-maps (the paper's
//!    ⅔-concurrence protocol).
//!
//! Run with: `cargo run --example failure_recovery`

use std::error::Error;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk::core::{BenefactorConfig, PoolConfig};
use stdchk::net::store::MemStore;
use stdchk::net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, WriteOptions};

fn wait_online(mgr: &ManagerServer, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < n {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn spawn_benefactor(mgr_addr: &str) -> BenefactorServer {
    BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr_addr.to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 1 << 30,
        cfg: BenefactorConfig {
            heartbeat_every: stdchk::util::Dur::from_millis(100),
            reoffer_every: stdchk::util::Dur::from_millis(200),
            ..BenefactorConfig::default()
        },
        store: Arc::new(MemStore::new()),
    })
    .expect("benefactor")
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = PoolConfig {
        heartbeat_every: stdchk::util::Dur::from_millis(100),
        benefactor_timeout: stdchk::util::Dur::from_millis(500),
        ..PoolConfig::default()
    };
    let mgr = ManagerServer::spawn("127.0.0.1:0", cfg)?;
    let benefactors: Vec<_> = (0..4)
        .map(|_| spawn_benefactor(&mgr.addr().to_string()))
        .collect();
    wait_online(&mgr, 4);
    let grid = Grid::connect(&mgr.addr().to_string())?;

    // --- Part 1: benefactor crash, replicated data survives -------------
    let image: Vec<u8> = (0..4 << 20).map(|i| (i % 247) as u8).collect();
    let mut opts = WriteOptions {
        replication: 2,
        ..WriteOptions::default()
    };
    opts.session.pessimistic = true; // wait for both replicas
    let mut w = grid.create("/jobs/resilient.n0", opts)?;
    w.write_all(&image)?;
    w.finish()?;
    println!("checkpoint written with replication 2");

    // Kill one benefactor that holds data.
    let victim = benefactors
        .iter()
        .position(|b| b.chunk_count() > 0)
        .expect("someone stores chunks");
    println!(
        "killing benefactor {victim} ({} chunks)",
        benefactors[victim].chunk_count()
    );
    benefactors[victim].shutdown();
    std::thread::sleep(Duration::from_millis(200));

    let back = grid.open("/jobs/resilient.n0", None)?.read_all()?;
    assert_eq!(back, image);
    println!(
        "read failed over to surviving replicas: {} bytes ok",
        back.len()
    );

    // --- Part 2: manager failure, ⅔-concurrence recovery ----------------
    // Write with commit stashing enabled.
    let mut opts = WriteOptions::default();
    opts.session.stash_commits = true;
    let mut w = grid.create("/jobs/durable.n0", opts)?;
    w.write_all(&image)?;
    w.finish()?;
    println!("\ncheckpoint committed with stashed chunk-maps");

    // The manager dies and restarts from empty metadata on a new address.
    let mgr_addr = mgr.addr();
    drop(mgr);
    std::thread::sleep(Duration::from_millis(100));
    let cfg = PoolConfig {
        heartbeat_every: stdchk::util::Dur::from_millis(100),
        ..PoolConfig::default()
    };
    let mgr2 = ManagerServer::spawn(&mgr_addr.to_string(), cfg)?;
    println!("manager restarted empty at {}", mgr2.addr());

    // Benefactors re-register and re-offer stashed commits.
    let deadline = Instant::now() + Duration::from_secs(15);
    let grid2 = loop {
        if let Ok(g) = Grid::connect(&mgr2.addr().to_string()) {
            if g.stat("/jobs/durable.n0").is_ok() {
                break g;
            }
        }
        assert!(Instant::now() < deadline, "recovery never completed");
        std::thread::sleep(Duration::from_millis(100));
    };
    let recovered = grid2.open("/jobs/durable.n0", None)?.read_all()?;
    assert_eq!(recovered, image);
    println!(
        "manager recovered the commit from benefactor stashes: {} bytes ok",
        recovered.len()
    );
    Ok(())
}
