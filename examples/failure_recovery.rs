//! Failure handling: benefactor crashes and manager restarts.
//!
//! 1. Writes a replicated checkpoint, kills the benefactor holding one
//!    replica set, and shows the read path failing over.
//! 2. Restarts a *durable* manager (metadata WAL + snapshots) under a
//!    populated namespace and shows `stat`/`list`/reads succeeding from
//!    replayed state **before any benefactor re-offer arrives** — the
//!    paper's ⅔-concurrence re-offer protocol is still running, but it
//!    has been demoted from the recovery mechanism to a consistency
//!    repair.
//!
//! Run with: `cargo run --example failure_recovery`

use std::error::Error;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk::core::{BenefactorConfig, PoolConfig};
use stdchk::net::store::MemStore;
use stdchk::net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, WriteOptions};

fn wait_online(mgr: &ManagerServer, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < n {
        assert!(Instant::now() < deadline, "pool never online");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn spawn_benefactor(mgr_addr: &str) -> BenefactorServer {
    BenefactorServer::spawn(BenefactorNetConfig {
        manager_addr: mgr_addr.to_string(),
        listen: "127.0.0.1:0".into(),
        total_space: 1 << 30,
        cfg: BenefactorConfig {
            heartbeat_every: stdchk::util::Dur::from_millis(100),
            // Deliberately slow, so part 2 can prove reads beat re-offers.
            reoffer_every: stdchk::util::Dur::from_secs(30),
            ..BenefactorConfig::default()
        },
        store: Arc::new(MemStore::new()),
    })
    .expect("benefactor")
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = PoolConfig {
        heartbeat_every: stdchk::util::Dur::from_millis(100),
        benefactor_timeout: stdchk::util::Dur::from_secs(30),
        ..PoolConfig::default()
    };
    let meta_dir = std::env::temp_dir().join(format!("stdchk-example-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&meta_dir).ok();
    let mgr = ManagerServer::spawn_durable("127.0.0.1:0", cfg.clone(), &meta_dir)?;
    let benefactors: Vec<_> = (0..4)
        .map(|_| spawn_benefactor(&mgr.addr().to_string()))
        .collect();
    wait_online(&mgr, 4);
    let grid = Grid::connect(&mgr.addr().to_string())?;

    // --- Part 1: benefactor crash, replicated data survives -------------
    let image: Vec<u8> = (0..4 << 20).map(|i| (i % 247) as u8).collect();
    let mut opts = WriteOptions {
        replication: 2,
        ..WriteOptions::default()
    };
    opts.session.pessimistic = true; // wait for both replicas
    let mut w = grid.create("/jobs/resilient.n0", opts)?;
    w.write_all(&image)?;
    w.finish()?;
    println!("checkpoint written with replication 2");

    // Kill one benefactor that holds data.
    let victim = benefactors
        .iter()
        .position(|b| b.chunk_count() > 0)
        .expect("someone stores chunks");
    println!(
        "killing benefactor {victim} ({} chunks)",
        benefactors[victim].chunk_count()
    );
    benefactors[victim].shutdown();
    std::thread::sleep(Duration::from_millis(200));

    let back = grid.open("/jobs/resilient.n0", None)?.read_all()?;
    assert_eq!(back, image);
    println!(
        "read failed over to surviving replicas: {} bytes ok",
        back.len()
    );

    // --- Part 2: manager restart from its metadata WAL -------------------
    // Populate a bit more namespace so the replay has something to prove.
    let mut w = grid.create("/jobs/durable.n0", WriteOptions::default())?;
    w.write_all(&image)?;
    w.finish()?;
    println!("\nsecond checkpoint committed; namespace: resilient.n0 + durable.n0");

    // The manager dies. Its successor opens the same metadata directory
    // and replays snapshot + WAL before accepting a single connection.
    drop(mgr);
    let restarted_at = Instant::now();
    let respawn_deadline = Instant::now() + Duration::from_secs(5);
    let mgr2 = loop {
        // Retry while the dead manager's threads release the log LOCK.
        match ManagerServer::spawn_durable("127.0.0.1:0", cfg.clone(), &meta_dir) {
            Ok(m) => break m,
            Err(e)
                if e.kind() == std::io::ErrorKind::AddrInUse
                    && Instant::now() < respawn_deadline =>
            {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => return Err(e.into()),
        }
    };
    println!("manager restarted at {} from {:?}", mgr2.addr(), meta_dir);

    // Reads succeed immediately from replayed metadata. The benefactors
    // have not even re-registered with the new address (they still dial
    // the dead one), so no heartbeat — and certainly no re-offer — has
    // been processed: re-offers are now a repair path, not the source of
    // truth.
    let grid2 = Grid::connect(&mgr2.addr().to_string())?;
    let listing = grid2.list("/jobs")?;
    println!(
        "listing from replayed state: {:?}",
        listing.iter().map(|e| e.name.as_str()).collect::<Vec<_>>()
    );
    let recovered = grid2.open("/jobs/durable.n0", None)?.read_all()?;
    assert_eq!(recovered, image);
    let stats = mgr2.stats();
    assert_eq!(
        stats.recovered_commits, 0,
        "nothing was recovered via re-offers"
    );
    println!(
        "read {} bytes {}ms after restart, before any re-offer (recovered_commits = {})",
        recovered.len(),
        restarted_at.elapsed().as_millis(),
        stats.recovered_commits
    );
    std::fs::remove_dir_all(&meta_dir).ok();
    Ok(())
}
