//! Quickstart: a complete stdchk pool in one process.
//!
//! Starts a metadata manager and four benefactors on loopback TCP — each
//! persisting chunks in the production segment-log engine under a scratch
//! directory — writes a checkpoint with the sliding-window protocol, reads
//! it back, and prints the paper's two bandwidth metrics (OAB/ASB).
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stdchk::core::session::write::WriteProtocol;
use stdchk::core::{BenefactorConfig, PoolConfig};
use stdchk::net::store::SegmentStore;
use stdchk::net::{BenefactorNetConfig, BenefactorServer, Grid, ManagerServer, WriteOptions};
use stdchk::util::bytesize::fmt_rate;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The metadata manager.
    let mgr = ManagerServer::spawn("127.0.0.1:0", PoolConfig::default())?;
    println!("manager listening on {}", mgr.addr());

    // 2. Four desktops donate scavenged space, each backed by a segment-log
    //    store in a scratch directory.
    let scratch = std::env::temp_dir().join(format!("stdchk-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let mut benefactors = Vec::new();
    for i in 0..4 {
        let b = BenefactorServer::spawn(BenefactorNetConfig {
            manager_addr: mgr.addr().to_string(),
            listen: "127.0.0.1:0".into(),
            total_space: 1 << 30,
            cfg: BenefactorConfig::default(),
            store: Arc::new(SegmentStore::open(scratch.join(format!("donor{i}")))?),
        })?;
        println!("benefactor {i} donating 1 GiB at {}", b.addr());
        benefactors.push(b);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.online_benefactors() < benefactors.len() {
        if Instant::now() > deadline {
            return Err("pool did not come online".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // 3. An application checkpoints through the client proxy.
    let grid = Grid::connect(&mgr.addr().to_string())?;
    let mut opts = WriteOptions::default();
    opts.session.protocol = WriteProtocol::SlidingWindow { buffer: 64 << 20 };
    opts.stripe_width = 4;

    let image: Vec<u8> = (0..8 << 20).map(|i| (i % 251) as u8).collect();
    let mut ck = grid.create("/jobs/solver.n0", opts)?;
    ck.write_all(&image)?;
    let stats = ck.finish()?; // session semantics: visible from here on
    println!(
        "wrote {} bytes: OAB {} / ASB {}",
        stats.bytes_written,
        stats.oab().map(fmt_rate).unwrap_or_default(),
        stats.asb().map(fmt_rate).unwrap_or_default(),
    );

    // 4. Restart path: read the checkpoint back.
    let back = grid.open("/jobs/solver.n0", None)?.read_all()?;
    assert_eq!(back, image);
    println!("restart read verified {} bytes", back.len());

    // 5. Namespace inspection.
    for e in grid.list("/jobs")? {
        println!(
            "/jobs/{} — {} bytes, {} version(s)",
            e.name, e.attr.size, e.attr.versions
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
    Ok(())
}
