//! Desktop-grid scenario under the simulator.
//!
//! Simulates the paper's environment — a pool of GigE desktops donating
//! disk space — and runs a parallel application whose processes all
//! checkpoint simultaneously (the paper's "distinct compute and checkpoint
//! phases"), comparing the three write protocols.
//!
//! Run with: `cargo run --example desktop_grid`

use stdchk::core::session::write::{SessionConfig, WriteProtocol};
use stdchk::sim::{SimCluster, SimConfig, WriteJob};
use stdchk::util::bytesize::to_mbps;
use stdchk::util::Dur;

fn main() {
    const MB: u64 = 1_000_000;
    println!("desktop grid: 12 benefactors, 4 clients, GigE LAN\n");
    println!("{:<22} {:>12} {:>12}", "protocol", "OAB MB/s", "ASB MB/s");
    for (label, protocol) in [
        ("complete local write", WriteProtocol::CompleteLocal),
        (
            "incremental write",
            WriteProtocol::Incremental {
                temp_size: 32 << 20,
            },
        ),
        (
            "sliding window",
            WriteProtocol::SlidingWindow { buffer: 64 << 20 },
        ),
    ] {
        let mut sim = SimCluster::new(SimConfig::gige(12, 4));
        // All four processes of the parallel app checkpoint at once.
        for c in 0..4 {
            let mut job = WriteJob::new(
                format!("/app/solver.n{c}"),
                512 * MB,
                SessionConfig {
                    protocol,
                    ..SessionConfig::default()
                },
            );
            job.stripe_width = 4;
            sim.submit(c, job);
        }
        let report = sim.run(Dur::from_secs(2));
        println!(
            "{:<22} {:>12.1} {:>12.1}",
            label,
            to_mbps(report.mean_oab()),
            to_mbps(report.mean_asb()),
        );
    }
    println!("\n(the sliding-window protocol avoids local I/O entirely and");
    println!(" saturates the clients' NICs — the paper's headline result)");
}
